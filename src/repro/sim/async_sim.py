"""Asynchronous dataflow simulation — the CASH timing model.

CASH (Budiu & Goldstein) compiles ANSI C into *asynchronous* dataflow
circuits: no clock; each operator fires when its input tokens arrive,
after its own propagation delay plus a handshake overhead.  This simulator
executes a CDFG under exactly that discipline:

* a value's timestamp is when its producing operator finished;
* an operator starts at the max of its operands' timestamps (and the
  control token's, since an operation fires only once its basic block's
  branch has resolved — the steer/eta nodes of the Pegasus IR);
* memory operations additionally serialize through their memory's
  load/store queue;
* register (variable) timestamps carry across blocks — tokens, not clocked
  latches.

Functional results are computed with the same shared machine arithmetic as
every other backend, so CASH designs are validated against the golden model
just like synchronous ones, while the *completion time* reflects the
dataflow critical path instead of a cycle count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..interp.machine import eval_binary, eval_unary, wrap
from ..lang.errors import InterpError
from ..lang.symtab import Symbol
from ..lang.types import ArrayType
from ..ir.cdfg import FunctionCDFG
from ..ir.ops import Branch, Const, Jump, Operand, Operation, OpKind, Ret, VReg, VarRead
from ..rtl.tech import DEFAULT_TECH, Technology
from ..scheduling.resources import op_delay_ns


@dataclass
class AsyncResult:
    value: Optional[int]
    completion_ns: float
    ops_fired: int
    busy_ns: float
    registers: Dict[str, int] = field(default_factory=dict)
    memories: Dict[str, List[int]] = field(default_factory=dict)

    @property
    def average_parallelism(self) -> float:
        """Mean number of operators computing simultaneously."""
        if self.completion_ns <= 0:
            return 0.0
        return self.busy_ns / self.completion_ns


class AsyncSimulator:
    """Token-timed execution of one CDFG (no channels: CASH is plain C)."""

    def __init__(
        self,
        cdfg: FunctionCDFG,
        args: Sequence[int] = (),
        register_init: Optional[Dict[Symbol, int]] = None,
        memory_init: Optional[Dict[Symbol, List[int]]] = None,
        tech: Technology = DEFAULT_TECH,
        max_blocks: int = 1_000_000,
    ):
        self.cdfg = cdfg
        self.tech = tech
        self.max_blocks = max_blocks
        self.registers: Dict[Symbol, int] = {s: 0 for s in cdfg.registers}
        self.reg_time: Dict[Symbol, float] = {s: 0.0 for s in cdfg.registers}
        self.memories: Dict[Symbol, List[int]] = {}
        self.mem_time: Dict[Symbol, float] = {}
        for array in cdfg.arrays:
            assert isinstance(array.type, ArrayType)
            self.memories[array] = [0] * array.type.size
            self.mem_time[array] = 0.0
        if register_init:
            for symbol, value in register_init.items():
                self.registers[symbol] = wrap(value, symbol.type)
        if memory_init:
            for symbol, values in memory_init.items():
                words = self.memories.setdefault(symbol, [0] * len(values))
                for i, v in enumerate(values):
                    words[i] = v
        scalar_params = [p for p in cdfg.params if not isinstance(p.type, ArrayType)]
        if len(args) != len(scalar_params):
            raise InterpError(
                f"{cdfg.name} expects {len(scalar_params)} scalar arguments,"
                f" got {len(args)}"
            )
        for symbol, value in zip(scalar_params, args):
            self.registers[symbol] = wrap(value, symbol.type)
        self.ops_fired = 0
        self.busy_ns = 0.0

    def run(self) -> AsyncResult:
        block = self.cdfg.entry
        assert block is not None
        control_time = 0.0
        completion = 0.0
        blocks_executed = 0
        handshake = self.tech.handshake_overhead_ns
        return_value: Optional[int] = None
        while True:
            blocks_executed += 1
            if blocks_executed > self.max_blocks:
                raise InterpError(
                    f"block budget of {self.max_blocks} exceeded in {self.cdfg.name}"
                )
            values: Dict[VReg, int] = {}
            times: Dict[VReg, float] = {}

            def read(operand: Operand) -> int:
                if isinstance(operand, Const):
                    return operand.value
                if isinstance(operand, VarRead):
                    return self.registers.get(operand.var, 0)
                return values[operand]

            def ready(operand: Operand) -> float:
                if isinstance(operand, Const):
                    return control_time
                if isinstance(operand, VarRead):
                    return max(control_time, self.reg_time.get(operand.var, 0.0))
                return times[operand]

            for op in block.ops:
                start = control_time
                for operand in op.operands:
                    start = max(start, ready(operand))
                if op.is_memory():
                    assert op.array is not None
                    start = max(start, self.mem_time[op.array])
                delay = op_delay_ns(op, self.tech) + handshake
                finish = start + delay
                self.ops_fired += 1
                self.busy_ns += delay
                self._fire(op, values, read)
                if op.dest is not None:
                    times[op.dest] = finish
                if op.is_memory():
                    assert op.array is not None
                    self.mem_time[op.array] = finish
                completion = max(completion, finish)
            # Latch atomically: all reads see pre-latch register values.
            latched = [
                (var, read(value), max(control_time, ready(value)))
                for var, value in block.var_writes.items()
            ]
            for var, raw, when in latched:
                self.registers[var] = wrap(raw, var.type)
                self.reg_time[var] = when
                completion = max(completion, when)
            terminator = block.terminator
            if isinstance(terminator, Jump):
                block = terminator.target
                control_time += handshake
            elif isinstance(terminator, Branch):
                cond_value = read(terminator.cond)
                control_time = max(control_time, ready(terminator.cond)) + handshake
                block = terminator.if_true if cond_value else terminator.if_false
            elif isinstance(terminator, Ret):
                if terminator.value is not None:
                    raw = read(terminator.value)
                    return_value = (
                        wrap(raw, self.cdfg.return_type)
                        if self.cdfg.return_type.bit_width
                        else raw
                    )
                    completion = max(completion, ready(terminator.value))
                return AsyncResult(
                    value=return_value,
                    completion_ns=max(completion, control_time),
                    ops_fired=self.ops_fired,
                    busy_ns=self.busy_ns,
                    registers={
                        s.unique_name: v for s, v in self.registers.items()
                    },
                    memories={
                        s.unique_name: list(v) for s, v in self.memories.items()
                    },
                )
            else:
                raise InterpError(f"block {block.label} has no terminator")

    def _fire(self, op: Operation, values: Dict[VReg, int], read) -> None:
        if op.kind is OpKind.BINARY:
            assert op.dest is not None
            values[op.dest] = eval_binary(
                op.op, read(op.operands[0]), read(op.operands[1]), op.dest.type
            )
        elif op.kind is OpKind.UNARY:
            assert op.dest is not None
            values[op.dest] = eval_unary(op.op, read(op.operands[0]), op.dest.type)
        elif op.kind is OpKind.CAST:
            assert op.dest is not None
            values[op.dest] = wrap(read(op.operands[0]), op.dest.type)
        elif op.kind is OpKind.SELECT:
            assert op.dest is not None
            chosen = read(op.operands[1]) if read(op.operands[0]) else read(op.operands[2])
            values[op.dest] = wrap(chosen, op.dest.type)
        elif op.kind is OpKind.LOAD:
            assert op.dest is not None and op.array is not None
            memory = self.memories[op.array]
            index = read(op.operands[0])
            if not 0 <= index < len(memory):
                raise InterpError(
                    f"load {op.array.unique_name}[{index}] out of bounds"
                )
            values[op.dest] = memory[index]
        elif op.kind is OpKind.STORE:
            assert op.array is not None
            memory = self.memories[op.array]
            index = read(op.operands[0])
            if not 0 <= index < len(memory):
                raise InterpError(
                    f"store {op.array.unique_name}[{index}] out of bounds"
                )
            memory[index] = read(op.operands[1])
        elif op.kind in (OpKind.BARRIER, OpKind.DELAY, OpKind.NOP):
            pass
        else:
            raise InterpError(f"asynchronous dataflow cannot execute {op.kind}")
