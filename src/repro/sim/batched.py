"""Batched lockstep FSMD simulation backend.

The compiled backend (:mod:`compiled`) removed per-cycle interpretation
overhead but still runs one program, one argument set at a time — so a
fuzz campaign that simulates the same FSMD on 256 inputs pays 256
dispatch loops over one specialisation.  This backend specialises the
FSMD **once** and steps N independent runs in lockstep:

* the register file, cross-state wires, and globals become ``(slots, N)``
  int64 arrays, memories ``(N, size)`` arrays — one column/row per lane;
* each state is lowered (reusing :class:`compiled._MachineCompiler`'s
  slot layout and wrap algebra) into a NumPy function over the lane index
  vector of whichever lanes currently sit in that state — the divergence
  mask: lanes in different states are dispatched as separate groups of
  the same cycle, lanes in the same state share one vectorized pass;
* two's-complement wraparound stays mask arithmetic.  int64 overflow is
  modular, so masking extracts exact low bits for widths up to 62; any
  wider type makes the plan fall back to the scalar engine;
* finished lanes retire (their ``finish`` cycle recorded, exactly like
  the scalar backends) and stop burning work;
* per-lane faults never poison the batch: a lane that divides by zero,
  shifts negatively, or indexes out of bounds is given a safe substitute
  value, its stores/latches/results for the cycle are suppressed, and it
  retires into a **scalar replay** through the compiled backend — which
  reproduces the exact error class and message the scalar run raises.
  Cycle-budget exhaustion is detected natively with the scalar message.

NumPy is optional.  Without it (or for multi-machine/rendezvous systems,
or wide types) the ``"lanes"`` engine keeps the same :class:`BatchResult`
API: the batch still amortizes the one-time specialisation by running
every lane sequentially through the shared :class:`compiled.SystemPlan`
— the plan's slot lists already are the struct-of-arrays layout, the
lanes just share them one at a time.  Set ``REPRO_NO_NUMPY=1`` to force
this path (the CI matrix leg without NumPy installed exercises it too).

``simulate(..., sim_backend="batched")`` is the scalar view: a one-lane
batch whose errored lane re-raises the scalar backend's exact exception,
so "batched" is a drop-in third backend everywhere the other two go.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..interp.machine import _as_int_type, wrap
from ..lang.errors import InterpError
from ..lang.symtab import SymbolKind
from ..lang.types import ArrayType
from ..ir.ops import Const, Operand, Operation, OpKind, VarRead
from ..rtl.fsmd import CondNext, Done, FSMDSystem, NextState, State
from .compiled import (
    SystemPlan,
    _COMPARISONS,
    _Emitter,
    _MachineCompiler,
    _NeverDefined,
    _WRAPPING,
    compile_system,
)
from .fsmd_sim import SimResult, SimulationError
from .profile import SimProfile

if os.environ.get("REPRO_NO_NUMPY"):
    _np = None
else:
    try:
        import numpy as _np  # type: ignore[no-redef]
    except Exception:  # pragma: no cover - exercised via REPRO_NO_NUMPY
        _np = None

HAVE_NUMPY = _np is not None

#: Widest integer type the vector engine handles exactly: int64 arithmetic
#: is modular (mod 2**64), so masking recovers the true low bits only when
#: the wrap mask itself fits with headroom for the signed-wrap bias.
MAX_VECTOR_WIDTH = 62

ENGINES = ("auto", "vector", "lanes")

_ERROR_CLASSES = {
    "SimulationError": SimulationError,
    "InterpError": InterpError,
}


@dataclass
class BatchLane:
    """One lane's outcome: a :class:`SimResult` or a captured error."""

    args: Tuple[int, ...]
    result: Optional[SimResult] = None
    error: str = ""
    error_kind: str = ""        # exception class name ("SimulationError", ...)

    @property
    def ok(self) -> bool:
        return not self.error and self.result is not None

    def error_class(self):
        return _ERROR_CLASSES.get(self.error_kind, SimulationError)

    def raise_error(self) -> None:
        """Re-raise this lane's failure as the scalar backend would."""
        raise self.error_class()(self.error)


@dataclass
class BatchResult:
    """What one batched simulation produced, lane by lane."""

    lanes: List[BatchLane] = field(default_factory=list)
    engine: str = ""            # "vector" | "lanes"
    compile_s: float = 0.0
    execute_s: float = 0.0

    @property
    def n_lanes(self) -> int:
        return len(self.lanes)

    @property
    def ok_lanes(self) -> List[BatchLane]:
        return [lane for lane in self.lanes if lane.ok]

    @property
    def error_lanes(self) -> List[BatchLane]:
        return [lane for lane in self.lanes if not lane.ok]


class _Unvectorizable(Exception):
    """Compile-time marker: this state (or plan) has no exact vector form.

    Never an error — the state becomes a trap-all stub whose lanes replay
    through the scalar backend (bit-exact by construction), or the whole
    plan falls back to the lane-sequential engine."""


class _VectorMachineCompiler(_MachineCompiler):
    """Lowers one fast-path FSMD into vectorized per-state functions.

    Subclasses the scalar compiler so slot layout, wrap algebra, and op
    coverage cannot drift: only the expression/statement *forms* change
    (gathers over the lane index vector ``_ix``, ``np.where`` selects,
    trap masks instead of raises).  A state the vector form cannot
    express exactly compiles to a trap-all stub instead."""

    def __init__(self, fsmd, global_slots):
        super().__init__(fsmd, global_slots, fast=True)
        self._risky = False             # current state accumulates a trap mask
        self.trap_states: Set[int] = set()

    # -- vector expression forms -------------------------------------------

    def _expr(self, operand: Operand, local) -> str:
        if isinstance(operand, Const):
            if abs(int(operand.value)) >= (1 << MAX_VECTOR_WIDTH):
                raise _Unvectorizable(f"constant {operand.value} too wide")
            return repr(operand.value)
        if isinstance(operand, VarRead):
            symbol = operand.var
            if symbol.kind is SymbolKind.GLOBAL:
                return f"g[{self._gslot(symbol)}][_ix]"
            return f"r[{self._rslot(symbol)}][_ix]"
        if operand in local:
            return f"v{operand.id}"
        if operand in self.defined:
            return f"w[{self._wslot(operand)}][_ix]"
        raise _NeverDefined(operand)

    def _wrap_expr(self, expr: str, value_type) -> str:
        rt = _as_int_type(value_type)       # may raise InterpError
        if rt.width > MAX_VECTOR_WIDTH:
            raise _Unvectorizable(f"width {rt.width} > {MAX_VECTOR_WIDTH}")
        return super()._wrap_expr(expr, value_type)

    def _assign_dest(self, em: _Emitter, op: Operation, rhs: str,
                     local) -> None:
        assert op.dest is not None
        name = f"v{op.dest.id}"
        em.line(f"{name} = {rhs}")
        local.add(op.dest)
        slot = self.wire_slots.get(op.dest)
        if slot is not None:
            # Trapped lanes write garbage here, harmlessly: they retire
            # this cycle, so no later state reads their wire column.
            em.line(f"w[{slot}][_ix] = {name}")

    # -- op lowering --------------------------------------------------------

    def _emit_vop(self, em: _Emitter, op: Operation, local) -> None:
        kind = op.kind
        if kind is OpKind.BINARY:
            self._emit_binary(em, op, local)
        elif kind is OpKind.UNARY:
            self._emit_unary(em, op, local)
        elif kind is OpKind.CAST:
            assert op.dest is not None
            rhs = self._wrap_expr(self._expr(op.operands[0], local),
                                  op.dest.type)
            self._assign_dest(em, op, rhs, local)
        elif kind is OpKind.SELECT:
            assert op.dest is not None
            cond = self._expr(op.operands[0], local)
            if_true = self._expr(op.operands[1], local)
            if_false = self._expr(op.operands[2], local)
            chosen = f"_whr(({cond}) != 0, ({if_true}), ({if_false}))"
            self._assign_dest(
                em, op, self._wrap_expr(chosen, op.dest.type), local
            )
        elif kind is OpKind.LOAD:
            self._emit_load(em, op, local)
        elif kind is OpKind.STORE:
            self._emit_store(em, op, local, "temps")
        elif kind in (OpKind.BARRIER, OpKind.DELAY, OpKind.NOP):
            pass
        else:
            # The scalar form raises unconditionally; every lane entering
            # this state errors, so trap them all and let replay report it.
            raise _Unvectorizable(f"cannot vectorize {op.kind}")

    def _emit_binary(self, em: _Emitter, op: Operation, local) -> None:
        assert op.dest is not None
        a = self._expr(op.operands[0], local)
        b = self._expr(op.operands[1], local)
        o = op.op
        if o in _WRAPPING:
            rhs = self._wrap_expr(f"({a}) {o} ({b})", op.dest.type)
        elif o in _COMPARISONS:
            rhs = f"_whr(({a}) {o} ({b}), 1, 0)"
        elif o == "&&":
            rhs = f"_whr((({a}) != 0) & (({b}) != 0), 1, 0)"
        elif o == "||":
            rhs = f"_whr((({a}) != 0) | (({b}) != 0), 1, 0)"
        elif o == "/" or o == "%":
            rt = _as_int_type(op.dest.type)
            self._risky = True
            ta, tb = self._temp("_a"), self._temp("_b")
            tz, tq = self._temp("_z"), self._temp("_q")
            em.line(f"{ta} = _ari({a}, _n)")
            em.line(f"{tb} = _ari({b}, _n)")
            em.line(f"{tz} = ({tb} == 0)")
            em.line(f"if {tz}.any():")
            em.line(f"    _tr |= {tz}")
            em.line(f"    {tb} = _np.where({tz}, 1, {tb})")
            # abs//abs with a sign fix = truncation toward zero, the C
            # semantics both scalar backends pin.
            em.line(f"{tq} = _np.abs({ta}) // _np.abs({tb})")
            em.line(
                f"{tq} = _np.where(({ta} < 0) != ({tb} < 0), -{tq}, {tq})"
            )
            if o == "/":
                rhs = self._wrap_expr(tq, rt)
            else:
                rhs = self._wrap_expr(f"{ta} - {tq} * {tb}", rt)
        elif o == "<<" or o == ">>":
            rt = _as_int_type(op.dest.type)
            if rt.width > MAX_VECTOR_WIDTH:
                raise _Unvectorizable(f"shift width {rt.width}")
            self._risky = True
            tb, tn = self._temp("_b"), self._temp("_g")
            em.line(f"{tb} = _ari({b}, _n)")
            em.line(f"{tn} = ({tb} < 0)")
            em.line(f"if {tn}.any():")
            em.line(f"    _tr |= {tn}")
            em.line(f"    {tb} = _np.where({tn}, 0, {tb})")
            em.line(f"{tb} = _np.where({tb} > {rt.width}, {rt.width}, {tb})")
            rhs = self._wrap_expr(f"({a}) {o} {tb}", rt)
        else:
            raise _Unvectorizable(f"unknown binary operator {o!r}")
        self._assign_dest(em, op, rhs, local)

    def _emit_unary(self, em: _Emitter, op: Operation, local) -> None:
        assert op.dest is not None
        a = self._expr(op.operands[0], local)
        o = op.op
        if o == "-":
            rhs = self._wrap_expr(f"-({a})", op.dest.type)
        elif o == "~":
            rhs = self._wrap_expr(f"~({a})", op.dest.type)
        elif o == "!":
            rhs = f"_whr(({a}) == 0, 1, 0)"
        else:
            raise _Unvectorizable(f"unknown unary operator {o!r}")
        self._assign_dest(em, op, rhs, local)

    def _emit_load(self, em: _Emitter, op: Operation, local) -> None:
        assert op.dest is not None and op.array is not None
        mem = self._mslot(op.array)
        index = self._expr(op.operands[0], local)
        ti = self._temp("_i")
        em.line(f"{ti} = _ari({index}, _n)")
        if self.fsmd.tolerant_memory:
            tg = self._temp("_g")
            em.line(f"{tg} = (({ti} >= 0) & ({ti} < _L{mem}))")
            rhs = (
                f"_np.where({tg}, "
                f"m{mem}[_ix, _np.where({tg}, {ti}, 0)], 0)"
            )
        else:
            self._risky = True
            tb = self._temp("_o")
            em.line(f"{tb} = (({ti} < 0) | ({ti} >= _L{mem}))")
            em.line(f"if {tb}.any():")
            em.line(f"    _tr |= {tb}")
            em.line(f"    {ti} = _np.where({tb}, 0, {ti})")
            rhs = f"m{mem}[_ix, {ti}]"
        self._assign_dest(em, op, rhs, local)

    def _emit_store(self, em: _Emitter, op: Operation, local,
                    store_mode: str) -> None:
        assert op.array is not None
        mem = self._mslot(op.array)
        index = self._expr(op.operands[0], local)
        ti = self._temp("_i")
        em.line(f"{ti} = _ari({index}, _n)")
        cond: Optional[str] = None
        if self.fsmd.tolerant_memory:
            cond = self._temp("_c")
            em.line(f"{cond} = (({ti} >= 0) & ({ti} < _L{mem}))")
        else:
            self._risky = True
            tb = self._temp("_o")
            em.line(f"{tb} = (({ti} < 0) | ({ti} >= _L{mem}))")
            em.line(f"if {tb}.any():")
            em.line(f"    _tr |= {tb}")
            em.line(f"    {ti} = _np.where({tb}, 0, {ti})")
        tv = self._temp("_v")
        em.line(f"{tv} = {self._expr(op.operands[1], local)}")
        self._vstores.append((mem, ti, tv, cond))

    def _apply_vstores(self, em: _Emitter) -> None:
        """Scatter buffered stores, in op order, at the clock edge.

        A risky state masks every store with ``_ok`` so a trapped lane's
        whole cycle is suppressed — matching the scalar backend, where the
        raise fires before any buffered store is applied."""
        for mem, ti, tv, cond in self._vstores:
            if self._risky and cond is not None:
                mask = f"({cond} & _ok)"
            elif self._risky:
                mask = "_ok"
            else:
                mask = cond
            if mask is None:
                em.line(f"m{mem}[_ix, {ti}] = {tv}")
            else:
                sm = self._temp("_s")
                em.line(f"{sm} = {mask}")
                em.line(
                    f"m{mem}[_ix[{sm}], {ti}[{sm}]] = _msk({tv}, {sm})"
                )
        self._vstores = []

    # -- transition + latches (the clock edge) ------------------------------

    def _walk_vtransition(self, em: _Emitter, tr, local):
        """Lower the transition tree to (next, result, has_result) exprs.

        Conditions become 0/1 temps; branches merge through ``_whr`` so
        every lane takes its own path.  Returns expression strings whose
        reads all happen before any latch writes (the caller snapshots
        them into temps first)."""
        if isinstance(tr, int):
            return str(tr), "0", "0"
        if isinstance(tr, NextState):
            return str(tr.target), "0", "0"
        if isinstance(tr, Done):
            if tr.value is None:
                return "-1", "0", "0"
            return "-1", f"({self._expr(tr.value, local)})", "1"
        if isinstance(tr, CondNext):
            cond = self._expr(tr.cond, local)
            tc = self._temp("_cnd")
            em.line(f"{tc} = (({cond}) != 0)")
            n1, r1, h1 = self._walk_vtransition(em, tr.if_true, local)
            n2, r2, h2 = self._walk_vtransition(em, tr.if_false, local)
            return (
                f"_whr({tc}, {n1}, {n2})",
                f"_whr({tc}, {r1}, {r2})",
                f"_whr({tc}, {h1}, {h2})",
            )
        raise _Unvectorizable("state has no transition")

    def _emit_vcommit(self, em: _Emitter, state: State, local) -> None:
        has_done = self._has_done(state.transition)
        nx, res, has = self._walk_vtransition(em, state.transition, local)
        # Snapshot everything the edge reads *before* any latch writes,
        # mirroring the scalar backend's read-then-write ordering.
        em.line(f"_nxK = {nx}")
        if has_done:
            em.line(f"_rsK = {res}")
            em.line(f"_hsK = {has}")
        writes = []
        for symbol, value in state.latches.items():
            temp = self._temp("_l")
            em.line(f"{temp} = {self._expr(value, local)}")
            writes.append((symbol, temp))
        if self._risky:
            em.line("_ok = ~_tr")
        self._apply_vstores(em)
        if writes and self._risky:
            em.line("_lsel = _ix[_ok]")
        for symbol, temp in writes:
            wrapped = self._wrap_expr(temp, symbol.type)
            wt = self._temp("_lw")
            em.line(f"{wt} = {wrapped}")
            if symbol.kind is SymbolKind.GLOBAL:
                target = f"g[{self._gslot(symbol)}]"
            else:
                target = f"r[{self._rslot(symbol)}]"
            if self._risky:
                em.line(f"{target}[_lsel] = _msk({wt}, _ok)")
            else:
                em.line(f"{target}[_ix] = {wt}")
        em.line("_nxA = _ari(_nxK, _n)")
        if has_done:
            rt = self.fsmd.return_type
            if rt is not None and rt.bit_width > 0:
                result_expr = self._wrap_expr("_rsK", rt)
            else:
                result_expr = "_rsK"
            if self._risky:
                em.line("_dn = ((_nxA < 0) & _ok)")
            else:
                em.line("_dn = (_nxA < 0)")
            em.line("if _dn.any():")
            em.line("    _di = _ix[_dn]")
            em.line("    _hh = (_msk(_ari(_hsK, _n), _dn) != 0)")
            em.line("    resok[_di] = _hh")
            em.line(
                f"    res[_di] = _np.where(_hh,"
                f" _msk(_ari({result_expr}, _n), _dn), 0)"
            )
        em.line(f"return _nxA, {'_tr' if self._risky else 'None'}")

    # -- per-state functions ------------------------------------------------

    def _emit_vector_state(self, em: _Emitter, state: State) -> None:
        body = _Emitter()
        body.depth = em.depth + 1
        local: Set[Any] = set()
        self._vstores: List[Tuple[int, str, str, Optional[str]]] = []
        self._risky = False
        self._tmp = 0
        try:
            for op in state.ops:
                if op.kind in (OpKind.SEND, OpKind.RECV):
                    raise _Unvectorizable("channel op on the fast path")
                self._emit_vop(body, op, local)
            self._emit_vcommit(body, state, local)
        except (_Unvectorizable, _NeverDefined, InterpError):
            # No exact vector form (or the scalar form raises for every
            # lane): trap every lane that enters; the scalar replay
            # reproduces the exact behaviour, error or not.
            self.trap_states.add(state.id)
            em.line(f"def s{state.id}(_ix, _n):")
            em.line("    return (_np.full(_n, -2, dtype=_np.int64),")
            em.line("            _np.ones(_n, dtype=_np.bool_))")
            return
        em.line(f"def s{state.id}(_ix, _n):")
        if self._risky:
            em.line("    _tr = _np.zeros(_n, dtype=_np.bool_)")
        em.lines.extend(body.lines)

    def compile_vector(self):
        self.assign_slots()
        em = _Emitter()
        em.line("def _vfactory(r, w, g, mems, res, resok):")
        em.depth += 1
        body_mark = len(em.lines)
        states = self.fsmd.states
        for state in states:
            self._emit_vector_state(em, state)
        names = ", ".join(f"s{state.id}" for state in states)
        em.line(f"return [{names}]")
        prologue = _Emitter()
        prologue.depth = 1
        for index in range(len(self.mem_spec)):
            prologue.line(f"m{index} = mems[{index}]")
            prologue.line(f"_L{index} = m{index}.shape[1]")
        em.lines[body_mark:body_mark] = prologue.lines
        plan = self.plan
        plan.source = em.source()
        plan.n_regs = len(self.reg_slots)
        plan.n_wires = len(self.wire_slots)
        plan.mem_spec = self.mem_spec
        namespace: Dict[str, Any] = {
            "_np": _np,
            "_ari": _as_lane_array,
            "_msk": _mask_value,
            "_whr": _where,
        }
        code = compile(plan.source, f"<batched-fsmd:{self.fsmd.name}>", "exec")
        exec(code, namespace)
        plan.factory = namespace["_vfactory"]
        return plan


# -- runtime helpers closed over by the generated code -----------------------

def _as_lane_array(x, n):
    """Broadcast a scalar (or 0-d array) to an int64 lane vector."""
    if isinstance(x, _np.ndarray) and x.ndim:
        return x
    return _np.full(n, int(x), dtype=_np.int64)


def _mask_value(x, m):
    """Select masked lanes from an array; scalars broadcast as-is."""
    if isinstance(x, _np.ndarray) and x.ndim:
        return x[m]
    return x


def _where(c, a, b):
    """np.where that keeps pure-scalar expressions scalar."""
    if isinstance(c, _np.ndarray):
        return _np.where(c, a, b)
    return a if c else b


def _memory_words(system: FSMDSystem, kind: str, symbol) -> List[int]:
    """One lane's initial memory contents, exactly as the scalar plan
    builds them (a global's memory image *replaces* the declared words,
    length included; a local's image is padded to the declared size)."""
    assert isinstance(symbol.type, ArrayType)
    size = symbol.type.size
    image = system.memory_images.get(symbol)
    if kind == "global":
        if image is not None:
            return list(image)
        words = [0] * size
        init = system.global_inits.get(symbol.name)
        if isinstance(init, list):
            for i, v in enumerate(init):
                words[i] = v
        return words
    if image is not None:
        return list(image) + [0] * (size - len(image))
    return [0] * size


def _width_fits(value_type) -> bool:
    try:
        rt = _as_int_type(value_type)
    except InterpError:
        return False
    return rt.width <= MAX_VECTOR_WIDTH


class _VectorPlan:
    """The vectorized form of a fast-path system, built once and cached."""

    def __init__(self, system: FSMDSystem, scalar: SystemPlan):
        if not HAVE_NUMPY:
            raise _Unvectorizable("NumPy unavailable")
        if not scalar.fast:
            raise _Unvectorizable("multi-machine / rendezvous system")
        self.system = system
        self.scalar = scalar
        self.compile_s = 0.0
        fsmd = system.fsmds[0]
        # Storage-level width gate: every array cell is an int64.  Ops on
        # wider types trap per state, but params/globals/memories must
        # also *hold* their wrapped values exactly.
        storage = list(fsmd.params) + list(fsmd.registers)
        storage += list(system.global_registers)
        storage += list(system.global_arrays)
        storage += list(system.memory_images)
        for symbol in storage:
            stype = symbol.type
            if isinstance(stype, ArrayType):
                stype = stype.element
            if not _width_fits(stype):
                raise _Unvectorizable(f"{symbol.name}: storage too wide")
        started = perf_counter()
        compiler = _VectorMachineCompiler(fsmd, scalar.global_slots)
        self.plan = compiler.compile_vector()
        self.trap_states = compiler.trap_states
        self.compile_s = perf_counter() - started

    def dump(self) -> str:
        """The generated vector source, for debugging."""
        return self.plan.source

    # -- per-batch storage --------------------------------------------------

    def _instantiate(self, arg_sets: Sequence[Sequence[int]]):
        system, plan = self.system, self.plan
        n = len(arg_sets)
        r = _np.zeros((max(plan.n_regs, 1), n), dtype=_np.int64)
        w = _np.zeros((max(plan.n_wires, 1), n), dtype=_np.int64)
        g = _np.zeros((max(len(self.scalar.global_slots), 1), n),
                      dtype=_np.int64)
        for symbol, slot in self.scalar.global_slots.items():
            init = system.global_inits.get(symbol.name, 0)
            if isinstance(init, int):
                g[slot, :] = wrap(init, symbol.type)
        mems: List[Any] = []
        for kind, symbol in plan.mem_spec:
            base = _memory_words(system, kind, symbol)
            mems.append(_np.tile(
                _np.array(base, dtype=_np.int64), (n, 1)
            ))
        # Lanes whose argument count is wrong go straight to scalar
        # replay, which raises the backend's exact arity error.
        replay = _np.zeros(n, dtype=_np.bool_)
        for lane, args in enumerate(arg_sets):
            if len(args) != len(plan.param_slots):
                replay[lane] = True
                continue
            for (slot, symbol), value in zip(plan.param_slots, args):
                r[slot, lane] = wrap(value, symbol.type)
        res = _np.zeros(n, dtype=_np.int64)
        resok = _np.zeros(n, dtype=_np.bool_)
        fns = plan.factory(r, w, g, mems, res, resok)
        return r, g, mems, res, resok, fns, replay

    # -- the lockstep driver ------------------------------------------------

    def run_batch(
        self,
        arg_sets: Sequence[Tuple[int, ...]],
        max_cycles: int,
        profile: Optional[SimProfile] = None,
    ) -> List[BatchLane]:
        n = len(arg_sets)
        _, g, mems, res, resok, fns, replay = self._instantiate(arg_sets)
        plan = self.plan
        state = _np.full(n, plan.entry, dtype=_np.int64)
        active = ~replay
        finish = _np.zeros(n, dtype=_np.int64)
        budget = _np.zeros(n, dtype=_np.bool_)
        labels, name = plan.labels, plan.name
        cycle = 0
        while active.any():
            if cycle >= max_cycles:
                budget |= active
                active[:] = False
                break
            act = _np.nonzero(active)[0]
            sts = state[act]
            for sid in _np.unique(sts):
                grp = act[sts == sid]
                if profile is not None:
                    profile.visit(name, labels[sid], count=int(grp.size))
                nx, trapped = fns[int(sid)](grp, int(grp.size))
                if trapped is not None and trapped.any():
                    bad = grp[trapped]
                    replay[bad] = True
                    active[bad] = False
                    keep = ~trapped
                    grp, nx = grp[keep], nx[keep]
                done = nx < 0
                if done.any():
                    fin = grp[done]
                    active[fin] = False
                    finish[fin] = cycle + 1
                state[grp] = nx
            cycle += 1

        budget_error = f"cycle budget of {max_cycles} exhausted"
        lanes: List[BatchLane] = []
        for i in range(n):
            args = tuple(arg_sets[i])
            if replay[i]:
                lanes.append(_scalar_lane(
                    self.scalar, args, None, max_cycles
                ))
            elif budget[i]:
                lanes.append(BatchLane(
                    args=args, error=budget_error,
                    error_kind="SimulationError",
                ))
            else:
                lanes.append(BatchLane(
                    args=args,
                    result=self._lane_result(
                        i, res, resok, finish, g, mems
                    ),
                ))
        return lanes

    def _lane_result(self, i, res, resok, finish, g, mems) -> SimResult:
        system = self.system
        result = SimResult(
            value=int(res[i]) if resok[i] else None,
            cycles=int(finish[i]),
            stall_cycles=0,
        )
        for symbol in system.global_registers:
            result.globals[symbol.name] = int(
                g[self.scalar.global_slots[symbol], i]
            )
        referenced = {
            symbol: index
            for index, (kind, symbol) in enumerate(self.plan.mem_spec)
            if kind == "global"
        }
        for symbol in system.global_arrays:
            index = referenced.get(symbol)
            if index is not None:
                result.globals[symbol.name] = [
                    int(v) for v in mems[index][i]
                ]
            else:
                result.globals[symbol.name] = _memory_words(
                    system, "global", symbol
                )
        result.channel_log = {c.name: [] for c in system.channels}
        result.per_process_cycles[self.plan.name] = int(finish[i])
        return result


def _scalar_lane(
    plan: SystemPlan,
    args: Tuple[int, ...],
    process_args,
    max_cycles: int,
    profile: Optional[SimProfile] = None,
) -> BatchLane:
    """Run one lane through the scalar compiled plan, capturing errors."""
    try:
        result = plan.run(
            args=args, process_args=process_args,
            max_cycles=max_cycles, profile=profile,
        )
    except InterpError as failure:        # SimulationError subclasses it
        return BatchLane(
            args=args,
            error=str(failure),
            error_kind=type(failure).__name__,
        )
    return BatchLane(args=args, result=result)


def _vector_plan_for(system: FSMDSystem) -> Optional[_VectorPlan]:
    """The cached vector plan, or None when the system has no exact one."""
    cached = getattr(system, "_batched_plan", None)
    if cached is not None:
        plan = cached[0]
        if plan is None or plan.system is system:
            return plan
    scalar = compile_system(system)
    try:
        plan: Optional[_VectorPlan] = _VectorPlan(system, scalar)
    except _Unvectorizable:
        plan = None
    system._batched_plan = (plan,)      # cache on the (plain) dataclass
    return plan


def _run_lanes(
    plan: SystemPlan,
    arg_sets: Sequence[Tuple[int, ...]],
    process_args,
    max_cycles: int,
    profile: Optional[SimProfile],
) -> List[BatchLane]:
    """The engine-independent fallback: lanes share one specialisation
    and run sequentially through it, so the batch still amortizes the
    compile."""
    lanes: List[BatchLane] = []
    for args in arg_sets:
        scratch = SimProfile() if profile is not None else None
        lane = _scalar_lane(
            plan, tuple(args), process_args, max_cycles, profile=scratch
        )
        if scratch is not None and profile is not None:
            for machine, per_state in scratch.state_visits.items():
                for label, count in per_state.items():
                    profile.visit(machine, label, count)
        lanes.append(lane)
    return lanes


def simulate_batched(
    system: FSMDSystem,
    arg_sets: Sequence[Sequence[int]],
    max_cycles: int = 2_000_000,
    process_args: Optional[Dict[str, Sequence[int]]] = None,
    profile: Optional[SimProfile] = None,
    engine: str = "auto",
) -> BatchResult:
    """Simulate ``system`` on every argument set in ``arg_sets``.

    ``engine`` is ``"auto"`` (vector when NumPy and the fast path allow,
    else lanes), ``"vector"`` (require the vector engine), or ``"lanes"``
    (force the fallback).  Each lane is bit-identical — value, cycles,
    globals, channel log, error class and message — to a scalar
    ``simulate`` of the same arguments."""
    if engine not in ENGINES:
        raise ValueError(
            f"unknown batch engine {engine!r} (expected one of {ENGINES})"
        )
    normalized = [tuple(args) for args in arg_sets]
    scalar = compile_system(system)
    vector: Optional[_VectorPlan] = None
    if engine in ("auto", "vector") and not process_args:
        vector = _vector_plan_for(system)
    if engine == "vector" and vector is None:
        raise ValueError(
            "vector engine unavailable for this system"
            " (needs NumPy, a single rendezvous-free machine, and"
            f" storage widths <= {MAX_VECTOR_WIDTH})"
        )
    started = perf_counter()
    if vector is not None:
        try:
            lanes = vector.run_batch(normalized, max_cycles, profile=profile)
            used = "vector"
            compile_s = scalar.compile_s + vector.compile_s
        except OverflowError:
            # A memory image or argument outside int64: the lane engine
            # (arbitrary-precision Python ints) handles it exactly.
            vector = None
            if profile is not None:
                profile.state_visits = {}
    if vector is None:
        lanes = _run_lanes(
            scalar, normalized, process_args, max_cycles, profile
        )
        used = "lanes"
        compile_s = scalar.compile_s
    execute_s = perf_counter() - started
    if profile is not None:
        profile.backend = "batched"
        profile.compile_s = compile_s
        profile.execute_s = execute_s
        profile.lanes = len(lanes)
        profile.lane_cycles = [
            lane.result.cycles if lane.ok else 0 for lane in lanes
        ]
        profile.cycles = sum(profile.lane_cycles)
    return BatchResult(
        lanes=lanes, engine=used,
        compile_s=compile_s, execute_s=execute_s,
    )


def simulate_one_batched(
    system: FSMDSystem,
    args: Sequence[int] = (),
    max_cycles: int = 2_000_000,
    process_args: Optional[Dict[str, Sequence[int]]] = None,
    profile: Optional[SimProfile] = None,
) -> SimResult:
    """The scalar view: a one-lane batch that re-raises lane errors, so
    ``sim_backend="batched"`` drops in wherever the other backends go."""
    batch = simulate_batched(
        system, [tuple(args)], max_cycles=max_cycles,
        process_args=process_args, profile=profile,
    )
    lane = batch.lanes[0]
    if not lane.ok:
        lane.raise_error()
    assert lane.result is not None
    return lane.result


__all__ = [
    "BatchLane",
    "BatchResult",
    "ENGINES",
    "HAVE_NUMPY",
    "MAX_VECTOR_WIDTH",
    "simulate_batched",
    "simulate_one_batched",
]
