"""Closure-compiled FSMD simulation backend.

The interpreter in :mod:`fsmd_sim` pays for its generality every cycle:
each :class:`Operation` goes through ``OpKind`` dispatch, every operand
read hashes a ``Symbol`` or ``VReg`` into a dict, arithmetic re-derives
its width from the destination type, and rendezvous-dependent values are
signalled by raising ``_ValueNotReady``.  None of that depends on the
cycle being simulated — only on the state — so this backend specialises
each :class:`FSMDSystem` **once**:

* every scalar register, global, and cross-state wire gets a fixed list
  slot, assigned at compile time (``r[i]``, ``g[i]``, ``w[i]``);
* each state's op list, latch map, and transition tree are lowered to
  Python source with the two's-complement wrap inlined as mask
  arithmetic, then ``exec``-compiled into per-state closures;
* when the system is a single machine with no channel operations, a fast
  path drops every piece of rendezvous bookkeeping: the cycle loop is
  ``state = fns[state]()``.

Multi-machine systems keep the interpreter's exact three-phase cycle
(evaluate combinationally, match rendezvous, commit in machine order),
with each phase a pre-compiled closure per state, so channel logs, stall
accounting, same-cycle global-write races, and deadlock reports are
bit-identical to the interpreter.

The compiled plan is cached on the system object, so repeated ``run``
calls (sweeps over argument values, fuzz campaigns) pay for compilation
once.

The interpreter remains authoritative for *malformed* machines: a state
that reads a wire its block never produced raises "read before being
computed" there, while the compiled code reads a stale slot.  Every flow
in the registry produces well-formed machines (defs precede uses), and
the backend-equivalence suite plus the fuzz oracle hold the two backends
to identical results on all of them.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..interp.machine import _as_int_type, wrap
from ..lang.errors import InterpError
from ..lang.symtab import Symbol, SymbolKind
from ..lang.types import ArrayType, Type
from ..ir.ops import Const, Operand, Operation, OpKind, VReg, VarRead
from ..rtl.fsmd import CondNext, Done, FSMD, FSMDSystem, NextState, State
from .fsmd_sim import SimResult, SimulationError
from .profile import SimProfile

_COMPARISONS = {"==", "!=", "<", "<=", ">", ">="}
_WRAPPING = {"+", "-", "*", "&", "|", "^"}


def _state_label(state: State) -> str:
    return state.label or f"S{state.id}"


class _NeverDefined(Exception):
    """Compile-time marker: an operand reads a vreg no state produces.

    The interpreter raises "read before being computed" when such an op
    executes; the compiler emits that exact raise at the same spot."""

    def __init__(self, vreg: VReg):
        super().__init__(vreg)
        self.vreg = vreg


class _Emitter:
    """Indented line buffer for one generated module."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.depth = 0

    def line(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _Ctx:
    """Per-machine mutable runtime state shared with the generated code."""

    __slots__ = ("state", "done", "result", "finish")

    def __init__(self, entry: int):
        self.state = entry
        self.done = False
        self.result: Optional[int] = None
        self.finish: Optional[int] = None


class _MachinePlan:
    """The compiled form of one FSMD: generated source + slot layout."""

    def __init__(self, fsmd: FSMD):
        self.name = fsmd.name
        self.fsmd = fsmd
        self.entry = fsmd.entry
        self.source = ""
        self.factory: Optional[Callable] = None
        # (slot, symbol) per scalar parameter, in declaration order.
        self.param_slots: List[Tuple[int, Symbol]] = []
        self.n_regs = 0
        self.n_wires = 0
        # ("local" | "global", array symbol) per memory index.
        self.mem_spec: List[Tuple[str, Symbol]] = []
        # Per state: None, or ("send" | "recv", channel symbol).
        self.chan: List[Optional[Tuple[str, Symbol]]] = []
        self.labels: List[str] = [_state_label(s) for s in fsmd.states]


class _MachineRuntime:
    """One machine's closures + context for a single ``run``."""

    __slots__ = ("name", "ctx", "phase1", "phase3", "sends", "recvs",
                 "chan", "labels")

    def __init__(self, plan: _MachinePlan, factory_result, ctx: _Ctx):
        self.name = plan.name
        self.ctx = ctx
        self.phase1, self.phase3, self.sends, self.recvs = factory_result
        self.chan = plan.chan
        self.labels = plan.labels


class _MachineCompiler:
    """Lowers one FSMD into Python source for its per-state closures."""

    def __init__(
        self,
        fsmd: FSMD,
        global_slots: Dict[Symbol, int],
        fast: bool,
    ):
        self.fsmd = fsmd
        self.fast = fast
        self.global_slots = global_slots        # shared, system-wide
        self.reg_slots: Dict[Symbol, int] = {}
        self.wire_slots: Dict[VReg, int] = {}
        self.mem_index: Dict[Symbol, int] = {}
        self.mem_spec: List[Tuple[str, Symbol]] = []
        self.plan = _MachinePlan(fsmd)
        self._tmp = 0
        # The state's rendezvous op (first SEND/RECV), if any; every other
        # channel op in the state is inert, exactly as in the interpreter.
        self.chan_op: Dict[int, Optional[Operation]] = {
            s.id: s.channel_op() for s in fsmd.states
        }
        self.defined: Set[VReg] = set()
        for state in fsmd.states:
            channel = self.chan_op[state.id]
            for op in state.ops:
                if op.kind in (OpKind.SEND, OpKind.RECV):
                    if op is channel and op.kind is OpKind.RECV:
                        assert op.dest is not None
                        self.defined.add(op.dest)
                    continue
                if op.dest is not None:
                    self.defined.add(op.dest)

    # -- slot layout --------------------------------------------------------

    def _rslot(self, symbol: Symbol) -> int:
        slot = self.reg_slots.get(symbol)
        if slot is None:
            slot = len(self.reg_slots)
            self.reg_slots[symbol] = slot
        return slot

    def _gslot(self, symbol: Symbol) -> int:
        slot = self.global_slots.get(symbol)
        if slot is None:
            slot = len(self.global_slots)
            self.global_slots[symbol] = slot
        return slot

    def _wslot(self, vreg: VReg) -> int:
        slot = self.wire_slots.get(vreg)
        if slot is None:
            slot = len(self.wire_slots)
            self.wire_slots[vreg] = slot
        return slot

    def _mslot(self, array: Symbol) -> int:
        index = self.mem_index.get(array)
        if index is None:
            index = len(self.mem_spec)
            self.mem_index[array] = index
            kind = "global" if array.kind is SymbolKind.GLOBAL else "local"
            self.mem_spec.append((kind, array))
        return index

    @staticmethod
    def _vreg_reads(operands: Sequence[Operand]) -> List[VReg]:
        return [o for o in operands if isinstance(o, VReg)]

    def _transition_reads(self, state: State) -> List[VReg]:
        reads: List[VReg] = []

        def walk(tr) -> None:
            if isinstance(tr, CondNext):
                if isinstance(tr.cond, VReg):
                    reads.append(tr.cond)
                walk(tr.if_true)
                walk(tr.if_false)
            elif isinstance(tr, Done) and isinstance(tr.value, VReg):
                reads.append(tr.value)

        walk(state.transition)
        for value in state.latches.values():
            if isinstance(value, VReg):
                reads.append(value)
        return reads

    def assign_slots(self) -> None:
        """Decide which vregs live in the wire array ``w``.

        A vreg needs a slot when some reader cannot see the producing
        function's local: a read in a different state, the rendezvous
        scheduler reading a send operand or writing a recv destination,
        or (multi-machine mode) the commit closure of a non-offering
        state, which runs in phase 3 while the ops ran in phase 1."""
        for state in self.fsmd.states:
            channel = self.chan_op[state.id]
            local: Set[VReg] = set()
            for op in state.ops:
                if op.kind in (OpKind.SEND, OpKind.RECV):
                    if op is channel:
                        if op.kind is OpKind.RECV:
                            assert op.dest is not None
                            self._wslot(op.dest)
                            local.add(op.dest)
                        elif isinstance(op.operands[0], VReg):
                            self._wslot(op.operands[0])
                    continue
                for vreg in self._vreg_reads(op.operands):
                    if vreg not in local and vreg in self.defined:
                        self._wslot(vreg)
                if op.dest is not None:
                    local.add(op.dest)
            commit_split = not self.fast and channel is None
            for vreg in self._transition_reads(state):
                if (commit_split or vreg not in local) and vreg in self.defined:
                    self._wslot(vreg)
        # Preassign register slots in a stable order: declared registers,
        # then parameters (reads of anything else default to fresh slots
        # initialised to 0, matching the interpreter's ``.get(sym, 0)``).
        for symbol in self.fsmd.registers:
            if symbol.kind is not SymbolKind.GLOBAL:
                self._rslot(symbol)
        for symbol in self.fsmd.params:
            if not isinstance(symbol.type, ArrayType):
                self.plan.param_slots.append((self._rslot(symbol), symbol))

    # -- expressions --------------------------------------------------------

    def _expr(self, operand: Operand, local: Set[VReg]) -> str:
        if isinstance(operand, Const):
            return repr(operand.value)
        if isinstance(operand, VarRead):
            symbol = operand.var
            if symbol.kind is SymbolKind.GLOBAL:
                return f"g[{self._gslot(symbol)}]"
            return f"r[{self._rslot(symbol)}]"
        if operand in local:
            return f"v{operand.id}"
        if operand in self.defined:
            return f"w[{self._wslot(operand)}]"
        raise _NeverDefined(operand)

    def _wrap_expr(self, expr: str, value_type: Type) -> str:
        rt = _as_int_type(value_type)       # may raise InterpError
        mask = (1 << rt.width) - 1
        if rt.signed:
            half = 1 << (rt.width - 1)
            return f"((({expr}) + {half}) & {mask}) - {half}"
        return f"({expr}) & {mask}"

    def _temp(self, prefix: str = "_t") -> str:
        self._tmp += 1
        return f"{prefix}{self._tmp}"

    def _raise_read(self, em: _Emitter, vreg: VReg, where: str = "") -> None:
        message = f"{self.fsmd.name}: {vreg} read before being computed{where}"
        em.line(f"raise SimulationError({message!r})")

    # -- op lowering --------------------------------------------------------

    def _assign_dest(self, em: _Emitter, op: Operation, rhs: str,
                     local: Set[VReg]) -> None:
        assert op.dest is not None
        name = f"v{op.dest.id}"
        em.line(f"{name} = {rhs}")
        local.add(op.dest)
        slot = self.wire_slots.get(op.dest)
        if slot is not None:
            em.line(f"w[{slot}] = {name}")

    def _emit_op(self, em: _Emitter, op: Operation, local: Set[VReg],
                 store_mode: str) -> None:
        """Lower one non-channel op.  ``store_mode``:

        * ``"temps"`` — buffer stores in per-op temps, applied by
          :meth:`_apply_stores` after the op list (fast / post closures);
        * ``"list"``  — append stores to the machine's shared ``_st``
          buffer, applied by the commit closure (split eval closures);
        * ``"check"`` — bounds-check only, no store (pre closures: the
          interpreter discards phase-A stores of offering states)."""
        kind = op.kind
        try:
            if kind is OpKind.BINARY:
                self._emit_binary(em, op, local)
            elif kind is OpKind.UNARY:
                self._emit_unary(em, op, local)
            elif kind is OpKind.CAST:
                assert op.dest is not None
                rhs = self._wrap_expr(
                    self._expr(op.operands[0], local), op.dest.type
                )
                self._assign_dest(em, op, rhs, local)
            elif kind is OpKind.SELECT:
                assert op.dest is not None
                cond = self._expr(op.operands[0], local)
                if_true = self._expr(op.operands[1], local)
                if_false = self._expr(op.operands[2], local)
                chosen = f"({if_true}) if ({cond}) else ({if_false})"
                self._assign_dest(
                    em, op, self._wrap_expr(chosen, op.dest.type), local
                )
            elif kind is OpKind.LOAD:
                self._emit_load(em, op, local)
            elif kind is OpKind.STORE:
                self._emit_store(em, op, local, store_mode)
            elif kind in (OpKind.BARRIER, OpKind.DELAY, OpKind.NOP):
                pass
            else:
                message = f"FSMD cannot execute {op.kind}"
                em.line(f"raise SimulationError({message!r})")
        except _NeverDefined as missing:
            self._raise_read(em, missing.vreg)
        except InterpError as err:
            em.line(f"raise InterpError({str(err)!r})")

    def _emit_binary(self, em: _Emitter, op: Operation, local: Set[VReg]) -> None:
        assert op.dest is not None
        a = self._expr(op.operands[0], local)
        b = self._expr(op.operands[1], local)
        o = op.op
        if o in _WRAPPING:
            rhs = self._wrap_expr(f"({a}) {o} ({b})", op.dest.type)
        elif o in _COMPARISONS:
            rhs = f"1 if ({a}) {o} ({b}) else 0"
        elif o == "&&":
            rhs = f"1 if ({a}) and ({b}) else 0"
        elif o == "||":
            rhs = f"1 if ({a}) or ({b}) else 0"
        elif o == "/" or o == "%":
            rt = _as_int_type(op.dest.type)
            ta, tb, tq = self._temp("_a"), self._temp("_b"), self._temp("_q")
            em.line(f"{ta} = {a}")
            em.line(f"{tb} = {b}")
            word = "division" if o == "/" else "modulo"
            em.line(f"if {tb} == 0:")
            em.line(f"    raise InterpError('{word} by zero')")
            em.line(f"{tq} = abs({ta}) // abs({tb})")
            em.line(f"if ({ta} < 0) != ({tb} < 0):")
            em.line(f"    {tq} = -{tq}")
            if o == "/":
                rhs = self._wrap_expr(tq, rt)
            else:
                rhs = self._wrap_expr(f"{ta} - {tq} * {tb}", rt)
        elif o == "<<" or o == ">>":
            rt = _as_int_type(op.dest.type)
            tb = self._temp("_b")
            em.line(f"{tb} = {b}")
            em.line(f"if {tb} < 0:")
            em.line(
                f"    raise InterpError('negative shift amount %d' % {tb})"
            )
            em.line(f"elif {tb} > {rt.width}:")
            em.line(f"    {tb} = {rt.width}")
            rhs = self._wrap_expr(f"({a}) {o} {tb}", rt)
        else:
            message = f"unknown binary operator {o!r}"
            em.line(f"raise InterpError({message!r})")
            return
        self._assign_dest(em, op, rhs, local)

    def _emit_unary(self, em: _Emitter, op: Operation, local: Set[VReg]) -> None:
        assert op.dest is not None
        a = self._expr(op.operands[0], local)
        o = op.op
        if o == "-":
            rhs = self._wrap_expr(f"-({a})", op.dest.type)
        elif o == "~":
            rhs = self._wrap_expr(f"~({a})", op.dest.type)
        elif o == "!":
            rhs = f"1 if ({a}) == 0 else 0"
        else:
            message = f"unknown unary operator {o!r}"
            em.line(f"raise InterpError({message!r})")
            return
        self._assign_dest(em, op, rhs, local)

    def _bounds_raise(self, op: Operation, index_temp: str) -> str:
        assert op.array is not None
        verb = "load" if op.kind is OpKind.LOAD else "store"
        mem = self._mslot(op.array)
        prefix = f"{self.fsmd.name}: {verb} {op.array.unique_name}["
        return (
            f"raise SimulationError({prefix!r} + str({index_temp})"
            f" + '] out of bounds (size %d)' % _L{mem})"
        )

    def _emit_load(self, em: _Emitter, op: Operation, local: Set[VReg]) -> None:
        assert op.dest is not None and op.array is not None
        mem = self._mslot(op.array)
        index = self._expr(op.operands[0], local)
        ti = self._temp("_i")
        em.line(f"{ti} = {index}")
        if self.fsmd.tolerant_memory:
            rhs = f"m{mem}[{ti}] if 0 <= {ti} < _L{mem} else 0"
        else:
            em.line(f"if not 0 <= {ti} < _L{mem}:")
            em.line(f"    {self._bounds_raise(op, ti)}")
            rhs = f"m{mem}[{ti}]"
        self._assign_dest(em, op, rhs, local)

    def _emit_store(self, em: _Emitter, op: Operation, local: Set[VReg],
                    store_mode: str) -> None:
        assert op.array is not None
        mem = self._mslot(op.array)
        index = self._expr(op.operands[0], local)
        ti = self._temp("_i")
        em.line(f"{ti} = {index}")
        if self.fsmd.tolerant_memory:
            if store_mode == "check":
                return
            value = self._expr(op.operands[1], local)
            em.line(f"if 0 <= {ti} < _L{mem}:")
            if store_mode == "list":
                em.line(f"    _st.append((m{mem}, {ti}, {value}))")
            else:
                tv = self._temp("_v")
                em.line(f"    {tv} = {value}")
                em.line("else:")
                em.line(f"    {ti} = -1")
                self._pending_stores.append((mem, ti, tv, True))
            return
        em.line(f"if not 0 <= {ti} < _L{mem}:")
        em.line(f"    {self._bounds_raise(op, ti)}")
        if store_mode == "check":
            return
        value = self._expr(op.operands[1], local)
        if store_mode == "list":
            em.line(f"_st.append((m{mem}, {ti}, {value}))")
        else:
            tv = self._temp("_v")
            em.line(f"{tv} = {value}")
            self._pending_stores.append((mem, ti, tv, False))

    def _apply_stores(self, em: _Emitter) -> None:
        """Apply temp-buffered stores, in op order, at the clock edge."""
        for mem, ti, tv, tolerant in self._pending_stores:
            if tolerant:
                em.line(f"if {ti} >= 0:")
                em.line(f"    m{mem}[{ti}] = {tv}")
            else:
                em.line(f"m{mem}[{ti}] = {tv}")
        self._pending_stores = []

    # -- transition + latches (the clock edge) ------------------------------

    def _emit_commit(self, em: _Emitter, state: State, local: Set[VReg],
                     race_check: bool) -> None:
        """Next-state decision, then latches, then the done/return tail.

        Mirrors the interpreter's ordering exactly: the transition tree
        and every latch operand are read combinationally (pre-edge), then
        latches fire, then done is recorded."""
        has_done = self._has_done(state.transition)
        if has_done:
            em.line("_res = None")
        self._emit_transition_tree(em, state, local)
        self._emit_latches(em, state, local, race_check)
        if has_done:
            em.line("if _nx < 0:")
            em.line("    if _res is not None:")
            rt = self.fsmd.return_type
            if rt is not None and rt.bit_width > 0:
                try:
                    wrapped = self._wrap_expr("_res", rt)
                    em.line(f"        ctx.result = {wrapped}")
                except InterpError as err:
                    em.line(f"        raise InterpError({str(err)!r})")
            else:
                em.line("        ctx.result = _res")
        em.line("return _nx")

    @staticmethod
    def _has_done(transition) -> bool:
        if isinstance(transition, Done):
            return True
        if isinstance(transition, CondNext):
            return (_MachineCompiler._has_done(transition.if_true)
                    or _MachineCompiler._has_done(transition.if_false))
        return False

    def _emit_transition_tree(self, em: _Emitter, state: State,
                              local: Set[VReg]) -> None:
        def walk(tr) -> None:
            if isinstance(tr, int):
                em.line(f"_nx = {tr}")
            elif isinstance(tr, NextState):
                em.line(f"_nx = {tr.target}")
            elif isinstance(tr, Done):
                em.line("_nx = -1")
                if tr.value is not None:
                    try:
                        em.line(f"_res = {self._expr(tr.value, local)}")
                    except _NeverDefined as missing:
                        self._raise_read(
                            em, missing.vreg, " (latch/transition)"
                        )
            elif isinstance(tr, CondNext):
                try:
                    cond = self._expr(tr.cond, local)
                except _NeverDefined as missing:
                    self._raise_read(em, missing.vreg, " (latch/transition)")
                    return
                em.line(f"if {cond}:")
                em.depth += 1
                walk(tr.if_true)
                em.depth -= 1
                em.line("else:")
                em.depth += 1
                walk(tr.if_false)
                em.depth -= 1
            else:
                message = f"state {state.label} has no transition"
                em.line(f"raise SimulationError({message!r})")
                em.line("_nx = -1")    # unreachable; keeps _nx bound

        walk(state.transition)

    def _emit_latches(self, em: _Emitter, state: State, local: Set[VReg],
                      race_check: bool) -> None:
        writes: List[Tuple[Symbol, str]] = []
        for symbol, value in state.latches.items():
            try:
                expr = self._expr(value, local)
            except _NeverDefined as missing:
                self._raise_read(em, missing.vreg, " (latch/transition)")
                return
            temp = self._temp("_l")
            em.line(f"{temp} = {expr}")
            writes.append((symbol, temp))
        for symbol, temp in writes:
            try:
                wrapped = self._wrap_expr(temp, symbol.type)
            except InterpError as err:
                em.line(f"raise InterpError({str(err)!r})")
                return
            if symbol.kind is SymbolKind.GLOBAL:
                slot = self._gslot(symbol)
                if race_check:
                    prefix = f"global {symbol.name!r} written by "
                    suffix = f" and {self.fsmd.name} in the same cycle"
                    em.line(f"_p = gw.get({slot})")
                    em.line(
                        f"if _p is not None and _p != {self.fsmd.name!r}:"
                    )
                    em.line(
                        f"    raise SimulationError({prefix!r} + _p"
                        f" + {suffix!r})"
                    )
                    em.line(f"gw[{slot}] = {self.fsmd.name!r}")
                em.line(f"g[{slot}] = {wrapped}")
            else:
                em.line(f"r[{self._rslot(symbol)}] = {wrapped}")

    # -- per-state closures -------------------------------------------------

    def _begin_fn(self, em: _Emitter, header: str) -> int:
        em.line(header)
        em.depth += 1
        return len(em.lines)

    def _end_fn(self, em: _Emitter, mark: int) -> None:
        if len(em.lines) == mark:
            em.line("pass")
        em.depth -= 1

    def _emit_fast_state(self, em: _Emitter, state: State) -> None:
        mark = self._begin_fn(em, f"def s{state.id}():")
        local: Set[VReg] = set()
        self._pending_stores: List[Tuple[int, str, str, bool]] = []
        self._tmp = 0
        for op in state.ops:
            if op.kind in (OpKind.SEND, OpKind.RECV):
                continue
            self._emit_op(em, op, local, "temps")
        self._apply_stores(em)
        self._emit_commit(em, state, local, race_check=False)
        self._end_fn(em, mark)

    def _emit_eval_state(self, em: _Emitter, state: State) -> None:
        mark = self._begin_fn(em, f"def e{state.id}():")
        local: Set[VReg] = set()
        self._pending_stores = []
        self._tmp = 0
        for op in state.ops:
            if op.kind in (OpKind.SEND, OpKind.RECV):
                continue
            self._emit_op(em, op, local, "list")
        self._end_fn(em, mark)
        mark = self._begin_fn(em, f"def c{state.id}():")
        em.line("for _sm, _si, _sv in _st:")
        em.line("    _sm[_si] = _sv")
        em.line("del _st[:]")
        # The commit closure runs in phase 3: vreg reads come from wire
        # slots written in phase 1, register/global reads are live (later
        # machines see earlier machines' same-cycle global writes, exactly
        # like the interpreter's latch pass).
        self._emit_commit(em, state, set(), race_check=True)
        self._end_fn(em, mark)

    def _pre_skip_set(self, state: State) -> Set[VReg]:
        """Ops the interpreter's phase A skips via ``_ValueNotReady``:
        anything (transitively) reading the pending recv value or a vreg
        nothing produces."""
        channel = self.chan_op[state.id]
        unavailable: Set[VReg] = set()
        if channel is not None and channel.kind is OpKind.RECV:
            assert channel.dest is not None
            unavailable.add(channel.dest)
        skipped: Set[VReg] = set()
        for op in state.ops:
            if op.kind in (OpKind.SEND, OpKind.RECV):
                if op.dest is not None and op is not channel:
                    unavailable.add(op.dest)
                continue
            reads = self._vreg_reads(op.operands)
            tainted = any(
                v in unavailable or v not in self.defined for v in reads
            )
            if tainted and op.dest is not None:
                unavailable.add(op.dest)
            if tainted:
                skipped.add(id(op))     # type: ignore[arg-type]
        return skipped

    def _emit_offer_state(self, em: _Emitter, state: State) -> None:
        channel = self.chan_op[state.id]
        assert channel is not None and channel.channel is not None
        skipped = self._pre_skip_set(state)
        # Phase A: settle what does not depend on the rendezvous.  Stores
        # are bounds-checked (a strict OOB raises here, as in the
        # interpreter) but never applied — a stalled state's stores are
        # discarded and recomputed after the handshake.
        mark = self._begin_fn(em, f"def p{state.id}():")
        local: Set[VReg] = set()
        self._pending_stores = []
        self._tmp = 0
        for op in state.ops:
            if op.kind in (OpKind.SEND, OpKind.RECV) or id(op) in skipped:
                continue
            self._emit_op(em, op, local, "check")
        self._end_fn(em, mark)
        # Phase 3 (on match): re-settle everything, now that the received
        # value is in its wire slot, then commit in the same closure.
        mark = self._begin_fn(em, f"def o{state.id}():")
        local = set()
        self._pending_stores = []
        self._tmp = 0
        for op in state.ops:
            if op.kind in (OpKind.SEND, OpKind.RECV):
                continue
            self._emit_op(em, op, local, "temps")
        self._apply_stores(em)
        self._emit_commit(em, state, local, race_check=True)
        self._end_fn(em, mark)
        if channel.kind is OpKind.SEND:
            mark = self._begin_fn(em, f"def snd{state.id}():")
            try:
                em.line(f"return {self._expr(channel.operands[0], set())}")
            except _NeverDefined as missing:
                self._raise_read(em, missing.vreg)
            self._end_fn(em, mark)
            self.plan.chan[state.id] = ("send", channel.channel)
        else:
            assert channel.dest is not None
            mark = self._begin_fn(em, f"def rcv{state.id}(x):")
            slot = self._wslot(channel.dest)
            try:
                em.line(f"w[{slot}] = {self._wrap_expr('x', channel.dest.type)}")
            except InterpError as err:
                em.line(f"raise InterpError({str(err)!r})")
            self._end_fn(em, mark)
            self.plan.chan[state.id] = ("recv", channel.channel)

    # -- whole-machine assembly ---------------------------------------------

    def compile(self) -> _MachinePlan:
        self.assign_slots()
        em = _Emitter()
        em.line("def _factory(r, w, g, mems, ctx, gw):")
        em.depth += 1
        body_mark = len(em.lines)
        em.line("_st = []")
        states = self.fsmd.states
        self.plan.chan = [None] * len(states)
        # Emit every state; slot maps grow as expressions are generated.
        state_fns: List[str] = []
        for state in states:
            if self.fast:
                self._emit_fast_state(em, state)
                state_fns.append(f"s{state.id}")
            elif self.chan_op[state.id] is None:
                self._emit_eval_state(em, state)
            else:
                self._emit_offer_state(em, state)
        if self.fast:
            em.line(f"return [{', '.join(state_fns)}], None, None, None")
        else:
            phase1, phase3, sends, recvs = [], [], [], []
            for state in states:
                if self.chan_op[state.id] is None:
                    phase1.append(f"e{state.id}")
                    phase3.append(f"c{state.id}")
                    sends.append("None")
                    recvs.append("None")
                else:
                    phase1.append(f"p{state.id}")
                    phase3.append(f"o{state.id}")
                    is_send = self.chan_op[state.id].kind is OpKind.SEND
                    sends.append(f"snd{state.id}" if is_send else "None")
                    recvs.append("None" if is_send else f"rcv{state.id}")
            em.line(f"return ([{', '.join(phase1)}],")
            em.line(f"        [{', '.join(phase3)}],")
            em.line(f"        [{', '.join(sends)}],")
            em.line(f"        [{', '.join(recvs)}])")
        # Memory bindings, now that _mslot has seen every array: hoist the
        # list objects and their lengths into factory locals.
        prologue = _Emitter()
        prologue.depth = 1
        for index in range(len(self.mem_spec)):
            prologue.line(f"m{index} = mems[{index}]")
            prologue.line(f"_L{index} = len(m{index})")
        em.lines[body_mark:body_mark] = prologue.lines
        plan = self.plan
        plan.source = em.source()
        plan.n_regs = len(self.reg_slots)
        plan.n_wires = len(self.wire_slots)
        plan.mem_spec = self.mem_spec
        namespace: Dict[str, Any] = {
            "SimulationError": SimulationError,
            "InterpError": InterpError,
            "abs": abs,
        }
        code = compile(plan.source, f"<compiled-fsmd:{self.fsmd.name}>", "exec")
        exec(code, namespace)
        plan.factory = namespace["_factory"]
        return plan


class SystemPlan:
    """The compiled form of an entire :class:`FSMDSystem`.

    Built once per system (see :func:`compile_system`); :meth:`run` is
    then cheap: it allocates fresh storage lists, calls each machine's
    factory to close its state functions over them, and drives the cycle
    loop."""

    def __init__(self, system: FSMDSystem):
        self.system = system
        self.compile_s = 0.0
        self.fast = len(system.fsmds) == 1 and not any(
            state.channel_op() is not None
            for fsmd in system.fsmds
            for state in fsmd.states
        )
        self.global_slots: Dict[Symbol, int] = {}
        for symbol in system.global_registers:
            self.global_slots[symbol] = len(self.global_slots)
        self.machines: List[_MachinePlan] = [
            _MachineCompiler(fsmd, self.global_slots, self.fast).compile()
            for fsmd in system.fsmds
        ]

    def dump(self) -> str:
        """The generated Python source, for debugging."""
        parts = []
        for plan in self.machines:
            parts.append(f"# === {plan.name} ===\n{plan.source}")
        return "\n".join(parts)

    # -- per-run storage ----------------------------------------------------

    def _instantiate(
        self,
        args: Sequence[int],
        process_args: Optional[Dict[str, Sequence[int]]],
    ):
        system = self.system
        g = [0] * len(self.global_slots)
        for symbol in system.global_registers:
            init = system.global_inits.get(symbol.name, 0)
            g[self.global_slots[symbol]] = (
                wrap(init, symbol.type) if isinstance(init, int) else 0
            )
        global_mems: Dict[Symbol, List[int]] = {}
        for symbol in system.global_arrays:
            assert isinstance(symbol.type, ArrayType)
            words = [0] * symbol.type.size
            init = system.global_inits.get(symbol.name)
            if isinstance(init, list):
                for i, v in enumerate(init):
                    words[i] = v
            global_mems[symbol] = words
        for symbol, image in system.memory_images.items():
            if symbol.kind is SymbolKind.GLOBAL:
                global_mems[symbol] = list(image)
        gw: Dict[int, str] = {}
        process_args = process_args or {}
        runtimes: List[_MachineRuntime] = []
        for index, plan in enumerate(self.machines):
            machine_args = (
                args if index == 0 else process_args.get(plan.name, ())
            )
            if len(machine_args) != len(plan.param_slots):
                raise SimulationError(
                    f"{plan.name} expects {len(plan.param_slots)} arguments,"
                    f" got {len(machine_args)}"
                )
            r = [0] * plan.n_regs
            for (slot, symbol), value in zip(plan.param_slots, machine_args):
                r[slot] = wrap(value, symbol.type)
            mems: List[List[int]] = []
            for kind, symbol in plan.mem_spec:
                if kind == "global":
                    mems.append(global_mems[symbol])
                else:
                    assert isinstance(symbol.type, ArrayType)
                    size = symbol.type.size
                    image = system.memory_images.get(symbol)
                    mems.append(
                        list(image) + [0] * (size - len(image))
                        if image is not None else [0] * size
                    )
            w = [0] * plan.n_wires
            ctx = _Ctx(plan.entry)
            assert plan.factory is not None
            runtimes.append(_MachineRuntime(
                plan, plan.factory(r, w, g, mems, ctx, gw), ctx
            ))
        return g, global_mems, gw, runtimes

    # -- cycle loops --------------------------------------------------------

    def run(
        self,
        args: Sequence[int] = (),
        process_args: Optional[Dict[str, Sequence[int]]] = None,
        max_cycles: int = 2_000_000,
        profile: Optional[SimProfile] = None,
    ) -> SimResult:
        g, global_mems, gw, runtimes = self._instantiate(args, process_args)
        started = perf_counter()
        channel_log: Dict[str, List[int]] = {
            c.name: [] for c in self.system.channels
        }
        if self.fast:
            cycle, stall_cycles = self._run_fast(
                runtimes[0], max_cycles, profile
            ), 0
        else:
            cycle, stall_cycles = self._run_general(
                runtimes, gw, channel_log, max_cycles, profile
            )
        if profile is not None:
            profile.backend = "compiled"
            profile.compile_s = self.compile_s
            profile.execute_s = perf_counter() - started
            profile.cycles = cycle
        root = runtimes[0].ctx
        result = SimResult(
            value=root.result,
            cycles=root.finish if root.finish is not None else cycle,
            stall_cycles=stall_cycles,
        )
        for symbol in self.system.global_registers:
            result.globals[symbol.name] = g[self.global_slots[symbol]]
        for symbol in self.system.global_arrays:
            result.globals[symbol.name] = list(global_mems[symbol])
        result.channel_log = {
            name: list(values) for name, values in channel_log.items()
        }
        for runtime in runtimes:
            result.per_process_cycles[runtime.name] = (
                runtime.ctx.finish if runtime.ctx.finish is not None
                else cycle
            )
        return result

    def _run_fast(
        self,
        runtime: _MachineRuntime,
        max_cycles: int,
        profile: Optional[SimProfile],
    ) -> int:
        fns = runtime.phase1
        state = runtime.ctx.state
        cycle = 0
        budget_error = f"cycle budget of {max_cycles} exhausted"
        if profile is None:
            while True:
                if cycle >= max_cycles:
                    raise SimulationError(budget_error)
                state = fns[state]()
                cycle += 1
                if state < 0:
                    break
        else:
            labels, name = runtime.labels, runtime.name
            while True:
                if cycle >= max_cycles:
                    raise SimulationError(budget_error)
                profile.visit(name, labels[state])
                state = fns[state]()
                cycle += 1
                if state < 0:
                    break
        runtime.ctx.done = True
        runtime.ctx.finish = cycle
        return cycle

    def _run_general(
        self,
        runtimes: List[_MachineRuntime],
        gw: Dict[int, str],
        channel_log: Dict[str, List[int]],
        max_cycles: int,
        profile: Optional[SimProfile],
    ) -> Tuple[int, int]:
        root = runtimes[0].ctx
        cycle = 0
        stall_cycles = 0
        senders: Dict[Symbol, List[_MachineRuntime]] = {}
        receivers: Dict[Symbol, List[_MachineRuntime]] = {}
        while not root.done:
            if cycle >= max_cycles:
                raise SimulationError(
                    f"cycle budget of {max_cycles} exhausted"
                )
            gw.clear()
            senders.clear()
            receivers.clear()
            evaluations: List[Tuple[_MachineRuntime, int, Optional[Tuple]]] = []
            for runtime in runtimes:
                ctx = runtime.ctx
                if ctx.done:
                    continue
                sid = ctx.state
                if profile is not None:
                    profile.visit(runtime.name, runtime.labels[sid])
                offer = runtime.chan[sid]
                runtime.phase1[sid]()
                evaluations.append((runtime, sid, offer))
                if offer is not None:
                    side = senders if offer[0] == "send" else receivers
                    side.setdefault(offer[1], []).append(runtime)
            # Rendezvous matching: one transfer per channel per cycle,
            # first sender with first receiver in machine order.
            matched: Set[int] = set()
            for channel, send_list in senders.items():
                recv_list = receivers.get(channel)
                if send_list and recv_list:
                    sender, receiver = send_list[0], recv_list[0]
                    value = sender.sends[sender.ctx.state]()
                    receiver.recvs[receiver.ctx.state](value)
                    channel_log[channel.name].append(value)
                    matched.add(id(sender))
                    matched.add(id(receiver))
            advanced = False
            any_stalled = False
            for runtime, sid, offer in evaluations:
                if offer is not None and id(runtime) not in matched:
                    any_stalled = True
                    continue       # stall: re-offer next cycle
                next_state = runtime.phase3[sid]()
                if next_state < 0:
                    runtime.ctx.done = True
                    runtime.ctx.finish = cycle + 1
                else:
                    runtime.ctx.state = next_state
                advanced = True
            if not advanced:
                if any_stalled:
                    blocked = [
                        runtime.name
                        for runtime, _, offer in evaluations
                        if offer is not None
                    ]
                    raise SimulationError(
                        "rendezvous deadlock: " + ", ".join(sorted(blocked))
                    )
                raise SimulationError("no machine could advance")
            if any_stalled:
                stall_cycles += 1
            cycle += 1
        return cycle, stall_cycles


def compile_system(system: FSMDSystem) -> SystemPlan:
    """Compile ``system`` (cached: repeated calls return the same plan)."""
    plan = getattr(system, "_compiled_plan", None)
    if isinstance(plan, SystemPlan) and plan.system is system:
        return plan
    started = perf_counter()
    plan = SystemPlan(system)
    plan.compile_s = perf_counter() - started
    system._compiled_plan = plan        # cache on the (plain) dataclass
    return plan


def simulate_compiled(
    system: FSMDSystem,
    args: Sequence[int] = (),
    max_cycles: int = 2_000_000,
    process_args: Optional[Dict[str, Sequence[int]]] = None,
    profile: Optional[SimProfile] = None,
) -> SimResult:
    """Drop-in replacement for :func:`fsmd_sim.simulate`."""
    return compile_system(system).run(
        args=args, process_args=process_args, max_cycles=max_cycles,
        profile=profile,
    )
