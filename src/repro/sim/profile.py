"""Lightweight simulation profiler.

Both FSMD backends can fill a :class:`SimProfile` while they run: how long
the one-time specialisation took (compiled backend only), how long the
cycle loop took, and how many cycles each machine spent in each state.
The histogram is the tool for answering "where do my cycles go?" — a hot
inner-loop state dominating the visit counts is the state to pipeline or
to move to a faster flow.

Visits are counted identically by both backends (every running machine's
current state is counted once per cycle, stalls included), so a profile is
also a cheap cross-check: interp and compiled runs of the same design must
produce the same histogram.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class SimProfile:
    """Filled in by ``simulate(..., profile=SimProfile())``."""

    backend: str = ""
    compile_s: float = 0.0       # one-time plan specialisation (compiled only)
    execute_s: float = 0.0       # wall time of the cycle loop
    cycles: int = 0              # root machine's finish cycle (scalar runs);
    #                              sum over lane_cycles for batched runs
    # machine name -> state label -> cycles spent in that state.
    state_visits: Dict[str, Dict[str, int]] = field(default_factory=dict)
    # Batched runs: how many lanes ran, and each lane's finish cycle
    # (0 for a lane that errored — scalar raising runs report no cycles).
    lanes: int = 1
    lane_cycles: List[int] = field(default_factory=list)

    def visit(self, machine: str, label: str, count: int = 1) -> None:
        per_state = self.state_visits.setdefault(machine, {})
        per_state[label] = per_state.get(label, 0) + count

    @property
    def cycles_per_sec(self) -> float:
        return self.cycles / self.execute_s if self.execute_s > 0 else 0.0

    def hottest(self, top: int = 8) -> List[Tuple[str, str, int]]:
        """The ``top`` most-visited (machine, state label, visits) triples."""
        rows = [
            (machine, label, visits)
            for machine, per_state in self.state_visits.items()
            for label, visits in per_state.items()
        ]
        rows.sort(key=lambda row: (-row[2], row[0], row[1]))
        return rows[:top]

    def coverage_stats(self, top: int = 8) -> Dict[str, object]:
        """The deterministic summary the fuzz coverage signal buckets:
        machine count, total state count, and the top visit counts in
        rank order.  Ranks rather than state names, so two unrelated
        programs with the same hot-loop shape land in the same buckets —
        which is exactly what makes the buckets comparable."""
        return {
            "machines": len(self.state_visits),
            "states": sum(len(per) for per in self.state_visits.values()),
            "visits": [visits for _, _, visits in self.hottest(top)],
        }

    def render(self, top: int = 8) -> str:
        """Human-readable block: totals first, then the hot states."""
        lines = [
            f"backend:      {self.backend}",
            f"compile:      {self.compile_s * 1e3:.2f} ms",
            f"execute:      {self.execute_s * 1e3:.2f} ms",
            f"cycles:       {self.cycles}",
            f"cycles/sec:   {self.cycles_per_sec:,.0f}",
        ]
        if self.lanes > 1:
            finished = [c for c in self.lane_cycles if c]
            mean = sum(finished) / len(finished) if finished else 0.0
            lines.insert(4, f"lanes:        {self.lanes}"
                            f" (mean {mean:,.1f} cycles/lane)")
        hot = self.hottest(top)
        if hot:
            lines.append("hot states:")
            width = max(len(f"{m}/{s}") for m, s, _ in hot)
            total = sum(
                v for per in self.state_visits.values() for v in per.values()
            )
            for machine, label, visits in hot:
                share = 100.0 * visits / total if total else 0.0
                lines.append(
                    f"  {f'{machine}/{label}':<{width}}  "
                    f"{visits:>10}  {share:5.1f}%"
                )
        return "\n".join(lines)
