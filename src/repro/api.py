"""``repro.api`` — the stable synthesis facade.

One frozen option set, one entry point::

    from repro.api import SynthesisOptions, synthesize

    result = synthesize(source, SynthesisOptions(flow="handelc", trace=True))
    print(result.run(args=(10,)).value)
    result.trace.write_chrome("gcd.trace.json")     # open in Perfetto

Before this module existed, the same knobs (flow key, entry function, FSMD
sim backend, per-flow compile kwargs) were re-declared ad hoc in
``compile_flow``, the matrix runner's :class:`CellTask`, the fuzz
campaign's config, and the CLI — four places that could silently drift.
Now :class:`SynthesisOptions` is the single definition; the runner derives
its cache identity from it (``CellTask.identity()``), the engine's worker
compiles through :func:`synthesize`, and the legacy keyword signatures
survive as thin shims that emit one :class:`DeprecationWarning` per
process (see :func:`warn_legacy`).

``trace`` deliberately does **not** participate in identity: a traced and
an untraced run of the same options must produce the same artifact (and
share cache entries) — tracing observes the pipeline, it never steers it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

from .rtl.tech import Technology
from .trace import TraceContext, ensure_trace

#: The opt_level every entry point assumes when none is given: the
#: classic fold/CSE/DCE/simplify loop.  Level 2 (the liveness-driven
#: fixpoint pipeline) is opt-in; see docs/optimizer.md.
DEFAULT_OPT_LEVEL = 1

#: kwargs of the legacy signatures that map onto SynthesisOptions fields
#: rather than flow-specific compile options.
_FIELD_KWARGS = (
    "flow", "function", "sim_backend", "opt_level", "trace", "tech", "check",
)

# Single-warning policy: each legacy entry point warns at most once per
# process, so a sweep over ten thousand cells nags exactly once.
_LEGACY_WARNED: set = set()


def warn_legacy(name: str, hint: str) -> None:
    """Emit one DeprecationWarning per process for legacy entry ``name``."""
    if name in _LEGACY_WARNED:
        return
    _LEGACY_WARNED.add(name)
    import warnings

    warnings.warn(
        f"{name} with ad-hoc keywords is deprecated; {hint}",
        DeprecationWarning,
        stacklevel=3,
    )


def _reset_legacy_warnings() -> None:
    """Test hook: forget which legacy entry points already warned."""
    _LEGACY_WARNED.clear()


@dataclass(frozen=True)
class SynthesisOptions:
    """Everything that selects *what* a synthesis produces.

    Fields
    ------
    flow:
        Registry key of the flow (Table 1 row) to compile with.
    function:
        Entry function; ``process`` functions always come along.
    sim_backend:
        FSMD simulation engine, ``"interp"``, ``"compiled"``, or
        ``"batched"`` (the lockstep batch engine; as a scalar backend it
        runs a one-lane batch, and it unlocks
        :meth:`SynthesisResult.run_batch` plus runner/fuzz batching).
    opt_level:
        IR optimization effort: 0 = none, 1 = the classic
        fold/CSE/DCE/simplify loop (the default), 2 = the
        liveness-driven fixpoint pipeline (adds copy propagation, chain
        load/store elimination, and dead-variable elimination; see
        docs/optimizer.md), 3 = level 2 plus bit-width narrowing where
        the flow supports it.
    trace:
        Create a :class:`~repro.trace.TraceContext` for this synthesis.
        Excluded from :meth:`identity`: tracing observes, never steers.
    tech:
        Technology model override (None = the flow's default).
    check:
        Run the time-sensitive checker (``repro.analysis.timing``)
        before compiling; a program whose obligations the flow's
        schedule cannot meet raises
        :class:`~repro.analysis.timing.CheckRejected` (a
        :class:`~repro.flows.base.FlowError`, so matrix cells classify
        it as a rejection with the TIM rule id attached).
    flow_options:
        Extra per-flow compile kwargs as a sorted tuple of pairs, so the
        options object stays frozen and its identity order-independent.
    """

    flow: str = "c2verilog"
    function: str = "main"
    sim_backend: str = "interp"
    opt_level: int = DEFAULT_OPT_LEVEL
    trace: bool = False
    tech: Optional[Technology] = None
    check: bool = False
    flow_options: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def make(cls, base: Optional["SynthesisOptions"] = None,
             **kwargs) -> "SynthesisOptions":
        """Build options from a base plus keyword overrides; unknown
        keywords become ``flow_options`` entries (per-flow compile
        kwargs), exactly like the legacy signatures accepted them."""
        base = base if base is not None else cls()
        fields_update = {
            k: kwargs.pop(k) for k in list(kwargs) if k in _FIELD_KWARGS
        }
        if kwargs:
            extra = dict(base.flow_options)
            extra.update(kwargs)
            fields_update["flow_options"] = tuple(sorted(extra.items()))
        return replace(base, **fields_update) if fields_update else base

    def with_(self, **kwargs) -> "SynthesisOptions":
        """A copy with field/flow-option overrides (frozen-friendly)."""
        return SynthesisOptions.make(self, **kwargs)

    def flow_kwargs(self) -> Dict[str, object]:
        """The keyword arguments handed to ``Flow.compile``."""
        kwargs: Dict[str, object] = dict(self.flow_options)
        kwargs["opt_level"] = self.opt_level
        if self.tech is not None:
            kwargs["tech"] = self.tech
        return kwargs

    def identity(self) -> Dict[str, object]:
        """The canonical, JSON-stable content of the options — everything
        that can change a synthesis result.  ``trace`` is excluded (it
        observes the pipeline); the cache key and ``CellTask.identity()``
        both derive from this dict, so they cannot drift from the real
        option set."""
        return {
            "flow": self.flow,
            "function": self.function,
            "sim_backend": self.sim_backend,
            "opt_level": self.opt_level,
            "tech": self.tech.name if self.tech is not None else "",
            "check": self.check,
            "options": [[k, repr(v)] for k, v in self.flow_options],
        }


@dataclass
class SynthesisResult:
    """A compiled design plus the options and trace that produced it.

    The post-compile stages (simulation, binding-based cost, Verilog
    emission) happen lazily through the methods here so their spans land
    in the same trace as the compile phases."""

    design: object                      # CompiledDesign
    options: SynthesisOptions
    trace: Optional[TraceContext] = None
    source: str = ""

    def run(
        self,
        args: Sequence[int] = (),
        process_args=None,
        max_cycles: int = 2_000_000,
        sim_profile=None,
    ):
        """Simulate with the options' backend; the ``sim`` span (with the
        backend's compile/execute split) joins the trace."""
        return self.design.run(
            args=args,
            process_args=process_args,
            max_cycles=max_cycles,
            sim_backend=self.options.sim_backend,
            sim_profile=sim_profile,
            trace=self.trace,
        )

    def run_batch(
        self,
        arg_sets: Sequence[Sequence[int]],
        process_args=None,
        max_cycles: int = 2_000_000,
        sim_profile=None,
    ):
        """Simulate every argument set in one batch (specialize once,
        execute many).  Returns a list of
        :class:`~repro.flows.base.LaneOutcome`, one per argument set;
        lanes that error capture the scalar backend's exact error
        instead of poisoning the batch.  With
        ``sim_backend="batched"`` FSMD designs run the lockstep batch
        engine; other backends fall back to sequential lanes."""
        return self.design.run_batch(
            arg_sets,
            process_args=process_args,
            max_cycles=max_cycles,
            sim_backend=self.options.sim_backend,
            sim_profile=sim_profile,
            trace=self.trace,
        )

    def cost(self, tech: Optional[Technology] = None):
        """Area/clock estimate; binding spans join the trace."""
        chosen = tech if tech is not None else self.options.tech
        if chosen is not None:
            return self.design.cost(chosen, trace=self.trace)
        return self.design.cost(trace=self.trace)

    def verilog(self) -> str:
        """RTL text; the ``emit`` span joins the trace."""
        return self.design.verilog(trace=self.trace)


def synthesize(
    source: str,
    options: Optional[SynthesisOptions] = None,
    trace: Optional[TraceContext] = None,
    **overrides,
) -> SynthesisResult:
    """Parse, check, and compile ``source`` under one option set.

    ``options`` may be omitted in favour of keyword overrides
    (``synthesize(src, flow="cash")``); unknown keywords are per-flow
    compile options.  Pass ``trace`` to record into an existing context;
    otherwise ``options.trace`` decides whether a fresh one is created
    (reachable afterwards as ``result.trace``).
    """
    from .flows.registry import get_flow
    from .lang import analyze, parse_program

    options = SynthesisOptions.make(options, **overrides)
    if trace is None and options.trace:
        trace = TraceContext(name=f"{options.flow}:{options.function}")
    t = ensure_trace(trace)
    flow = get_flow(options.flow)
    if options.check:
        from .analysis.timing import enforce

        with t.span("check", cat="phase"):
            enforce(source, options.flow, function=options.function)
    with t.span("parse", cat="phase"):
        program = parse_program(source)
        if t.enabled:
            t.count(functions=len(program.functions),
                    processes=len(program.processes))
    with t.span("semantic", cat="phase"):
        info = analyze(program)
    design = flow.compile(
        program, info, options.function, trace=trace, **options.flow_kwargs()
    )
    return SynthesisResult(
        design=design, options=options, trace=trace, source=source
    )


__all__ = [
    "SynthesisOptions",
    "SynthesisResult",
    "synthesize",
    "warn_legacy",
]
