"""Recoded workload variants — the designer effort implicit timing rules
force (experiment E4).

The paper: *"While simple to understand, such rules can require recoding to
meet timing.  Handel-C may require assignment statements to be fused and
loops may need to be unrolled in Transmogrifier C."*

Two mechanisms reproduce that:

* hand-written **fused/stepped pairs**: the same computation written as
  many small assignments (idiomatic C, slow under Handel-C's
  one-cycle-per-assignment rule) and as fused single assignments (fast in
  cycles, but with long combinational chains that drag the clock down);
* **programmatic unrolling**: :func:`unrolled_program` applies the unroll
  pass to any workload so the Transmogrifier experiment can sweep factors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..lang import ast_nodes as ast
from ..lang import parse
from ..lang.semantic import SemanticInfo
from ..ir.passes import unroll_loops


@dataclass(frozen=True)
class RecodingPair:
    """The same kernel in 'stepped' and 'fused' source styles."""

    name: str
    stepped: str
    fused: str
    args: Tuple[int, ...] = ()


RECODING_PAIRS: List[RecodingPair] = [
    RecodingPair(
        name="poly16",
        stepped="""
int main(int x) {
    int acc = 0;
    for (int i = 0; i < 16; i++) {
        int t1 = x + i;
        int t2 = t1 * 3;
        int t3 = t2 ^ i;
        int t4 = t3 & 0xFFFF;
        acc = acc + t4;
    }
    return acc;
}
""",
        fused="""
int main(int x) {
    int acc = 0;
    for (int i = 0; i < 16; i++) {
        acc = acc + ((((x + i) * 3) ^ i) & 0xFFFF);
    }
    return acc;
}
""",
        args=(5,),
    ),
    RecodingPair(
        name="mix8",
        stepped="""
int main(int seed) {
    int h = seed;
    for (int round = 0; round < 8; round++) {
        int a = h << 3;
        int b = h >> 2;
        int c = a ^ b;
        int d = c + round;
        h = d;
    }
    return h;
}
""",
        fused="""
int main(int seed) {
    int h = seed;
    for (int round = 0; round < 8; round++) {
        h = ((h << 3) ^ (h >> 2)) + round;
    }
    return h;
}
""",
        args=(12345,),
    ),
    RecodingPair(
        name="nib12",
        stepped="""
int main(int seed) {
    int acc = 0;
    for (int i = 0; i < 12; i++) {
        int v = seed >> i;
        int lo = v & 15;
        int hi = (v >> 4) & 15;
        acc = acc + lo * hi;
    }
    return acc;
}
""",
        fused="""
int main(int seed) {
    int acc = 0;
    for (int i = 0; i < 12; i++) {
        acc = acc + ((seed >> i) & 15) * (((seed >> i) >> 4) & 15);
    }
    return acc;
}
""",
        args=(0x2F51C3,),
    ),
]


def unrolled_program(
    source: str, factor: int, function: str = "main"
) -> Tuple[ast.Program, SemanticInfo, int]:
    """Parse ``source`` and unroll counted loops in ``function`` by
    ``factor``.  Returns the transformed program (annotated, ready for any
    flow's ``compile``), its semantic info, and how many loops unrolled."""
    program, info = parse(source)
    transformed = []
    unrolled = 0
    for fn in program.functions:
        if fn.name == function:
            fn, count = unroll_loops(fn, factor)
            unrolled = count
        transformed.append(fn)
    new_program = ast.Program(
        functions=transformed,
        globals=program.globals,
        channels=program.channels,
    )
    return new_program, info, unrolled
