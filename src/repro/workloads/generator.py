"""Deterministic synthetic workload generator.

Produces valid programs from an integer seed — the fuel for property-based
tests (every flow must agree with the interpreter on *any* generated
program) and for scaling studies (ILP vs. block size).  All generated
arithmetic avoids division so no run can trap; shifts are masked to
well-defined amounts.
"""

from __future__ import annotations

import random
from typing import List, Optional

_SAFE_BINARY = ["+", "-", "*", "&", "|", "^"]
_COMPARE = ["<", "<=", ">", ">=", "==", "!="]


class _Generator:
    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.counter = 0

    def fresh(self, prefix: str = "v") -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def expression(self, variables: List[str], depth: int) -> str:
        if depth <= 0 or not variables or self.rng.random() < 0.3:
            if variables and self.rng.random() < 0.7:
                return self.rng.choice(variables)
            return str(self.rng.randint(0, 255))
        kind = self.rng.random()
        if kind < 0.75:
            op = self.rng.choice(_SAFE_BINARY)
            left = self.expression(variables, depth - 1)
            right = self.expression(variables, depth - 1)
            return f"({left} {op} {right})"
        if kind < 0.85:
            amount = self.rng.randint(0, 7)
            left = self.expression(variables, depth - 1)
            direction = self.rng.choice(["<<", ">>"])
            return f"({left} {direction} {amount})"
        cond_op = self.rng.choice(_COMPARE)
        a = self.expression(variables, depth - 1)
        b = self.expression(variables, depth - 1)
        t = self.expression(variables, depth - 1)
        f = self.expression(variables, depth - 1)
        return f"(({a} {cond_op} {b}) ? {t} : {f})"


def dataflow_source(seed: int, statements: int = 12, depth: int = 3) -> str:
    """A straight-line arithmetic kernel: declarations and reassignments
    over scalars, returning a checksum.  Pure dataflow — the shape ILP
    extraction likes."""
    g = _Generator(seed)
    variables: List[str] = []
    lines = ["int main(int x, int y) {"]
    variables += ["x", "y"]
    for _ in range(statements):
        if variables and g.rng.random() < 0.4:
            target = g.rng.choice([v for v in variables if v not in ("x", "y")] or ["x"])
            if target in ("x", "y"):
                target = g.fresh()
                lines.append(
                    f"    int {target} = {g.expression(variables, depth)};"
                )
                variables.append(target)
                continue
            lines.append(f"    {target} = {g.expression(variables, depth)};")
        else:
            name = g.fresh()
            lines.append(f"    int {name} = {g.expression(variables, depth)};")
            variables.append(name)
    checksum = " ^ ".join(variables)
    lines.append(f"    return {checksum};")
    lines.append("}")
    return "\n".join(lines)


def control_source(seed: int, blocks: int = 4, depth: int = 2) -> str:
    """A control-heavy kernel: bounded counted loops and nested
    conditionals over an accumulator.  Always terminates (loop bounds are
    literal constants)."""
    g = _Generator(seed)
    lines = ["int main(int x, int y) {", "    int acc = x ^ y;"]
    variables = ["x", "y", "acc"]

    def emit_block(indent: int, budget: int) -> None:
        pad = "    " * indent
        for _ in range(budget):
            choice = g.rng.random()
            if choice < 0.35 and indent < 4:
                bound = g.rng.randint(2, 8)
                loop_var = g.fresh("i")
                lines.append(
                    f"{pad}for (int {loop_var} = 0; {loop_var} < {bound};"
                    f" {loop_var}++) {{"
                )
                inner_vars = variables + [loop_var]
                lines.append(
                    f"{pad}    acc = acc + {g.expression(inner_vars, depth)};"
                )
                if g.rng.random() < 0.5 and indent < 3:
                    cond = (
                        f"({g.expression(inner_vars, 1)}"
                        f" {g.rng.choice(_COMPARE)}"
                        f" {g.expression(inner_vars, 1)})"
                    )
                    lines.append(f"{pad}    if {cond} {{")
                    lines.append(
                        f"{pad}        acc = acc ^ {g.expression(inner_vars, depth)};"
                    )
                    lines.append(f"{pad}    }}")
                lines.append(f"{pad}}}")
            elif choice < 0.7:
                cond = (
                    f"({g.expression(variables, 1)}"
                    f" {g.rng.choice(_COMPARE)}"
                    f" {g.expression(variables, 1)})"
                )
                lines.append(f"{pad}if {cond} {{")
                lines.append(
                    f"{pad}    acc = acc - {g.expression(variables, depth)};"
                )
                lines.append(f"{pad}}} else {{")
                lines.append(
                    f"{pad}    acc = acc + {g.expression(variables, depth)};"
                )
                lines.append(f"{pad}}}")
            else:
                name = g.fresh()
                lines.append(
                    f"{pad}int {name} = {g.expression(variables, depth)};"
                )
                variables.append(name)

    emit_block(1, blocks)
    lines.append("    return acc;")
    lines.append("}")
    return "\n".join(lines)


def array_source(seed: int, size: int = 12, passes: int = 2) -> str:
    """An array-walking kernel with data-dependent stores (memory shape)."""
    g = _Generator(seed)
    init = ", ".join(str(g.rng.randint(0, 63)) for _ in range(size))
    lines = [
        f"int buf[{size}] = {{{init}}};",
        "int main(int x) {",
        "    int acc = x;",
    ]
    for p in range(passes):
        index_expr = g.rng.choice(["i", f"(i + {g.rng.randint(1, size - 1)}) % " + str(size)])
        lines.append(f"    for (int i = 0; i < {size}; i++) {{")
        lines.append(f"        int v = buf[{index_expr}];")
        lines.append(f"        buf[i] = v + {g.expression(['v', 'acc', 'i'], 2)};")
        lines.append("        acc = acc ^ buf[i];")
        lines.append("    }")
    lines.append("    return acc;")
    lines.append("}")
    return "\n".join(lines)
