"""Deterministic synthetic workload generator.

Produces valid programs from an integer seed — the fuel for property-based
tests (every flow must agree with the interpreter on *any* generated
program) and for scaling studies (ILP vs. block size).  All generated
arithmetic avoids division so no run can trap; shifts are masked to
well-defined amounts.

Every expression is generated against a **target width**: the declared
bit-width of the variable the expression is assigned to.  Constants are
drawn from the representable range of that width and shift amounts stay
below it, so a ``uint5`` accumulator is never shifted by 7 or multiplied
by a constant its type cannot hold.  ``width_mix=True`` makes the
declaration sites draw from a palette of narrow/wide signed/unsigned
types — the bit-width–mix territory where HLS flows historically
disagree (the fuzzing frontend in :mod:`repro.fuzz` relies on this).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

_SAFE_BINARY = ["+", "-", "*", "&", "|", "^"]
_COMPARE = ["<", "<=", ">", ">=", "==", "!="]

# (width, signed) palette for width_mix declarations.  ``int`` stays the
# most common so mixed programs still look like the paper's C.
_WIDTH_PALETTE: List[Tuple[int, bool]] = [
    (32, True), (32, True), (32, True),
    (32, False),
    (16, True), (16, False),
    (8, True), (8, False),
    (12, True), (5, False), (24, False),
]


def _type_name(width: int, signed: bool) -> str:
    if width == 32 and signed:
        return "int"
    return f"{'int' if signed else 'uint'}{width}"


class _Generator:
    def __init__(self, seed: int, width_mix: bool = False):
        self.rng = random.Random(seed)
        self.counter = 0
        self.width_mix = width_mix
        # Declared (width, signed) per variable; anything not recorded is
        # a plain 32-bit int (function parameters, loop counters).
        self.widths = {}

    def fresh(self, prefix: str = "v") -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def declare(self, name: str, width: int = 32, signed: bool = True) -> str:
        """Record a declaration and return its type spelling."""
        self.widths[name] = (width, signed)
        return _type_name(width, signed)

    def pick_width(self) -> Tuple[int, bool]:
        if self.width_mix:
            return self.rng.choice(_WIDTH_PALETTE)
        return (32, True)

    def constant(self, width: int = 32, signed: bool = True) -> int:
        """A literal that fits the target width: at most 8 bits of
        magnitude, and never outside the type's representable range."""
        bound = (1 << (width - 1)) - 1 if signed else (1 << width) - 1
        return self.rng.randint(0, max(0, min(255, bound)))

    def expression(
        self,
        variables: List[str],
        depth: int,
        width: int = 32,
        signed: bool = True,
    ) -> str:
        """An expression tree for a target of the given width: constants
        and shift amounts respect ``width`` rather than assuming 32 bits."""
        if depth <= 0 or not variables or self.rng.random() < 0.3:
            if variables and self.rng.random() < 0.7:
                return self.rng.choice(variables)
            return str(self.constant(width, signed))
        kind = self.rng.random()
        if kind < 0.75:
            op = self.rng.choice(_SAFE_BINARY)
            left = self.expression(variables, depth - 1, width, signed)
            right = self.expression(variables, depth - 1, width, signed)
            return f"({left} {op} {right})"
        if kind < 0.85:
            amount = self.rng.randint(0, max(0, width - 1))
            left = self.expression(variables, depth - 1, width, signed)
            direction = self.rng.choice(["<<", ">>"])
            return f"({left} {direction} {amount})"
        cond_op = self.rng.choice(_COMPARE)
        a = self.expression(variables, depth - 1, width, signed)
        b = self.expression(variables, depth - 1, width, signed)
        t = self.expression(variables, depth - 1, width, signed)
        f = self.expression(variables, depth - 1, width, signed)
        return f"(({a} {cond_op} {b}) ? {t} : {f})"

    def target_expression(self, name: str, variables: List[str], depth: int) -> str:
        """An expression sized for assignment to declared variable ``name``."""
        width, signed = self.widths.get(name, (32, True))
        return self.expression(variables, depth, width, signed)


def dataflow_source(
    seed: int, statements: int = 12, depth: int = 3, width_mix: bool = False
) -> str:
    """A straight-line arithmetic kernel: declarations and reassignments
    over scalars, returning a checksum.  Pure dataflow — the shape ILP
    extraction likes.  ``width_mix`` draws declaration types from the
    narrow/wide palette instead of plain ``int``."""
    g = _Generator(seed, width_mix=width_mix)
    variables: List[str] = []
    lines = ["int main(int x, int y) {"]
    variables += ["x", "y"]
    g.declare("x"), g.declare("y")
    for _ in range(statements):
        if variables and g.rng.random() < 0.4:
            target = g.rng.choice([v for v in variables if v not in ("x", "y")] or ["x"])
            if target in ("x", "y"):
                target = g.fresh()
                width, signed = g.pick_width()
                type_name = g.declare(target, width, signed)
                lines.append(
                    f"    {type_name} {target} = "
                    f"{g.target_expression(target, variables, depth)};"
                )
                variables.append(target)
                continue
            lines.append(
                f"    {target} = {g.target_expression(target, variables, depth)};"
            )
        else:
            name = g.fresh()
            width, signed = g.pick_width()
            type_name = g.declare(name, width, signed)
            lines.append(
                f"    {type_name} {name} = "
                f"{g.target_expression(name, variables, depth)};"
            )
            variables.append(name)
    checksum = " ^ ".join(variables)
    lines.append(f"    return {checksum};")
    lines.append("}")
    return "\n".join(lines)


def control_source(
    seed: int, blocks: int = 4, depth: int = 2, width_mix: bool = False
) -> str:
    """A control-heavy kernel: bounded counted loops and nested
    conditionals over an accumulator.  Always terminates (loop bounds are
    literal constants)."""
    g = _Generator(seed, width_mix=width_mix)
    lines = ["int main(int x, int y) {", "    int acc = x ^ y;"]
    variables = ["x", "y", "acc"]
    for name in variables:
        g.declare(name)

    def emit_block(indent: int, budget: int) -> None:
        pad = "    " * indent
        for _ in range(budget):
            choice = g.rng.random()
            if choice < 0.35 and indent < 4:
                bound = g.rng.randint(2, 8)
                loop_var = g.fresh("i")
                g.declare(loop_var)
                lines.append(
                    f"{pad}for (int {loop_var} = 0; {loop_var} < {bound};"
                    f" {loop_var}++) {{"
                )
                inner_vars = variables + [loop_var]
                lines.append(
                    f"{pad}    acc = acc + {g.expression(inner_vars, depth)};"
                )
                if g.rng.random() < 0.5 and indent < 3:
                    cond = (
                        f"({g.expression(inner_vars, 1)}"
                        f" {g.rng.choice(_COMPARE)}"
                        f" {g.expression(inner_vars, 1)})"
                    )
                    lines.append(f"{pad}    if {cond} {{")
                    lines.append(
                        f"{pad}        acc = acc ^ {g.expression(inner_vars, depth)};"
                    )
                    lines.append(f"{pad}    }}")
                lines.append(f"{pad}}}")
            elif choice < 0.7:
                cond = (
                    f"({g.expression(variables, 1)}"
                    f" {g.rng.choice(_COMPARE)}"
                    f" {g.expression(variables, 1)})"
                )
                lines.append(f"{pad}if {cond} {{")
                lines.append(
                    f"{pad}    acc = acc - {g.expression(variables, depth)};"
                )
                lines.append(f"{pad}}} else {{")
                lines.append(
                    f"{pad}    acc = acc + {g.expression(variables, depth)};"
                )
                lines.append(f"{pad}}}")
            else:
                name = g.fresh()
                width, signed = g.pick_width()
                type_name = g.declare(name, width, signed)
                lines.append(
                    f"{pad}{type_name} {name} = "
                    f"{g.target_expression(name, variables, depth)};"
                )
                variables.append(name)

    emit_block(1, blocks)
    lines.append("    return acc;")
    lines.append("}")
    return "\n".join(lines)


def array_source(seed: int, size: int = 12, passes: int = 2) -> str:
    """An array-walking kernel with data-dependent stores (memory shape)."""
    g = _Generator(seed)
    init = ", ".join(str(g.rng.randint(0, 63)) for _ in range(size))
    lines = [
        f"int buf[{size}] = {{{init}}};",
        "int main(int x) {",
        "    int acc = x;",
    ]
    for p in range(passes):
        index_expr = g.rng.choice(["i", f"(i + {g.rng.randint(1, size - 1)}) % " + str(size)])
        lines.append(f"    for (int i = 0; i < {size}; i++) {{")
        lines.append(f"        int v = buf[{index_expr}];")
        lines.append(f"        buf[i] = v + {g.expression(['v', 'acc', 'i'], 2)};")
        lines.append("        acc = acc ^ buf[i];")
        lines.append("    }")
    lines.append("    return acc;")
    lines.append("}")
    return "\n".join(lines)
