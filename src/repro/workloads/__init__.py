"""Workloads: the benchmark kernel suite, recoding variants, and the
synthetic program generator."""

from .generator import array_source, control_source, dataflow_source
from .suite import (
    BY_NAME,
    CHANNEL,
    CONTROL,
    MEMORY,
    POINTER,
    REGULAR,
    WORKLOADS,
    Workload,
    by_category,
    get,
)
from .variants import RECODING_PAIRS, RecodingPair, unrolled_program

__all__ = [
    "BY_NAME",
    "CHANNEL",
    "CONTROL",
    "MEMORY",
    "POINTER",
    "REGULAR",
    "RECODING_PAIRS",
    "RecodingPair",
    "WORKLOADS",
    "Workload",
    "array_source",
    "by_category",
    "control_source",
    "dataflow_source",
    "get",
    "unrolled_program",
]
