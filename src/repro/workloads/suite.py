"""The workload suite.

Kernels span the axes the paper's analysis moves along:

* **regular** dataflow loops (FIR, dot product, matmul, DCT) — where
  pipelining and ILP extraction shine;
* **control**-dominated code (GCD, parser FSM, max search) — where they
  don't;
* **memory**-bound kernels (histogram, bubble sort, prefix sum) — where the
  memory model decides the schedule;
* **pointer** kernels — the C2Verilog/CASH territory;
* **channel** programs (producer/consumer, pipelines) — the explicit
  concurrency the CSP-flavoured languages were built for.

Every kernel is plain source text: all flows see exactly the same program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

REGULAR = "regular"
CONTROL = "control"
MEMORY = "memory"
POINTER = "pointer"
CHANNEL = "channel"


@dataclass(frozen=True)
class Workload:
    name: str
    category: str
    description: str
    source: str
    args: Tuple[int, ...] = ()
    # Whether loop bounds are compile-time constants (Cones eligibility).
    static_bounds: bool = True
    # Flows that cannot accept this workload for historical-feature reasons
    # are discovered dynamically; nothing is hard-coded here.


def _w(name, category, description, source, args=(), static_bounds=True) -> Workload:
    return Workload(
        name=name, category=category, description=description,
        source=source, args=tuple(args), static_bounds=static_bounds,
    )


WORKLOADS: List[Workload] = [
    _w(
        "fir8", REGULAR,
        "8-tap FIR filter over 32 samples (constant bounds)",
        """
int coeff[8] = {4, 11, 21, 27, 27, 21, 11, 4};
int samples[32] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3,
                   2, 3, 8, 4, 6, 2, 6, 4, 3, 3, 8, 3, 2, 7, 9, 5};
int output[32];
int main() {
    int checksum = 0;
    for (int n = 0; n < 32; n++) {
        int acc = 0;
        for (int k = 0; k < 8; k++) {
            int idx = n - k;
            int tap = 0;
            if (idx >= 0) {
                tap = samples[idx];
            }
            acc += tap * coeff[k];
        }
        output[n] = acc >> 4;
        checksum += output[n];
    }
    return checksum;
}
""",
    ),
    _w(
        "dot16", REGULAR,
        "16-element dot product",
        """
int va[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
int vb[16] = {16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1};
int main() {
    int acc = 0;
    for (int i = 0; i < 16; i++) {
        acc += va[i] * vb[i];
    }
    return acc;
}
""",
    ),
    _w(
        "matmul4", REGULAR,
        "4x4 integer matrix multiply (flattened arrays)",
        """
int ma[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
int mb[16] = {1, 0, 2, 0, 0, 1, 0, 2, 3, 0, 1, 0, 0, 3, 0, 1};
int mc[16];
int main() {
    for (int i = 0; i < 4; i++) {
        for (int j = 0; j < 4; j++) {
            int acc = 0;
            for (int k = 0; k < 4; k++) {
                acc += ma[i * 4 + k] * mb[k * 4 + j];
            }
            mc[i * 4 + j] = acc;
        }
    }
    int trace = 0;
    for (int d = 0; d < 4; d++) {
        trace += mc[d * 4 + d];
    }
    return trace;
}
""",
    ),
    _w(
        "dct8", REGULAR,
        "8-point 1-D integer DCT (multiply-heavy)",
        """
int block[8] = {52, 55, 61, 66, 70, 61, 64, 73};
int basis[64] = {
    91,  91,  91,  91,  91,  91,  91,  91,
   126, 106,  71,  25, -25, -71,-106,-126,
   118,  49, -49,-118,-118, -49,  49, 118,
   106, -25,-126, -71,  71, 126,  25,-106,
    91, -91, -91,  91,  91, -91, -91,  91,
    71,-126,  25, 106,-106, -25, 126, -71,
    49,-118, 118, -49, -49, 118,-118,  49,
    25, -71, 106,-126, 126,-106,  71, -25
};
int freq[8];
int main() {
    int checksum = 0;
    for (int u = 0; u < 8; u++) {
        int acc = 0;
        for (int x = 0; x < 8; x++) {
            acc += basis[u * 8 + x] * block[x];
        }
        freq[u] = acc >> 8;
        checksum += freq[u];
    }
    return checksum;
}
""",
    ),
    _w(
        "crc8", REGULAR,
        "bitwise CRC-8 over a 16-byte message",
        """
int message[16] = {0x31, 0x32, 0x33, 0x34, 0x35, 0x36, 0x37, 0x38,
                   0x39, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47};
int main() {
    uint8 crc = 0;
    for (int i = 0; i < 16; i++) {
        crc = crc ^ message[i];
        for (int b = 0; b < 8; b++) {
            uint8 top = crc & 0x80;
            crc = crc << 1;
            if (top != 0) {
                crc = crc ^ 0x07;
            }
        }
    }
    return crc;
}
""",
    ),
    _w(
        "gcd", CONTROL,
        "Euclid's algorithm (data-dependent loop)",
        """
int main(int a, int b) {
    while (b != 0) {
        int t = b;
        b = a % b;
        a = t;
    }
    return a;
}
""",
        args=(1071, 462),
        static_bounds=False,
    ),
    _w(
        "collatz", CONTROL,
        "Collatz trajectory length (branchy, data-dependent)",
        """
int main(int n) {
    int steps = 0;
    while (n != 1) {
        if (n % 2 == 0) {
            n = n / 2;
        } else {
            n = 3 * n + 1;
        }
        steps = steps + 1;
    }
    return steps;
}
""",
        args=(27,),
        static_bounds=False,
    ),
    _w(
        "parser", CONTROL,
        "token-counting FSM over a character buffer (parser-like control)",
        """
int text[24] = {32, 104, 105, 32, 32, 119, 111, 114, 108, 100, 32, 102,
                111, 111, 32, 98, 97, 114, 32, 32, 98, 97, 122, 32};
int main() {
    int state = 0;
    int words = 0;
    int letters = 0;
    for (int i = 0; i < 24; i++) {
        int ch = text[i];
        if (state == 0) {
            if (ch != 32) {
                state = 1;
                words = words + 1;
                letters = letters + 1;
            }
        } else {
            if (ch == 32) {
                state = 0;
            } else {
                letters = letters + 1;
            }
        }
    }
    return words * 100 + letters;
}
""",
    ),
    _w(
        "maxsearch", CONTROL,
        "argmax with data-dependent updates",
        """
int data[20] = {12, 7, 3, 19, 4, 19, 8, 1, 14, 6,
                11, 2, 17, 9, 5, 13, 20, 18, 10, 15};
int main() {
    int best = 0 - 1000;
    int best_index = 0;
    for (int i = 0; i < 20; i++) {
        if (data[i] > best) {
            best = data[i];
            best_index = i;
        }
    }
    return best * 100 + best_index;
}
""",
    ),
    _w(
        "histogram", MEMORY,
        "16-bin histogram (read-modify-write recurrence)",
        """
int bins[16];
int data[48] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3,
                2, 3, 8, 4, 6, 2, 6, 4, 3, 3, 8, 3, 2, 7, 9, 5,
                0, 2, 8, 8, 4, 1, 9, 7, 1, 6, 9, 3, 9, 9, 3, 7};
int main() {
    for (int i = 0; i < 48; i++) {
        int bin = data[i] & 15;
        bins[bin] = bins[bin] + 1;
    }
    int checksum = 0;
    for (int b = 0; b < 16; b++) {
        checksum += bins[b] * (b + 1);
    }
    return checksum;
}
""",
    ),
    _w(
        "bubble", MEMORY,
        "bubble sort of 12 elements",
        """
int data[12] = {9, 4, 11, 2, 7, 1, 12, 5, 10, 3, 8, 6};
int main() {
    for (int i = 0; i < 11; i++) {
        for (int j = 0; j < 11; j++) {
            if (data[j] > data[j + 1]) {
                int t = data[j];
                data[j] = data[j + 1];
                data[j + 1] = t;
            }
        }
    }
    int checksum = 0;
    for (int k = 0; k < 12; k++) {
        checksum += data[k] * (k + 1);
    }
    return checksum;
}
""",
    ),
    _w(
        "prefix", MEMORY,
        "in-place prefix sum over 24 elements",
        """
int data[24] = {5, 3, 8, 1, 9, 2, 7, 4, 6, 0, 5, 3,
                8, 1, 9, 2, 7, 4, 6, 0, 5, 3, 8, 1};
int main() {
    for (int i = 1; i < 24; i++) {
        data[i] = data[i] + data[i - 1];
    }
    return data[23];
}
""",
    ),
    _w(
        "ptr_sum", POINTER,
        "vector sum through a walking pointer",
        """
int buffer[16] = {2, 4, 6, 8, 10, 12, 14, 16, 1, 3, 5, 7, 9, 11, 13, 15};
int main() {
    int *p = &buffer[0];
    int acc = 0;
    for (int i = 0; i < 16; i++) {
        acc += *p;
        p = p + 1;
    }
    return acc;
}
""",
    ),
    _w(
        "ptr_swap", POINTER,
        "swap via pointer parameters, then min/max selection",
        """
void order(int *lo, int *hi) {
    if (*lo > *hi) {
        int t = *lo;
        *lo = *hi;
        *hi = t;
    }
}
int main(int a, int b, int c) {
    int x = a; int y = b; int z = c;
    order(&x, &y);
    order(&y, &z);
    order(&x, &y);
    return x * 10000 + y * 100 + z;
}
""",
        args=(42, 7, 19),
        static_bounds=False,
    ),
    _w(
        "prodcons", CHANNEL,
        "producer/consumer over one rendezvous channel",
        """
chan<int> data;
int total;
process void producer() {
    for (int i = 1; i <= 12; i++) {
        send(data, i * i - i);
    }
}
int main() {
    int acc = 0;
    for (int i = 0; i < 12; i++) {
        int v = recv(data);
        acc += v;
    }
    total = acc;
    return acc;
}
""",
        static_bounds=False,
    ),
    _w(
        "pipeline3", CHANNEL,
        "three-stage process pipeline: scale, offset, accumulate",
        """
chan<int> stage1;
chan<int> stage2;
process void scale() {
    for (int i = 0; i < 10; i++) {
        send(stage1, i * 3);
    }
}
process void offset() {
    for (int i = 0; i < 10; i++) {
        int v = recv(stage1);
        send(stage2, v + 7);
    }
}
int main() {
    int acc = 0;
    for (int i = 0; i < 10; i++) {
        int v = recv(stage2);
        acc += v;
    }
    return acc;
}
""",
        static_bounds=False,
    ),
    _w(
        "fib_iter", CONTROL,
        "iterative Fibonacci (tight scalar recurrence)",
        """
int main(int n) {
    int a = 0;
    int b = 1;
    for (int i = 0; i < n; i++) {
        int t = a + b;
        a = b;
        b = t;
    }
    return a;
}
""",
        args=(20,),
        static_bounds=False,
    ),
    _w(
        "popcount", REGULAR,
        "population count over a 16-word block",
        """
int words[16] = {0x12345678, 0x0F0F0F0F, 0x7FFFFFFF, 0x00000001,
                 0x11111111, 0x22222222, 0x44444444, 0x78787878,
                 0x13579BDF, 0x2468ACE0, 0x55555555, 0x33CC33CC,
                 0x0000FFFF, 0x7FFF0000, 0x01010101, 0x10203040};
int main() {
    int total = 0;
    for (int i = 0; i < 16; i++) {
        uint32 v = words[i];
        int count = 0;
        for (int b = 0; b < 32; b++) {
            count += v & 1;
            v = v >> 1;
        }
        total += count;
    }
    return total;
}
""",
    ),
]


BY_NAME: Dict[str, Workload] = {w.name: w for w in WORKLOADS}


def by_category(category: str) -> List[Workload]:
    return [w for w in WORKLOADS if w.category == category]


def get(name: str) -> Workload:
    if name not in BY_NAME:
        known = ", ".join(sorted(BY_NAME))
        raise KeyError(f"unknown workload {name!r}; known: {known}")
    return BY_NAME[name]
