"""Frontend for the C-like hardware description language.

The public surface is deliberately small:

* :func:`parse` — source text to a type-checked AST plus semantic summary;
* the AST node classes in :mod:`repro.lang.ast_nodes`;
* the type constructors in :mod:`repro.lang.types`;
* :func:`print_program` — AST back to source text.
"""

from __future__ import annotations

from typing import Tuple

from . import ast_nodes
from .ast_nodes import Program
from .errors import (
    FrontendError,
    InterpError,
    LexError,
    ParseError,
    SemanticError,
    SourceLocation,
)
from .lexer import tokenize
from .parser import parse_expression, parse_program
from .pretty import print_program
from .semantic import SemanticInfo, analyze
from .types import (
    ArrayType,
    BOOL,
    BoolType,
    ChannelType,
    CHAR,
    FunctionType,
    INT,
    IntType,
    PointerType,
    Type,
    UINT,
    VOID,
    VoidType,
    make_int,
)


def parse(source: str, filename: str = "<input>") -> Tuple[Program, SemanticInfo]:
    """Parse and type-check source text.

    Returns the annotated AST and the semantic summary; raises a
    :class:`FrontendError` subclass on any problem.
    """
    program = parse_program(source, filename)
    info = analyze(program)
    return program, info


__all__ = [
    "ArrayType",
    "BOOL",
    "BoolType",
    "CHAR",
    "ChannelType",
    "FrontendError",
    "FunctionType",
    "INT",
    "IntType",
    "InterpError",
    "LexError",
    "ParseError",
    "PointerType",
    "Program",
    "SemanticError",
    "SemanticInfo",
    "SourceLocation",
    "Type",
    "UINT",
    "VOID",
    "VoidType",
    "analyze",
    "ast_nodes",
    "make_int",
    "parse",
    "parse_expression",
    "parse_program",
    "print_program",
    "tokenize",
]
