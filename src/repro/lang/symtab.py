"""Symbols and lexically scoped symbol tables."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .errors import SemanticError, SourceLocation
from .types import Type


class SymbolKind(enum.Enum):
    LOCAL = "local"
    PARAM = "param"
    GLOBAL = "global"
    CHANNEL = "channel"
    FUNCTION = "function"


_uid = itertools.count()


@dataclass
class Symbol:
    """A named program entity.  ``unique_name`` disambiguates shadowed
    locals so the IR builder never has to reason about lexical scope."""

    name: str
    type: Type
    kind: SymbolKind
    is_const: bool = False
    location: SourceLocation = field(default_factory=lambda: SourceLocation(0, 0))
    unique_name: str = ""

    def __post_init__(self) -> None:
        if not self.unique_name:
            if self.kind in (SymbolKind.GLOBAL, SymbolKind.FUNCTION, SymbolKind.CHANNEL):
                self.unique_name = self.name
            else:
                self.unique_name = f"{self.name}.{next(_uid)}"

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


class Scope:
    """One lexical scope; chains to its parent for lookups."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self.symbols: Dict[str, Symbol] = {}

    def declare(self, symbol: Symbol) -> Symbol:
        if symbol.name in self.symbols:
            previous = self.symbols[symbol.name]
            raise SemanticError(
                f"redeclaration of {symbol.name!r}"
                f" (previously declared at {previous.location})",
                symbol.location,
            )
        self.symbols[symbol.name] = symbol
        return symbol

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class ScopeStack:
    """Convenience wrapper that the semantic analyzer pushes/pops."""

    def __init__(self) -> None:
        self.global_scope = Scope()
        self._stack: List[Scope] = [self.global_scope]

    @property
    def current(self) -> Scope:
        return self._stack[-1]

    def push(self) -> Scope:
        scope = Scope(self.current)
        self._stack.append(scope)
        return scope

    def pop(self) -> None:
        if len(self._stack) == 1:
            raise RuntimeError("cannot pop the global scope")
        self._stack.pop()

    def declare(self, symbol: Symbol) -> Symbol:
        return self.current.declare(symbol)

    def lookup(self, name: str) -> Optional[Symbol]:
        return self.current.lookup(name)
