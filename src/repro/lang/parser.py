"""Recursive-descent parser for the C-like language.

The grammar is a C subset plus the hardware extensions the surveyed
languages introduced:

* ``par { ... }``       — explicit statement-level concurrency (Handel-C,
  Bach C, SpecC);
* ``seq { ... }``       — explicit sequencing inside ``par``;
* ``chan<T> c;`` with ``send(c, e)`` / ``recv(c)`` — CSP rendezvous;
* ``wait();``           — an explicit clock boundary (SystemC style);
* ``delay(n);``         — wait ``n`` cycles (Handel-C);
* ``within (n) { ... }``— a HardwareC-style timing constraint;
* sized integer types   — ``uint5 x;``, ``int12 y;``;
* ``process`` functions — top-level concurrent units.

Expression parsing uses precedence climbing with C's precedence table.
"""

from __future__ import annotations

from typing import List, Optional

from . import ast_nodes as ast
from .errors import ParseError
from .lexer import tokenize
from .tokens import Token, TokenKind
from .types import (
    ArrayType,
    BoolType,
    ChannelType,
    PointerType,
    Type,
    VOID,
    BOOL,
    make_int,
)

# C precedence: higher binds tighter.  (op text -> (precedence, right_assoc))
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_BINARY_TOKENS = {
    TokenKind.LOR: "||",
    TokenKind.LAND: "&&",
    TokenKind.PIPE: "|",
    TokenKind.CARET: "^",
    TokenKind.AMP: "&",
    TokenKind.EQ: "==",
    TokenKind.NE: "!=",
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
    TokenKind.SHL: "<<",
    TokenKind.SHR: ">>",
    TokenKind.PLUS: "+",
    TokenKind.MINUS: "-",
    TokenKind.STAR: "*",
    TokenKind.SLASH: "/",
    TokenKind.PERCENT: "%",
}

_COMPOUND_ASSIGN = {
    TokenKind.PLUS_ASSIGN: "+",
    TokenKind.MINUS_ASSIGN: "-",
    TokenKind.STAR_ASSIGN: "*",
    TokenKind.SLASH_ASSIGN: "/",
    TokenKind.PERCENT_ASSIGN: "%",
    TokenKind.AMP_ASSIGN: "&",
    TokenKind.PIPE_ASSIGN: "|",
    TokenKind.CARET_ASSIGN: "^",
    TokenKind.SHL_ASSIGN: "<<",
    TokenKind.SHR_ASSIGN: ">>",
}


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # Token-stream helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _expect(self, kind: TokenKind, context: str = "") -> Token:
        token = self._peek()
        if token.kind is not kind:
            where = f" in {context}" if context else ""
            raise ParseError(
                f"expected {kind.value!r} but found {token.kind.value!r}"
                f" ({token.text!r}){where}",
                token.location,
            )
        return self._advance()

    def _accept(self, kind: TokenKind) -> Optional[Token]:
        if self._at(kind):
            return self._advance()
        return None

    # ------------------------------------------------------------------
    # Types and declarators
    # ------------------------------------------------------------------

    def _at_type(self) -> bool:
        if self._at(TokenKind.TYPE_NAME) or self._at(TokenKind.KW_CHAN):
            return True
        return self._at(TokenKind.KW_CONST) and self._peek(1).kind is TokenKind.TYPE_NAME

    def _parse_base_type(self) -> Type:
        token = self._expect(TokenKind.TYPE_NAME, "type")
        if token.text == "void":
            return VOID
        if token.text == "bool":
            return BOOL
        width, signed = token.type_info  # type: ignore[misc]
        return make_int(width, signed)

    def _parse_channel_type(self) -> Type:
        self._expect(TokenKind.KW_CHAN)
        self._expect(TokenKind.LT, "channel type")
        element = self._parse_base_type()
        self._expect(TokenKind.GT, "channel type")
        return ChannelType(element)

    def _parse_declarator(self, base: Type) -> tuple:
        """Parse ``*...name[N][M]`` and return (name_token, full_type)."""
        pointer_depth = 0
        while self._accept(TokenKind.STAR):
            pointer_depth += 1
        name = self._expect(TokenKind.IDENT, "declarator")
        declared: Type = base
        for _ in range(pointer_depth):
            declared = PointerType(declared)
        sizes = []
        while self._accept(TokenKind.LBRACKET):
            size = self._expect(TokenKind.INT_LIT, "array size")
            self._expect(TokenKind.RBRACKET, "array declarator")
            sizes.append(size.value)
        for size in reversed(sizes):
            declared = ArrayType(declared, size)
        return name, declared

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self._parse_conditional()

    def _parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self._accept(TokenKind.QUESTION):
            then = self.parse_expression()
            self._expect(TokenKind.COLON, "conditional expression")
            otherwise = self._parse_conditional()
            return ast.Conditional(
                cond=cond, then=then, otherwise=otherwise, location=cond.location
            )
        return cond

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            op = _BINARY_TOKENS.get(self._peek().kind)
            if op is None:
                return left
            precedence = _BINARY_PRECEDENCE[op]
            if precedence < min_precedence:
                return left
            op_token = self._advance()
            right = self._parse_binary(precedence + 1)
            left = ast.BinaryOp(
                op=op, left=left, right=right, location=op_token.location
            )

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        unary_ops = {
            TokenKind.MINUS: "-",
            TokenKind.TILDE: "~",
            TokenKind.BANG: "!",
            TokenKind.STAR: "*",
            TokenKind.AMP: "&",
            TokenKind.PLUS: "+",
        }
        if token.kind in unary_ops:
            self._advance()
            operand = self._parse_unary()
            if unary_ops[token.kind] == "+":
                return operand
            return ast.UnaryOp(
                op=unary_ops[token.kind], operand=operand, location=token.location
            )
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._at(TokenKind.LBRACKET):
                bracket = self._advance()
                index = self.parse_expression()
                self._expect(TokenKind.RBRACKET, "array index")
                expr = ast.ArrayIndex(
                    base=expr, index=index, location=bracket.location
                )
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INT_LIT:
            self._advance()
            return ast.IntLiteral(value=token.value or 0, location=token.location)
        if token.kind is TokenKind.KW_TRUE:
            self._advance()
            return ast.BoolLiteral(value=True, location=token.location)
        if token.kind is TokenKind.KW_FALSE:
            self._advance()
            return ast.BoolLiteral(value=False, location=token.location)
        if token.kind is TokenKind.KW_RECV:
            self._advance()
            self._expect(TokenKind.LPAREN, "recv")
            channel = self._expect(TokenKind.IDENT, "recv channel")
            self._expect(TokenKind.RPAREN, "recv")
            return ast.Receive(channel=channel.text, location=token.location)
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._at(TokenKind.LPAREN):
                self._advance()
                args: List[ast.Expr] = []
                if not self._at(TokenKind.RPAREN):
                    args.append(self.parse_expression())
                    while self._accept(TokenKind.COMMA):
                        args.append(self.parse_expression())
                self._expect(TokenKind.RPAREN, "call")
                return ast.Call(callee=token.text, args=args, location=token.location)
            return ast.Identifier(name=token.text, location=token.location)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self.parse_expression()
            self._expect(TokenKind.RPAREN, "parenthesized expression")
            return expr
        raise ParseError(
            f"expected an expression but found {token.kind.value!r}"
            f" ({token.text!r})",
            token.location,
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        open_brace = self._expect(TokenKind.LBRACE, "block")
        statements: List[ast.Stmt] = []
        while not self._at(TokenKind.RBRACE):
            if self._at(TokenKind.EOF):
                raise ParseError("unterminated block", open_brace.location)
            statements.append(self.parse_statement())
        self._expect(TokenKind.RBRACE, "block")
        return ast.Block(statements=statements, location=open_brace.location)

    def parse_statement(self) -> ast.Stmt:
        token = self._peek()
        kind = token.kind
        if kind is TokenKind.LBRACE:
            return self.parse_block()
        if kind is TokenKind.SEMI:
            self._advance()
            return ast.Block(statements=[], location=token.location)
        if kind is TokenKind.KW_IF:
            return self._parse_if()
        if kind is TokenKind.KW_WHILE:
            return self._parse_while()
        if kind is TokenKind.KW_DO:
            return self._parse_do_while()
        if kind is TokenKind.KW_FOR:
            return self._parse_for()
        if kind is TokenKind.KW_RETURN:
            self._advance()
            value = None
            if not self._at(TokenKind.SEMI):
                value = self.parse_expression()
            self._expect(TokenKind.SEMI, "return")
            return ast.Return(value=value, location=token.location)
        if kind is TokenKind.KW_BREAK:
            self._advance()
            self._expect(TokenKind.SEMI, "break")
            return ast.Break(location=token.location)
        if kind is TokenKind.KW_CONTINUE:
            self._advance()
            self._expect(TokenKind.SEMI, "continue")
            return ast.Continue(location=token.location)
        if kind is TokenKind.KW_PAR:
            return self._parse_par()
        if kind is TokenKind.KW_SEQ:
            self._advance()
            return ast.Seq(body=self.parse_block(), location=token.location)
        if kind is TokenKind.KW_WAIT:
            self._advance()
            self._expect(TokenKind.LPAREN, "wait")
            self._expect(TokenKind.RPAREN, "wait")
            self._expect(TokenKind.SEMI, "wait")
            return ast.Wait(location=token.location)
        if kind is TokenKind.KW_DELAY:
            self._advance()
            self._expect(TokenKind.LPAREN, "delay")
            cycles = self._expect(TokenKind.INT_LIT, "delay cycle count")
            self._expect(TokenKind.RPAREN, "delay")
            self._expect(TokenKind.SEMI, "delay")
            return ast.Delay(cycles=cycles.value or 0, location=token.location)
        if kind is TokenKind.KW_WITHIN:
            self._advance()
            self._expect(TokenKind.LPAREN, "within")
            cycles = self._expect(TokenKind.INT_LIT, "within cycle bound")
            self._expect(TokenKind.RPAREN, "within")
            body = self.parse_block()
            return ast.Within(
                cycles=cycles.value or 0, body=body, location=token.location
            )
        if kind is TokenKind.KW_SEND:
            self._advance()
            self._expect(TokenKind.LPAREN, "send")
            channel = self._expect(TokenKind.IDENT, "send channel")
            self._expect(TokenKind.COMMA, "send")
            value = self.parse_expression()
            self._expect(TokenKind.RPAREN, "send")
            self._expect(TokenKind.SEMI, "send")
            return ast.Send(channel=channel.text, value=value, location=token.location)
        if kind is TokenKind.KW_CHAN:
            element = self._parse_channel_type()
            name = self._expect(TokenKind.IDENT, "channel declaration")
            self._expect(TokenKind.SEMI, "channel declaration")
            assert isinstance(element, ChannelType)
            return ast.ChannelDecl(
                name=name.text, element_type=element.element, location=token.location
            )
        if self._at_type():
            return self._parse_declaration()
        return self._parse_expression_statement()

    def _parse_if(self) -> ast.If:
        token = self._expect(TokenKind.KW_IF)
        self._expect(TokenKind.LPAREN, "if")
        cond = self.parse_expression()
        self._expect(TokenKind.RPAREN, "if")
        then = self.parse_statement()
        otherwise = None
        if self._accept(TokenKind.KW_ELSE):
            otherwise = self.parse_statement()
        return ast.If(cond=cond, then=then, otherwise=otherwise, location=token.location)

    def _parse_while(self) -> ast.While:
        token = self._expect(TokenKind.KW_WHILE)
        self._expect(TokenKind.LPAREN, "while")
        cond = self.parse_expression()
        self._expect(TokenKind.RPAREN, "while")
        body = self.parse_statement()
        return ast.While(cond=cond, body=body, location=token.location)

    def _parse_do_while(self) -> ast.DoWhile:
        token = self._expect(TokenKind.KW_DO)
        body = self.parse_statement()
        self._expect(TokenKind.KW_WHILE, "do-while")
        self._expect(TokenKind.LPAREN, "do-while")
        cond = self.parse_expression()
        self._expect(TokenKind.RPAREN, "do-while")
        self._expect(TokenKind.SEMI, "do-while")
        return ast.DoWhile(body=body, cond=cond, location=token.location)

    def _parse_for(self) -> ast.For:
        token = self._expect(TokenKind.KW_FOR)
        self._expect(TokenKind.LPAREN, "for")
        init: Optional[ast.Stmt] = None
        if not self._at(TokenKind.SEMI):
            if self._at_type():
                init = self._parse_declaration()
            else:
                init = self._parse_simple_assignment_or_expr()
                self._expect(TokenKind.SEMI, "for initializer")
        else:
            self._advance()
        cond = None
        if not self._at(TokenKind.SEMI):
            cond = self.parse_expression()
        self._expect(TokenKind.SEMI, "for condition")
        step: Optional[ast.Stmt] = None
        if not self._at(TokenKind.RPAREN):
            step = self._parse_simple_assignment_or_expr()
        self._expect(TokenKind.RPAREN, "for")
        body = self.parse_statement()
        return ast.For(init=init, cond=cond, step=step, body=body, location=token.location)

    def _parse_par(self) -> ast.Par:
        token = self._expect(TokenKind.KW_PAR)
        open_brace = self._expect(TokenKind.LBRACE, "par")
        branches: List[ast.Stmt] = []
        while not self._at(TokenKind.RBRACE):
            if self._at(TokenKind.EOF):
                raise ParseError("unterminated par block", open_brace.location)
            branches.append(self.parse_statement())
        self._expect(TokenKind.RBRACE, "par")
        return ast.Par(branches=branches, location=token.location)

    def _parse_declaration(self) -> ast.Stmt:
        is_const = self._accept(TokenKind.KW_CONST) is not None
        base = self._parse_base_type()
        name, declared = self._parse_declarator(base)
        init: Optional[ast.Expr] = None
        array_init: Optional[List[ast.Expr]] = None
        if self._accept(TokenKind.ASSIGN):
            if self._at(TokenKind.LBRACE):
                self._advance()
                array_init = []
                if not self._at(TokenKind.RBRACE):
                    array_init.append(self.parse_expression())
                    while self._accept(TokenKind.COMMA):
                        if self._at(TokenKind.RBRACE):
                            break
                        array_init.append(self.parse_expression())
                self._expect(TokenKind.RBRACE, "array initializer")
            else:
                init = self.parse_expression()
        self._expect(TokenKind.SEMI, "declaration")
        return ast.VarDecl(
            name=name.text,
            var_type=declared,
            init=init,
            array_init=array_init,
            is_const=is_const,
            location=name.location,
        )

    def _parse_simple_assignment_or_expr(self) -> ast.Stmt:
        """An assignment / compound assignment / ++ / -- / plain expression,
        without the trailing semicolon.  Used for statement bodies and
        ``for`` heads."""
        expr = self.parse_expression()
        token = self._peek()
        if token.kind is TokenKind.ASSIGN:
            if not ast.is_lvalue(expr):
                raise ParseError("assignment target is not an lvalue", token.location)
            self._advance()
            value = self.parse_expression()
            return ast.Assign(target=expr, value=value, location=token.location)
        if token.kind in _COMPOUND_ASSIGN:
            if not ast.is_lvalue(expr):
                raise ParseError("assignment target is not an lvalue", token.location)
            self._advance()
            rhs = self.parse_expression()
            combined = ast.BinaryOp(
                op=_COMPOUND_ASSIGN[token.kind],
                left=expr,
                right=rhs,
                location=token.location,
            )
            return ast.Assign(target=expr, value=combined, location=token.location)
        if token.kind in (TokenKind.INCREMENT, TokenKind.DECREMENT):
            if not ast.is_lvalue(expr):
                raise ParseError("++/-- target is not an lvalue", token.location)
            self._advance()
            delta = ast.IntLiteral(value=1, location=token.location)
            op = "+" if token.kind is TokenKind.INCREMENT else "-"
            combined = ast.BinaryOp(
                op=op, left=expr, right=delta, location=token.location
            )
            return ast.Assign(target=expr, value=combined, location=token.location)
        return ast.ExprStmt(expr=expr, location=expr.location)

    def _parse_expression_statement(self) -> ast.Stmt:
        stmt = self._parse_simple_assignment_or_expr()
        self._expect(TokenKind.SEMI, "statement")
        return stmt

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while not self._at(TokenKind.EOF):
            token = self._peek()
            if token.kind is TokenKind.KW_CHAN:
                decl = self.parse_statement()
                assert isinstance(decl, ast.ChannelDecl)
                program.channels.append(decl)
                continue
            is_process = self._accept(TokenKind.KW_PROCESS) is not None
            is_const = False
            if self._at(TokenKind.KW_CONST):
                is_const = True
                self._advance()
            if not self._at(TokenKind.TYPE_NAME):
                raise ParseError(
                    f"expected a declaration but found {token.kind.value!r}"
                    f" ({token.text!r})",
                    token.location,
                )
            base = self._parse_base_type()
            name, declared = self._parse_declarator(base)
            if self._at(TokenKind.LPAREN):
                program.functions.append(
                    self._parse_function_rest(name.text, declared, is_process, token)
                )
            else:
                if is_process:
                    raise ParseError("'process' applies only to functions", token.location)
                init: Optional[ast.Expr] = None
                array_init: Optional[List[ast.Expr]] = None
                if self._accept(TokenKind.ASSIGN):
                    if self._at(TokenKind.LBRACE):
                        self._advance()
                        array_init = []
                        if not self._at(TokenKind.RBRACE):
                            array_init.append(self.parse_expression())
                            while self._accept(TokenKind.COMMA):
                                if self._at(TokenKind.RBRACE):
                                    break
                                array_init.append(self.parse_expression())
                        self._expect(TokenKind.RBRACE, "array initializer")
                    else:
                        init = self.parse_expression()
                self._expect(TokenKind.SEMI, "global declaration")
                program.globals.append(
                    ast.VarDecl(
                        name=name.text,
                        var_type=declared,
                        init=init,
                        array_init=array_init,
                        is_const=is_const,
                        location=name.location,
                    )
                )
        return program

    def _parse_function_rest(
        self, name: str, return_type: Type, is_process: bool, start: Token
    ) -> ast.FunctionDef:
        self._expect(TokenKind.LPAREN, "function")
        params: List[ast.Param] = []
        if not self._at(TokenKind.RPAREN):
            params.append(self._parse_param())
            while self._accept(TokenKind.COMMA):
                params.append(self._parse_param())
        self._expect(TokenKind.RPAREN, "function")
        body = self.parse_block()
        return ast.FunctionDef(
            name=name,
            return_type=return_type,
            params=params,
            body=body,
            is_process=is_process,
            location=start.location,
        )

    def _parse_param(self) -> ast.Param:
        if self._at(TokenKind.KW_CHAN):
            chan_type = self._parse_channel_type()
            name = self._expect(TokenKind.IDENT, "parameter")
            return ast.Param(name=name.text, param_type=chan_type, location=name.location)
        base = self._parse_base_type()
        name, declared = self._parse_declarator(base)
        return ast.Param(name=name.text, param_type=declared, location=name.location)


def parse_program(source: str, filename: str = "<input>") -> ast.Program:
    """Parse a whole translation unit from source text."""
    return Parser(tokenize(source, filename)).parse_program()


def parse_expression(source: str) -> ast.Expr:
    """Parse a single expression; used heavily in unit tests."""
    parser = Parser(tokenize(source))
    expr = parser.parse_expression()
    parser._expect(TokenKind.EOF, "expression")
    return expr
