"""Token definitions for the C-like language lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from .errors import SourceLocation


class TokenKind(enum.Enum):
    # Literals and names
    IDENT = "identifier"
    INT_LIT = "integer literal"
    TYPE_NAME = "type name"  # int, bool, void, char, uintN, intN

    # Keywords
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_DO = "do"
    KW_FOR = "for"
    KW_RETURN = "return"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"
    KW_PAR = "par"
    KW_SEQ = "seq"
    KW_CHAN = "chan"
    KW_SEND = "send"
    KW_RECV = "recv"
    KW_WAIT = "wait"
    KW_DELAY = "delay"
    KW_WITHIN = "within"
    KW_TRUE = "true"
    KW_FALSE = "false"
    KW_CONST = "const"
    KW_PROCESS = "process"

    # Punctuation
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    QUESTION = "?"
    COLON = ":"

    # Operators
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    TILDE = "~"
    BANG = "!"
    SHL = "<<"
    SHR = ">>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="
    LAND = "&&"
    LOR = "||"
    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    PERCENT_ASSIGN = "%="
    AMP_ASSIGN = "&="
    PIPE_ASSIGN = "|="
    CARET_ASSIGN = "^="
    SHL_ASSIGN = "<<="
    SHR_ASSIGN = ">>="
    INCREMENT = "++"
    DECREMENT = "--"

    EOF = "end of input"


KEYWORDS = {
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "while": TokenKind.KW_WHILE,
    "do": TokenKind.KW_DO,
    "for": TokenKind.KW_FOR,
    "return": TokenKind.KW_RETURN,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
    "par": TokenKind.KW_PAR,
    "seq": TokenKind.KW_SEQ,
    "chan": TokenKind.KW_CHAN,
    "send": TokenKind.KW_SEND,
    "recv": TokenKind.KW_RECV,
    "wait": TokenKind.KW_WAIT,
    "delay": TokenKind.KW_DELAY,
    "within": TokenKind.KW_WITHIN,
    "true": TokenKind.KW_TRUE,
    "false": TokenKind.KW_FALSE,
    "const": TokenKind.KW_CONST,
    "process": TokenKind.KW_PROCESS,
}

# Base type names; sized variants (uint7, int12) are matched by the lexer.
BASE_TYPE_NAMES = {"void", "bool", "int", "uint", "char"}


@dataclass
class Token:
    kind: TokenKind
    text: str
    location: SourceLocation
    # For INT_LIT: the numeric value.  For TYPE_NAME: (width, signed) or
    # None for void/bool which carry no width.
    value: Optional[int] = None
    type_info: Optional[tuple] = field(default=None)

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})"
