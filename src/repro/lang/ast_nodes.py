"""Abstract syntax tree for the C-like language.

Every node carries a :class:`SourceLocation`.  Expression nodes gain a
``type`` attribute during semantic analysis; it is ``None`` straight out of
the parser.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .errors import SourceLocation, UNKNOWN_LOCATION
from .types import Type


@dataclass
class Node:
    location: SourceLocation = field(default=UNKNOWN_LOCATION, kw_only=True)


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expressions.  ``type`` is filled in by semantic
    analysis and read by every downstream consumer."""

    type: Optional[Type] = field(default=None, kw_only=True)


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class BoolLiteral(Expr):
    value: bool = False


@dataclass
class Identifier(Expr):
    name: str = ""


@dataclass
class UnaryOp(Expr):
    """``op`` is one of: ``-``, ``~``, ``!``, ``*`` (deref), ``&`` (addr)."""

    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class BinaryOp(Expr):
    """``op`` is the C spelling: ``+ - * / % & | ^ << >> < <= > >= == != && ||``."""

    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class Conditional(Expr):
    """The ternary ``cond ? then : otherwise``."""

    cond: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    otherwise: Expr = None  # type: ignore[assignment]


@dataclass
class ArrayIndex(Expr):
    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass
class Call(Expr):
    callee: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Receive(Expr):
    """``recv(channel)`` — CSP rendezvous read (Handel-C ``?``, Bach C)."""

    channel: str = ""


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    """A local or global declaration, possibly with an initializer.

    For arrays, ``init`` may be a list of expressions (brace initializer).
    """

    name: str = ""
    var_type: Type = None  # type: ignore[assignment]
    init: Optional[Expr] = None
    array_init: Optional[List[Expr]] = None
    is_const: bool = False


@dataclass
class ChannelDecl(Stmt):
    """``chan<int> c;`` — declares a rendezvous channel."""

    name: str = ""
    element_type: Type = None  # type: ignore[assignment]


@dataclass
class Assign(Stmt):
    """``target = value;`` where target is Identifier, ArrayIndex, or a
    pointer dereference (UnaryOp '*')."""

    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Stmt = None  # type: ignore[assignment]
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class DoWhile(Stmt):
    body: Stmt = None  # type: ignore[assignment]
    cond: Expr = None  # type: ignore[assignment]


@dataclass
class For(Stmt):
    """``for (init; cond; step) body``.  Any of the three heads may be None."""

    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Par(Stmt):
    """``par { s1 s2 ... }`` — run the component statements concurrently and
    join when all finish (Handel-C / Bach C / SpecC semantics)."""

    branches: List[Stmt] = field(default_factory=list)


@dataclass
class Seq(Stmt):
    """``seq { ... }`` — explicit sequential grouping inside ``par``."""

    body: Block = None  # type: ignore[assignment]


@dataclass
class Wait(Stmt):
    """``wait();`` — an explicit cycle boundary (SystemC sequential style)."""


@dataclass
class Delay(Stmt):
    """``delay(n);`` — wait ``n`` cycles (Handel-C ``delay``)."""

    cycles: int = 1


@dataclass
class Within(Stmt):
    """``within (n) { ... }`` — HardwareC-style timing constraint: the body
    must be scheduled into at most ``n`` control steps."""

    cycles: int = 0
    body: Block = None  # type: ignore[assignment]


@dataclass
class Send(Stmt):
    """``send(channel, expr);`` — CSP rendezvous write."""

    channel: str = ""
    value: Expr = None  # type: ignore[assignment]


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------


@dataclass
class Param(Node):
    name: str = ""
    param_type: Type = None  # type: ignore[assignment]


@dataclass
class FunctionDef(Node):
    name: str = ""
    return_type: Type = None  # type: ignore[assignment]
    params: List[Param] = field(default_factory=list)
    body: Block = None  # type: ignore[assignment]
    is_process: bool = False  # ``process`` keyword: a top-level parallel unit


@dataclass
class Program(Node):
    functions: List[FunctionDef] = field(default_factory=list)
    globals: List[VarDecl] = field(default_factory=list)
    channels: List[ChannelDecl] = field(default_factory=list)

    def function(self, name: str) -> FunctionDef:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function named {name!r}")

    @property
    def processes(self) -> List[FunctionDef]:
        return [fn for fn in self.functions if fn.is_process]


_ASSIGNABLE = (Identifier, ArrayIndex)


def is_lvalue(expr: Expr) -> bool:
    """Whether ``expr`` may appear on the left of an assignment."""
    if isinstance(expr, _ASSIGNABLE):
        return True
    return isinstance(expr, UnaryOp) and expr.op == "*"


def walk_expr(expr: Expr):
    """Yield ``expr`` and every sub-expression, preorder."""
    yield expr
    if isinstance(expr, UnaryOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, BinaryOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, Conditional):
        yield from walk_expr(expr.cond)
        yield from walk_expr(expr.then)
        yield from walk_expr(expr.otherwise)
    elif isinstance(expr, ArrayIndex):
        yield from walk_expr(expr.base)
        yield from walk_expr(expr.index)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk_expr(arg)


def walk_stmts(stmt: Stmt):
    """Yield ``stmt`` and every nested statement, preorder."""
    yield stmt
    if isinstance(stmt, Block):
        for child in stmt.statements:
            yield from walk_stmts(child)
    elif isinstance(stmt, If):
        yield from walk_stmts(stmt.then)
        if stmt.otherwise is not None:
            yield from walk_stmts(stmt.otherwise)
    elif isinstance(stmt, While):
        yield from walk_stmts(stmt.body)
    elif isinstance(stmt, DoWhile):
        yield from walk_stmts(stmt.body)
    elif isinstance(stmt, For):
        if stmt.init is not None:
            yield from walk_stmts(stmt.init)
        if stmt.step is not None:
            yield from walk_stmts(stmt.step)
        yield from walk_stmts(stmt.body)
    elif isinstance(stmt, Par):
        for branch in stmt.branches:
            yield from walk_stmts(branch)
    elif isinstance(stmt, Seq):
        yield from walk_stmts(stmt.body)
    elif isinstance(stmt, Within):
        yield from walk_stmts(stmt.body)


def stmt_expressions(stmt: Stmt):
    """Yield the expressions directly attached to ``stmt`` (not nested
    statements' expressions)."""
    if isinstance(stmt, VarDecl):
        if stmt.init is not None:
            yield stmt.init
        if stmt.array_init is not None:
            yield from stmt.array_init
    elif isinstance(stmt, Assign):
        yield stmt.target
        yield stmt.value
    elif isinstance(stmt, ExprStmt):
        yield stmt.expr
    elif isinstance(stmt, If):
        yield stmt.cond
    elif isinstance(stmt, While):
        yield stmt.cond
    elif isinstance(stmt, DoWhile):
        yield stmt.cond
    elif isinstance(stmt, For):
        if stmt.cond is not None:
            yield stmt.cond
    elif isinstance(stmt, Return):
        if stmt.value is not None:
            yield stmt.value
    elif isinstance(stmt, Send):
        yield stmt.value
