"""Hand-written lexer for the C-like language.

A table-free scanner keeps the error messages precise and avoids regex
backtracking surprises on large machine-generated workloads.
"""

from __future__ import annotations

import re
from typing import Iterator, List

from .errors import LexError, SourceLocation
from .tokens import BASE_TYPE_NAMES, KEYWORDS, Token, TokenKind

_SIZED_TYPE_RE = re.compile(r"^(u?int)([1-9][0-9]*)$")

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    ("<<=", TokenKind.SHL_ASSIGN),
    (">>=", TokenKind.SHR_ASSIGN),
    ("<<", TokenKind.SHL),
    (">>", TokenKind.SHR),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NE),
    ("&&", TokenKind.LAND),
    ("||", TokenKind.LOR),
    ("+=", TokenKind.PLUS_ASSIGN),
    ("-=", TokenKind.MINUS_ASSIGN),
    ("*=", TokenKind.STAR_ASSIGN),
    ("/=", TokenKind.SLASH_ASSIGN),
    ("%=", TokenKind.PERCENT_ASSIGN),
    ("&=", TokenKind.AMP_ASSIGN),
    ("|=", TokenKind.PIPE_ASSIGN),
    ("^=", TokenKind.CARET_ASSIGN),
    ("++", TokenKind.INCREMENT),
    ("--", TokenKind.DECREMENT),
    ("+", TokenKind.PLUS),
    ("-", TokenKind.MINUS),
    ("*", TokenKind.STAR),
    ("/", TokenKind.SLASH),
    ("%", TokenKind.PERCENT),
    ("&", TokenKind.AMP),
    ("|", TokenKind.PIPE),
    ("^", TokenKind.CARET),
    ("~", TokenKind.TILDE),
    ("!", TokenKind.BANG),
    ("<", TokenKind.LT),
    (">", TokenKind.GT),
    ("=", TokenKind.ASSIGN),
    ("(", TokenKind.LPAREN),
    (")", TokenKind.RPAREN),
    ("{", TokenKind.LBRACE),
    ("}", TokenKind.RBRACE),
    ("[", TokenKind.LBRACKET),
    ("]", TokenKind.RBRACKET),
    (";", TokenKind.SEMI),
    (",", TokenKind.COMMA),
    ("?", TokenKind.QUESTION),
    (":", TokenKind.COLON),
]


class Lexer:
    """Converts source text into a token stream."""

    def __init__(self, source: str, filename: str = "<input>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    def _location(self) -> SourceLocation:
        return SourceLocation(self.line, self.column, self.filename)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._location()
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment", start)
            else:
                return

    def _lex_number(self) -> Token:
        start = self._location()
        text_start = self.pos
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF_":
                self._advance()
            text = self.source[text_start : self.pos]
            digits = text[2:].replace("_", "")
            if not digits:
                raise LexError(f"malformed hex literal {text!r}", start)
            value = int(digits, 16)
        elif self._peek() == "0" and self._peek(1) in "bB":
            self._advance(2)
            while self._peek() and self._peek() in "01_":
                self._advance()
            text = self.source[text_start : self.pos]
            digits = text[2:].replace("_", "")
            if not digits:
                raise LexError(f"malformed binary literal {text!r}", start)
            value = int(digits, 2)
        else:
            while self._peek().isdigit() or self._peek() == "_":
                self._advance()
            text = self.source[text_start : self.pos]
            value = int(text.replace("_", ""))
        if self._peek().isalpha():
            raise LexError(
                f"invalid character {self._peek()!r} after number {text!r}", start
            )
        return Token(TokenKind.INT_LIT, text, start, value=value)

    def _lex_word(self) -> Token:
        start = self._location()
        text_start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[text_start : self.pos]
        if text in KEYWORDS:
            return Token(KEYWORDS[text], text, start)
        if text in BASE_TYPE_NAMES:
            info = {
                "void": None,
                "bool": None,
                "int": (32, True),
                "uint": (32, False),
                "char": (8, True),
            }[text]
            return Token(TokenKind.TYPE_NAME, text, start, type_info=info)
        sized = _SIZED_TYPE_RE.match(text)
        if sized:
            width = int(sized.group(2))
            if 1 <= width <= 128:
                signed = sized.group(1) == "int"
                return Token(TokenKind.TYPE_NAME, text, start, type_info=(width, signed))
        return Token(TokenKind.IDENT, text, start)

    def tokens(self) -> Iterator[Token]:
        """Yield tokens, ending with a single EOF token."""
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.source):
                yield Token(TokenKind.EOF, "", self._location())
                return
            ch = self._peek()
            if ch.isdigit():
                yield self._lex_number()
            elif ch.isalpha() or ch == "_":
                yield self._lex_word()
            else:
                location = self._location()
                for text, kind in _OPERATORS:
                    if self.source.startswith(text, self.pos):
                        self._advance(len(text))
                        yield Token(kind, text, location)
                        break
                else:
                    raise LexError(f"unexpected character {ch!r}", location)


def tokenize(source: str, filename: str = "<input>") -> List[Token]:
    """Tokenize ``source`` completely; convenience wrapper used by tests."""
    return list(Lexer(source, filename).tokens())
