"""Semantic analysis: name resolution, type checking, and the structural
rules the hardware extensions impose.

The analyzer annotates the AST in place:

* every :class:`~repro.lang.ast_nodes.Expr` gets a ``type``;
* every :class:`~repro.lang.ast_nodes.Identifier` and declaration gets a
  ``symbol`` attribute pointing at its :class:`~repro.lang.symtab.Symbol`;
* the returned :class:`SemanticInfo` records per-function symbols, the call
  graph, and which hardware features each function uses — flows consult the
  feature set to reject programs their historical counterparts could not
  compile (e.g. pointers outside C2Verilog).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from . import ast_nodes as ast
from .errors import SemanticError, SourceLocation, UNKNOWN_LOCATION
from .symtab import ScopeStack, Symbol, SymbolKind
from .types import (
    ArrayType,
    BOOL,
    BoolType,
    ChannelType,
    FunctionType,
    INT,
    IntType,
    PointerType,
    Type,
    VOID,
    VoidType,
    common_type,
    is_assignable,
    make_int,
)

# Feature names recorded per function; flows use these to enforce each
# historical tool's documented restrictions.
FEATURE_POINTERS = "pointers"
FEATURE_CHANNELS = "channels"
FEATURE_PAR = "par"
FEATURE_WAIT = "wait"
FEATURE_DELAY = "delay"
FEATURE_WITHIN = "within"
FEATURE_ARRAYS = "arrays"
FEATURE_LOOPS = "loops"
FEATURE_CALLS = "calls"
FEATURE_RECURSION = "recursion"
FEATURE_DIVISION = "division"
FEATURE_MULTIPLY = "multiply"


@dataclass
class FunctionInfo:
    """Facts the analyzer gathered about one function."""

    symbol: Symbol
    params: List[Symbol] = field(default_factory=list)
    locals: List[Symbol] = field(default_factory=list)
    features: Set[str] = field(default_factory=set)
    callees: Set[str] = field(default_factory=set)
    # First source site where each feature was used (diagnostics point here).
    feature_sites: Dict[str, SourceLocation] = field(default_factory=dict)

    def note(self, feature: str, location: SourceLocation) -> None:
        """Record a feature use and remember its first source site."""
        self.features.add(feature)
        if location != UNKNOWN_LOCATION:
            self.feature_sites.setdefault(feature, location)


@dataclass
class SemanticInfo:
    """The analyzer's summary of a whole program."""

    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    globals: List[Symbol] = field(default_factory=list)
    channels: List[Symbol] = field(default_factory=list)
    global_inits: Dict[str, object] = field(default_factory=dict)

    def features_of(self, root: str) -> Set[str]:
        """Union of features used by ``root`` and everything it calls
        (transitively), so a flow can judge an entire design."""
        seen: Set[str] = set()
        features: Set[str] = set()
        work = [root]
        while work:
            name = work.pop()
            if name in seen or name not in self.functions:
                continue
            seen.add(name)
            info = self.functions[name]
            features |= info.features
            work.extend(info.callees)
        return features

    def feature_site(self, root: str, feature: str) -> SourceLocation:
        """First recorded source site of ``feature`` in ``root`` or any
        function it reaches (breadth-first, so the nearest use wins)."""
        seen: Set[str] = set()
        work = [root]
        while work:
            name = work.pop(0)
            if name in seen or name not in self.functions:
                continue
            seen.add(name)
            info = self.functions[name]
            if feature in info.feature_sites:
                return info.feature_sites[feature]
            work.extend(sorted(info.callees))
        return UNKNOWN_LOCATION

    def is_recursive(self, root: str) -> bool:
        """Whether any call cycle is reachable from ``root``."""
        # Iterative DFS with an explicit on-path set (colors).
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[str, int] = {}

        def visit(name: str) -> bool:
            stack: List[Tuple[str, int]] = [(name, 0)]
            while stack:
                node, state = stack.pop()
                if state == 0:
                    if color.get(node) == GRAY:
                        return True
                    if color.get(node) == BLACK or node not in self.functions:
                        continue
                    color[node] = GRAY
                    stack.append((node, 1))
                    for callee in sorted(self.functions[node].callees):
                        if color.get(callee) == GRAY:
                            return True
                        if color.get(callee, WHITE) == WHITE:
                            stack.append((callee, 0))
                else:
                    color[node] = BLACK
            return False

        return visit(root)


class SemanticAnalyzer:
    def __init__(self, program: ast.Program):
        self.program = program
        self.scopes = ScopeStack()
        self.info = SemanticInfo()
        self._current: Optional[FunctionInfo] = None
        self._loop_depth = 0
        self._within_depth = 0

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def analyze(self) -> SemanticInfo:
        self._declare_globals()
        for fn in self.program.functions:
            self._declare_function(fn)
        for fn in self.program.functions:
            self._check_function(fn)
        return self.info

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def _declare_globals(self) -> None:
        for decl in self.program.globals:
            symbol = Symbol(
                decl.name,
                decl.var_type,
                SymbolKind.GLOBAL,
                is_const=decl.is_const,
                location=decl.location,
            )
            self.scopes.declare(symbol)
            decl.symbol = symbol  # type: ignore[attr-defined]
            self.info.globals.append(symbol)
            self._check_global_init(decl)
        for chan in self.program.channels:
            symbol = Symbol(
                chan.name,
                ChannelType(chan.element_type),
                SymbolKind.CHANNEL,
                location=chan.location,
            )
            self.scopes.declare(symbol)
            chan.symbol = symbol  # type: ignore[attr-defined]
            self.info.channels.append(symbol)

    def _check_global_init(self, decl: ast.VarDecl) -> None:
        if isinstance(decl.var_type, ArrayType) and isinstance(
            decl.var_type.element, ArrayType
        ):
            raise SemanticError(
                f"multi-dimensional array {decl.name!r} is not supported;"
                " flatten it (hardware memories are one-dimensional)",
                decl.location,
            )
        if isinstance(decl.var_type, ArrayType):
            if decl.init is not None:
                raise SemanticError(
                    f"array {decl.name!r} needs a brace initializer", decl.location
                )
            if decl.array_init is not None:
                if len(decl.array_init) > decl.var_type.size:
                    raise SemanticError(
                        f"too many initializers for {decl.name!r}"
                        f" ({len(decl.array_init)} > {decl.var_type.size})",
                        decl.location,
                    )
                values = [self._const_eval(e) for e in decl.array_init]
                self.info.global_inits[decl.name] = values
        elif decl.init is not None:
            self.info.global_inits[decl.name] = self._const_eval(decl.init)
        elif decl.array_init is not None:
            raise SemanticError(
                f"scalar {decl.name!r} cannot take a brace initializer",
                decl.location,
            )

    def _const_eval(self, expr: ast.Expr) -> int:
        """Evaluate a compile-time-constant expression (global initializers)."""
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.BoolLiteral):
            return int(expr.value)
        if isinstance(expr, ast.UnaryOp):
            value = self._const_eval(expr.operand)
            if expr.op == "-":
                return -value
            if expr.op == "~":
                return ~value
            if expr.op == "!":
                return int(value == 0)
        if isinstance(expr, ast.BinaryOp):
            left = self._const_eval(expr.left)
            right = self._const_eval(expr.right)
            ops = {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "/": lambda: left // right if right else 0,
                "%": lambda: left % right if right else 0,
                "&": lambda: left & right,
                "|": lambda: left | right,
                "^": lambda: left ^ right,
                "<<": lambda: left << right,
                ">>": lambda: left >> right,
            }
            if expr.op in ops:
                return ops[expr.op]()
        raise SemanticError("global initializer is not a constant expression", expr.location)

    def _declare_function(self, fn: ast.FunctionDef) -> None:
        fn_type = FunctionType(
            tuple(p.param_type for p in fn.params), fn.return_type
        )
        symbol = Symbol(fn.name, fn_type, SymbolKind.FUNCTION, location=fn.location)
        self.scopes.declare(symbol)
        fn.symbol = symbol  # type: ignore[attr-defined]
        self.info.functions[fn.name] = FunctionInfo(symbol=symbol)

    # ------------------------------------------------------------------
    # Function bodies
    # ------------------------------------------------------------------

    def _check_function(self, fn: ast.FunctionDef) -> None:
        info = self.info.functions[fn.name]
        self._current = info
        self.scopes.push()
        try:
            for param in fn.params:
                if isinstance(param.param_type, VoidType):
                    raise SemanticError(
                        f"parameter {param.name!r} cannot be void", param.location
                    )
                symbol = Symbol(
                    param.name,
                    param.param_type,
                    SymbolKind.PARAM
                    if not isinstance(param.param_type, ChannelType)
                    else SymbolKind.CHANNEL,
                    location=param.location,
                )
                self.scopes.declare(symbol)
                param.symbol = symbol  # type: ignore[attr-defined]
                info.params.append(symbol)
                if isinstance(param.param_type, PointerType):
                    info.note(FEATURE_POINTERS, param.location)
                if isinstance(param.param_type, ArrayType):
                    info.note(FEATURE_ARRAYS, param.location)
            self._check_block(fn.body, fn.return_type, new_scope=False)
        finally:
            self.scopes.pop()
            self._current = None

    def _check_block(
        self, block: ast.Block, return_type: Type, new_scope: bool = True
    ) -> None:
        if new_scope:
            self.scopes.push()
        try:
            for stmt in block.statements:
                self._check_stmt(stmt, return_type)
        finally:
            if new_scope:
                self.scopes.pop()

    def _check_stmt(self, stmt: ast.Stmt, return_type: Type) -> None:
        assert self._current is not None
        info = self._current
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, return_type)
        elif isinstance(stmt, ast.VarDecl):
            self._check_local_decl(stmt)
        elif isinstance(stmt, ast.ChannelDecl):
            raise SemanticError(
                "channels must be declared at the top level", stmt.location
            )
        elif isinstance(stmt, ast.Assign):
            self._check_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._require_scalar(self._check_expr(stmt.cond), stmt.cond)
            self._check_stmt(stmt.then, return_type)
            if stmt.otherwise is not None:
                self._check_stmt(stmt.otherwise, return_type)
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            info.note(FEATURE_LOOPS, stmt.location)
            self._require_scalar(self._check_expr(stmt.cond), stmt.cond)
            self._loop_depth += 1
            self._check_stmt(stmt.body, return_type)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.For):
            info.note(FEATURE_LOOPS, stmt.location)
            self.scopes.push()
            try:
                if stmt.init is not None:
                    self._check_stmt(stmt.init, return_type)
                if stmt.cond is not None:
                    self._require_scalar(self._check_expr(stmt.cond), stmt.cond)
                if stmt.step is not None:
                    self._check_stmt(stmt.step, return_type)
                self._loop_depth += 1
                self._check_stmt(stmt.body, return_type)
                self._loop_depth -= 1
            finally:
                self.scopes.pop()
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                if not isinstance(return_type, VoidType):
                    raise SemanticError(
                        f"function returns {return_type} but return has no value",
                        stmt.location,
                    )
            else:
                if isinstance(return_type, VoidType):
                    raise SemanticError(
                        "void function cannot return a value", stmt.location
                    )
                value_type = self._check_expr(stmt.value)
                if not is_assignable(return_type, value_type):
                    raise SemanticError(
                        f"cannot return {value_type} from a function returning"
                        f" {return_type}",
                        stmt.location,
                    )
        elif isinstance(stmt, ast.Break):
            if self._loop_depth == 0:
                raise SemanticError("break outside of a loop", stmt.location)
        elif isinstance(stmt, ast.Continue):
            if self._loop_depth == 0:
                raise SemanticError("continue outside of a loop", stmt.location)
        elif isinstance(stmt, ast.Par):
            info.note(FEATURE_PAR, stmt.location)
            self._check_par(stmt, return_type)
        elif isinstance(stmt, ast.Seq):
            self._check_block(stmt.body, return_type)
        elif isinstance(stmt, ast.Wait):
            info.note(FEATURE_WAIT, stmt.location)
        elif isinstance(stmt, ast.Delay):
            info.note(FEATURE_DELAY, stmt.location)
            if stmt.cycles < 0:
                raise SemanticError("delay count must be non-negative", stmt.location)
        elif isinstance(stmt, ast.Within):
            info.note(FEATURE_WITHIN, stmt.location)
            if stmt.cycles <= 0:
                raise SemanticError("within bound must be positive", stmt.location)
            if self._within_depth > 0:
                raise SemanticError("within blocks cannot nest", stmt.location)
            for inner in ast.walk_stmts(stmt.body):
                if not isinstance(
                    inner,
                    (ast.Block, ast.VarDecl, ast.Assign, ast.ExprStmt,
                     ast.Send, ast.Wait, ast.Delay),
                ):
                    raise SemanticError(
                        "within blocks must be straight-line code"
                        " (HardwareC-style constraints apply to statement"
                        " groups, not control flow)",
                        inner.location,
                    )
            self._within_depth += 1
            self._check_block(stmt.body, return_type)
            self._within_depth -= 1
        elif isinstance(stmt, ast.Send):
            info.note(FEATURE_CHANNELS, stmt.location)
            channel = self._resolve_channel(stmt.channel, stmt)
            stmt.symbol = channel  # type: ignore[attr-defined]
            value_type = self._check_expr(stmt.value)
            assert isinstance(channel.type, ChannelType)
            if not is_assignable(channel.type.element, value_type):
                raise SemanticError(
                    f"cannot send {value_type} on {channel.type}", stmt.location
                )
        else:
            raise SemanticError(
                f"unsupported statement {type(stmt).__name__}", stmt.location
            )

    def _check_local_decl(self, decl: ast.VarDecl) -> None:
        assert self._current is not None
        if isinstance(decl.var_type, VoidType):
            raise SemanticError(f"variable {decl.name!r} cannot be void", decl.location)
        if isinstance(decl.var_type, ArrayType) and isinstance(
            decl.var_type.element, ArrayType
        ):
            raise SemanticError(
                f"multi-dimensional array {decl.name!r} is not supported;"
                " flatten it (hardware memories are one-dimensional)",
                decl.location,
            )
        symbol = Symbol(
            decl.name,
            decl.var_type,
            SymbolKind.LOCAL,
            is_const=decl.is_const,
            location=decl.location,
        )
        self.scopes.declare(symbol)
        decl.symbol = symbol  # type: ignore[attr-defined]
        self._current.locals.append(symbol)
        if isinstance(decl.var_type, PointerType):
            self._current.note(FEATURE_POINTERS, decl.location)
        if isinstance(decl.var_type, ArrayType):
            self._current.note(FEATURE_ARRAYS, decl.location)
        if isinstance(decl.var_type, ArrayType):
            if decl.init is not None:
                raise SemanticError(
                    f"array {decl.name!r} needs a brace initializer", decl.location
                )
            if decl.array_init is not None:
                if len(decl.array_init) > decl.var_type.size:
                    raise SemanticError(
                        f"too many initializers for {decl.name!r}", decl.location
                    )
                for expr in decl.array_init:
                    element_type = self._check_expr(expr)
                    if not is_assignable(decl.var_type.element, element_type):
                        raise SemanticError(
                            f"cannot initialize {decl.var_type.element} element"
                            f" with {element_type}",
                            expr.location,
                        )
        else:
            if decl.array_init is not None:
                raise SemanticError(
                    f"scalar {decl.name!r} cannot take a brace initializer",
                    decl.location,
                )
            if decl.init is not None:
                init_type = self._check_expr(decl.init)
                if not is_assignable(decl.var_type, init_type):
                    raise SemanticError(
                        f"cannot initialize {decl.var_type} with {init_type}",
                        decl.location,
                    )
            elif decl.is_const:
                raise SemanticError(
                    f"const {decl.name!r} must be initialized", decl.location
                )

    def _check_assign(self, assign: ast.Assign) -> None:
        target_type = self._check_expr(assign.target)
        if not ast.is_lvalue(assign.target):
            raise SemanticError("assignment target is not an lvalue", assign.location)
        if isinstance(assign.target, ast.Identifier):
            symbol = assign.target.symbol  # type: ignore[attr-defined]
            if symbol.is_const:
                raise SemanticError(
                    f"cannot assign to const {symbol.name!r}", assign.location
                )
            if isinstance(symbol.type, ArrayType):
                raise SemanticError(
                    f"cannot assign whole array {symbol.name!r}", assign.location
                )
        value_type = self._check_expr(assign.value)
        if not is_assignable(target_type, value_type):
            raise SemanticError(
                f"cannot assign {value_type} to {target_type}", assign.location
            )

    def _check_par(self, par: ast.Par, return_type: Type) -> None:
        # Branches run concurrently; two branches writing the same variable
        # is a race, which we reject statically (as Handel-C's rules do).
        writes_per_branch: List[Set[str]] = []
        for branch in par.branches:
            self._check_stmt(branch, return_type)
            writes: Set[str] = set()
            for inner in ast.walk_stmts(branch):
                if isinstance(inner, ast.Assign):
                    root = inner.target
                    while isinstance(root, (ast.ArrayIndex, ast.UnaryOp)):
                        root = (
                            root.base
                            if isinstance(root, ast.ArrayIndex)
                            else root.operand
                        )
                    if isinstance(root, ast.Identifier):
                        writes.add(root.symbol.unique_name)  # type: ignore[attr-defined]
                elif isinstance(inner, ast.VarDecl):
                    writes.add(inner.symbol.unique_name)  # type: ignore[attr-defined]
            writes_per_branch.append(writes)
        for i in range(len(writes_per_branch)):
            for j in range(i + 1, len(writes_per_branch)):
                conflict = writes_per_branch[i] & writes_per_branch[j]
                if conflict:
                    name = sorted(conflict)[0].split(".")[0]
                    raise SemanticError(
                        f"par branches {i} and {j} both write {name!r}"
                        " (write-write race)",
                        par.location,
                    )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _resolve_channel(self, name: str, node: ast.Node) -> Symbol:
        symbol = self.scopes.lookup(name)
        if symbol is None:
            raise SemanticError(f"unknown channel {name!r}", node.location)
        if not isinstance(symbol.type, ChannelType):
            raise SemanticError(f"{name!r} is not a channel", node.location)
        return symbol

    def _require_scalar(self, value_type: Type, expr: ast.Expr) -> None:
        if not value_type.is_scalar():
            raise SemanticError(
                f"expected a scalar value, found {value_type}", expr.location
            )

    def _check_expr(self, expr: ast.Expr) -> Type:
        result = self._infer(expr)
        expr.type = result
        return result

    def _infer(self, expr: ast.Expr) -> Type:
        assert self._current is not None
        info = self._current
        if isinstance(expr, ast.IntLiteral):
            return INT
        if isinstance(expr, ast.BoolLiteral):
            return BOOL
        if isinstance(expr, ast.Identifier):
            symbol = self.scopes.lookup(expr.name)
            if symbol is None:
                raise SemanticError(f"unknown identifier {expr.name!r}", expr.location)
            if symbol.kind is SymbolKind.FUNCTION:
                raise SemanticError(
                    f"function {expr.name!r} used as a value", expr.location
                )
            expr.symbol = symbol  # type: ignore[attr-defined]
            return symbol.type
        if isinstance(expr, ast.UnaryOp):
            operand_type = self._check_expr(expr.operand)
            if expr.op == "*":
                info.note(FEATURE_POINTERS, expr.location)
                if not isinstance(operand_type, PointerType):
                    raise SemanticError(
                        f"cannot dereference non-pointer {operand_type}", expr.location
                    )
                return operand_type.target
            if expr.op == "&":
                info.note(FEATURE_POINTERS, expr.location)
                if not ast.is_lvalue(expr.operand) and not isinstance(
                    expr.operand, ast.Identifier
                ):
                    raise SemanticError(
                        "cannot take the address of a non-lvalue", expr.location
                    )
                if isinstance(operand_type, ArrayType):
                    return PointerType(operand_type.element)
                return PointerType(operand_type)
            if expr.op == "!":
                self._require_scalar(operand_type, expr.operand)
                return BOOL
            if expr.op in ("-", "~"):
                if not isinstance(operand_type, (IntType, BoolType)):
                    raise SemanticError(
                        f"cannot apply {expr.op!r} to {operand_type}", expr.location
                    )
                if isinstance(operand_type, BoolType):
                    return INT
                return operand_type
            raise SemanticError(f"unknown unary operator {expr.op!r}", expr.location)
        if isinstance(expr, ast.BinaryOp):
            left = self._check_expr(expr.left)
            right = self._check_expr(expr.right)
            if expr.op in ("&&", "||"):
                self._require_scalar(left, expr.left)
                self._require_scalar(right, expr.right)
                return BOOL
            if expr.op in ("==", "!=", "<", "<=", ">", ">="):
                if common_type(left, right) is None:
                    raise SemanticError(
                        f"cannot compare {left} with {right}", expr.location
                    )
                return BOOL
            if expr.op in ("/", "%"):
                info.note(FEATURE_DIVISION, expr.location)
            if expr.op == "*":
                info.note(FEATURE_MULTIPLY, expr.location)
            if expr.op in ("<<", ">>"):
                if not isinstance(left, (IntType, BoolType)) or not isinstance(
                    right, (IntType, BoolType)
                ):
                    raise SemanticError(
                        f"cannot shift {left} by {right}", expr.location
                    )
                return left if isinstance(left, IntType) else INT
            combined = common_type(left, right)
            if combined is None:
                raise SemanticError(
                    f"operator {expr.op!r} cannot combine {left} and {right}",
                    expr.location,
                )
            if isinstance(combined, PointerType):
                info.note(FEATURE_POINTERS, expr.location)
            return combined
        if isinstance(expr, ast.Conditional):
            self._require_scalar(self._check_expr(expr.cond), expr.cond)
            then_type = self._check_expr(expr.then)
            else_type = self._check_expr(expr.otherwise)
            combined = common_type(then_type, else_type)
            if combined is None:
                raise SemanticError(
                    f"conditional arms have incompatible types"
                    f" {then_type} and {else_type}",
                    expr.location,
                )
            return combined
        if isinstance(expr, ast.ArrayIndex):
            base_type = self._check_expr(expr.base)
            index_type = self._check_expr(expr.index)
            self._require_scalar(index_type, expr.index)
            info.note(FEATURE_ARRAYS, expr.location)
            if isinstance(base_type, ArrayType):
                return base_type.element
            if isinstance(base_type, PointerType):
                info.note(FEATURE_POINTERS, expr.location)
                return base_type.target
            raise SemanticError(f"cannot index into {base_type}", expr.location)
        if isinstance(expr, ast.Call):
            symbol = self.scopes.lookup(expr.callee)
            if symbol is None or symbol.kind is not SymbolKind.FUNCTION:
                raise SemanticError(f"unknown function {expr.callee!r}", expr.location)
            expr.symbol = symbol  # type: ignore[attr-defined]
            fn_type = symbol.type
            assert isinstance(fn_type, FunctionType)
            if len(expr.args) != len(fn_type.params):
                raise SemanticError(
                    f"{expr.callee!r} expects {len(fn_type.params)} arguments,"
                    f" got {len(expr.args)}",
                    expr.location,
                )
            for arg, param_type in zip(expr.args, fn_type.params):
                arg_type = self._check_expr(arg)
                if isinstance(param_type, ArrayType):
                    if arg_type != param_type:
                        raise SemanticError(
                            f"array argument type {arg_type} does not match"
                            f" parameter type {param_type}",
                            arg.location,
                        )
                elif not is_assignable(param_type, arg_type):
                    raise SemanticError(
                        f"argument of type {arg_type} does not match parameter"
                        f" of type {param_type}",
                        arg.location,
                    )
            info.note(FEATURE_CALLS, expr.location)
            info.callees.add(expr.callee)
            return fn_type.result
        if isinstance(expr, ast.Receive):
            info.note(FEATURE_CHANNELS, expr.location)
            channel = self._resolve_channel(expr.channel, expr)
            expr.symbol = channel  # type: ignore[attr-defined]
            assert isinstance(channel.type, ChannelType)
            return channel.type.element
        raise SemanticError(f"unsupported expression {type(expr).__name__}", expr.location)


def analyze(program: ast.Program) -> SemanticInfo:
    """Run semantic analysis over a parsed program, annotating it in place."""
    info = SemanticAnalyzer(program).analyze()
    # Record recursion as a whole-program feature on each function that
    # participates in or reaches a cycle.
    for name in info.functions:
        if info.is_recursive(name):
            fn_info = info.functions[name]
            fn_info.note(FEATURE_RECURSION, fn_info.symbol.location)
    return info
