"""Pretty-printer: turns an AST back into compilable source text.

Used for golden tests (parse → print → parse must be a fixed point), for
emitting the recoded program variants the timing experiments generate, and
for debugging transformed programs.
"""

from __future__ import annotations

from typing import List

from . import ast_nodes as ast

_INDENT = "    "


def _expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.IntLiteral):
        return str(expr.value)
    if isinstance(expr, ast.BoolLiteral):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.UnaryOp):
        return f"{expr.op}({_expr(expr.operand)})"
    if isinstance(expr, ast.BinaryOp):
        return f"({_expr(expr.left)} {expr.op} {_expr(expr.right)})"
    if isinstance(expr, ast.Conditional):
        return f"({_expr(expr.cond)} ? {_expr(expr.then)} : {_expr(expr.otherwise)})"
    if isinstance(expr, ast.ArrayIndex):
        return f"{_expr(expr.base)}[{_expr(expr.index)}]"
    if isinstance(expr, ast.Call):
        args = ", ".join(_expr(a) for a in expr.args)
        return f"{expr.callee}({args})"
    if isinstance(expr, ast.Receive):
        return f"recv({expr.channel})"
    raise TypeError(f"cannot print expression {type(expr).__name__}")


def _stmt(stmt: ast.Stmt, indent: int, out: List[str]) -> None:
    pad = _INDENT * indent
    if isinstance(stmt, ast.Block):
        out.append(pad + "{")
        for child in stmt.statements:
            _stmt(child, indent + 1, out)
        out.append(pad + "}")
    elif isinstance(stmt, ast.VarDecl):
        text = f"{pad}{'const ' if stmt.is_const else ''}{stmt.var_type} {stmt.name}"
        # ArrayType prints as "elem[N]"; declarations need "elem name[N]".
        from .types import ArrayType

        if isinstance(stmt.var_type, ArrayType):
            dims = ""
            base = stmt.var_type
            while isinstance(base, ArrayType):
                dims += f"[{base.size}]"
                base = base.element
            text = f"{pad}{'const ' if stmt.is_const else ''}{base} {stmt.name}{dims}"
        if stmt.init is not None:
            text += f" = {_expr(stmt.init)}"
        elif stmt.array_init is not None:
            text += " = {" + ", ".join(_expr(e) for e in stmt.array_init) + "}"
        out.append(text + ";")
    elif isinstance(stmt, ast.ChannelDecl):
        out.append(f"{pad}chan<{stmt.element_type}> {stmt.name};")
    elif isinstance(stmt, ast.Assign):
        out.append(f"{pad}{_expr(stmt.target)} = {_expr(stmt.value)};")
    elif isinstance(stmt, ast.ExprStmt):
        out.append(f"{pad}{_expr(stmt.expr)};")
    elif isinstance(stmt, ast.If):
        out.append(f"{pad}if ({_expr(stmt.cond)})")
        _stmt_as_block(stmt.then, indent, out)
        if stmt.otherwise is not None:
            out.append(f"{pad}else")
            _stmt_as_block(stmt.otherwise, indent, out)
    elif isinstance(stmt, ast.While):
        out.append(f"{pad}while ({_expr(stmt.cond)})")
        _stmt_as_block(stmt.body, indent, out)
    elif isinstance(stmt, ast.DoWhile):
        out.append(f"{pad}do")
        _stmt_as_block(stmt.body, indent, out)
        out.append(f"{pad}while ({_expr(stmt.cond)});")
    elif isinstance(stmt, ast.For):
        init = ""
        if isinstance(stmt.init, ast.VarDecl):
            fragment: List[str] = []
            _stmt(stmt.init, 0, fragment)
            init = fragment[0].rstrip(";")
        elif isinstance(stmt.init, ast.Assign):
            init = f"{_expr(stmt.init.target)} = {_expr(stmt.init.value)}"
        elif isinstance(stmt.init, ast.ExprStmt):
            init = _expr(stmt.init.expr)
        cond = _expr(stmt.cond) if stmt.cond is not None else ""
        step = ""
        if isinstance(stmt.step, ast.Assign):
            step = f"{_expr(stmt.step.target)} = {_expr(stmt.step.value)}"
        elif isinstance(stmt.step, ast.ExprStmt):
            step = _expr(stmt.step.expr)
        out.append(f"{pad}for ({init}; {cond}; {step})")
        _stmt_as_block(stmt.body, indent, out)
    elif isinstance(stmt, ast.Return):
        if stmt.value is None:
            out.append(f"{pad}return;")
        else:
            out.append(f"{pad}return {_expr(stmt.value)};")
    elif isinstance(stmt, ast.Break):
        out.append(f"{pad}break;")
    elif isinstance(stmt, ast.Continue):
        out.append(f"{pad}continue;")
    elif isinstance(stmt, ast.Par):
        out.append(f"{pad}par {{")
        for branch in stmt.branches:
            _stmt(branch, indent + 1, out)
        out.append(f"{pad}}}")
    elif isinstance(stmt, ast.Seq):
        out.append(f"{pad}seq")
        _stmt(stmt.body, indent, out)
    elif isinstance(stmt, ast.Wait):
        out.append(f"{pad}wait();")
    elif isinstance(stmt, ast.Delay):
        out.append(f"{pad}delay({stmt.cycles});")
    elif isinstance(stmt, ast.Within):
        out.append(f"{pad}within ({stmt.cycles})")
        _stmt(stmt.body, indent, out)
    elif isinstance(stmt, ast.Send):
        out.append(f"{pad}send({stmt.channel}, {_expr(stmt.value)});")
    else:
        raise TypeError(f"cannot print statement {type(stmt).__name__}")


def _stmt_as_block(stmt: ast.Stmt, indent: int, out: List[str]) -> None:
    """Print a statement that syntactically follows if/while/for; blocks
    print braces at the parent's indent, everything else indents one level."""
    if isinstance(stmt, ast.Block):
        _stmt(stmt, indent, out)
    else:
        _stmt(stmt, indent + 1, out)


def _param(param: ast.Param) -> str:
    from .types import ArrayType, ChannelType

    if isinstance(param.param_type, ChannelType):
        return f"chan<{param.param_type.element}> {param.name}"
    if isinstance(param.param_type, ArrayType):
        dims = ""
        base = param.param_type
        while isinstance(base, ArrayType):
            dims += f"[{base.size}]"
            base = base.element
        return f"{base} {param.name}{dims}"
    return f"{param.param_type} {param.name}"


def print_program(program: ast.Program) -> str:
    """Render a full translation unit."""
    out: List[str] = []
    for chan in program.channels:
        out.append(f"chan<{chan.element_type}> {chan.name};")
    for decl in program.globals:
        _stmt(decl, 0, out)
    if out:
        out.append("")
    for fn in program.functions:
        params = ", ".join(_param(p) for p in fn.params)
        prefix = "process " if fn.is_process else ""
        out.append(f"{prefix}{fn.return_type} {fn.name}({params})")
        _stmt(fn.body, 0, out)
        out.append("")
    return "\n".join(out).rstrip() + "\n"
