"""Error types raised by the frontend.

All frontend errors carry a source location so that messages point at the
offending token rather than at the compiler internals.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A (line, column) position in a source buffer.

    Lines and columns are 1-based, matching what editors display.
    ``filename`` defaults to ``"<input>"`` for programs compiled from
    strings, which is the common case in tests and benchmarks.
    """

    line: int
    column: int
    filename: str = "<input>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


UNKNOWN_LOCATION = SourceLocation(0, 0, "<unknown>")


class FrontendError(Exception):
    """Base class for all errors produced while processing source text."""

    def __init__(self, message: str, location: SourceLocation = UNKNOWN_LOCATION):
        super().__init__(f"{location}: {message}")
        self.message = message
        self.location = location


class LexError(FrontendError):
    """An unrecognizable character sequence in the input."""


class ParseError(FrontendError):
    """A token sequence that does not match the grammar."""


class SemanticError(FrontendError):
    """A well-formed program that violates typing or usage rules."""


class InterpError(Exception):
    """A runtime error in the golden-model interpreter (e.g. division by
    zero, out-of-bounds array access, or exceeding a step budget)."""
