"""The type system of the C-like input language.

The language deliberately mirrors the fault line the paper identifies: plain C
offers only a handful of machine-word types, while hardware wants arbitrary
bit vectors.  We therefore support both the classic C names (``int``,
``char``, ``bool``) and explicit-width integers (``int12``, ``uint5``), plus
arrays, pointers (for the C2Verilog flow), and CSP-style channels (for the
Handel-C / Bach C flows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


class Type:
    """Base class for all types.  Types are immutable value objects."""

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == getattr(other, "__dict__", None)

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))

    @property
    def bit_width(self) -> int:
        """Number of bits a value of this type occupies in hardware."""
        raise NotImplementedError

    def is_scalar(self) -> bool:
        return False


@dataclass(frozen=True, eq=False)
class VoidType(Type):
    """The type of functions that return nothing."""

    @property
    def bit_width(self) -> int:
        return 0

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True, eq=False)
class BoolType(Type):
    """A single-bit truth value (C99 ``_Bool`` / our ``bool``)."""

    @property
    def bit_width(self) -> int:
        return 1

    def is_scalar(self) -> bool:
        return True

    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True, eq=False)
class IntType(Type):
    """A fixed-width two's-complement or unsigned integer.

    ``int`` is IntType(32, signed=True); ``uint7`` is IntType(7, signed=False).
    Widths from 1 to 128 bits are accepted; hardware rarely wants more, and
    the bound keeps the interpreter's masking arithmetic honest.
    """

    width: int
    signed: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.width <= 128:
            raise ValueError(f"integer width {self.width} out of range 1..128")

    @property
    def bit_width(self) -> int:
        return self.width

    def is_scalar(self) -> bool:
        return True

    @property
    def min_value(self) -> int:
        return -(1 << (self.width - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        return (1 << (self.width - 1)) - 1 if self.signed else (1 << self.width) - 1

    def wrap(self, value: int) -> int:
        """Reduce ``value`` modulo 2**width into this type's range.

        This is the single place where the language's machine arithmetic is
        defined; the interpreter, the FSMD simulator, and the dataflow
        simulator all call it so that every backend agrees bit-for-bit.
        """
        masked = value & ((1 << self.width) - 1)
        if self.signed and masked >= (1 << (self.width - 1)):
            masked -= 1 << self.width
        return masked

    def __str__(self) -> str:
        if self.width == 32 and self.signed:
            return "int"
        return f"{'int' if self.signed else 'uint'}{self.width}"


@dataclass(frozen=True, eq=False)
class ArrayType(Type):
    """A statically sized array.  Arrays map to hardware memories."""

    element: Type
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"array size {self.size} must be positive")

    @property
    def bit_width(self) -> int:
        return self.element.bit_width * self.size

    def __str__(self) -> str:
        return f"{self.element}[{self.size}]"


@dataclass(frozen=True, eq=False)
class PointerType(Type):
    """A pointer.  Supported only by flows that model C2Verilog's breadth;
    other flows reject programs containing pointers, exactly as the
    corresponding historical tools did."""

    target: Type

    @property
    def bit_width(self) -> int:
        # Pointers into our memory model are word addresses.
        return 32

    def is_scalar(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.target}*"


@dataclass(frozen=True, eq=False)
class ChannelType(Type):
    """A CSP rendezvous channel carrying values of ``element`` type
    (Handel-C ``chan``, Bach C communication)."""

    element: Type

    @property
    def bit_width(self) -> int:
        return self.element.bit_width

    def __str__(self) -> str:
        return f"chan<{self.element}>"


@dataclass(frozen=True, eq=False)
class FunctionType(Type):
    """The type of a function: parameter types plus a return type."""

    params: Tuple[Type, ...]
    result: Type

    @property
    def bit_width(self) -> int:
        return 0

    def __str__(self) -> str:
        args = ", ".join(str(p) for p in self.params)
        return f"{self.result}({args})"


# Canonical singletons for the common cases.
VOID = VoidType()
BOOL = BoolType()
INT = IntType(32, signed=True)
UINT = IntType(32, signed=False)
CHAR = IntType(8, signed=True)


def make_int(width: int, signed: bool) -> IntType:
    """Construct (or reuse) an integer type of the given shape."""
    if width == 32:
        return INT if signed else UINT
    if width == 8 and signed:
        return CHAR
    return IntType(width, signed)


def common_type(a: Type, b: Type) -> Optional[Type]:
    """The usual arithmetic conversion for a binary operator.

    Returns None when the operands cannot be combined.  Rules are a
    simplified version of C's: bools promote to int; the wider width wins;
    unsigned wins ties, mirroring C's value-preserving promotions closely
    enough for hardware kernels.
    """
    if isinstance(a, BoolType):
        a = make_int(1, False)
    if isinstance(b, BoolType):
        b = make_int(1, False)
    if isinstance(a, PointerType) and isinstance(b, IntType):
        return a
    if isinstance(b, PointerType) and isinstance(a, IntType):
        return b
    if isinstance(a, PointerType) and isinstance(b, PointerType):
        return a if a == b else None
    if not isinstance(a, IntType) or not isinstance(b, IntType):
        return None
    width = max(a.width, b.width)
    signed = a.signed and b.signed
    return make_int(width, signed)


def is_assignable(dst: Type, src: Type) -> bool:
    """Whether a value of type ``src`` may be stored into ``dst``.

    Integer narrowing is permitted (hardware code resizes constantly); the
    interpreter and simulators wrap on store, so narrowing is well defined.
    """
    if isinstance(dst, (IntType, BoolType)) and isinstance(src, (IntType, BoolType)):
        return True
    if isinstance(dst, PointerType) and isinstance(src, PointerType):
        return dst.target == src.target
    return dst == src
