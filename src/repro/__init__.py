"""repro — a C-like hardware synthesis framework.

This package reproduces Stephen A. Edwards, *The Challenges of Hardware
Synthesis from C-like Languages* (DATE 2005), as an executable system: a
shared C-like frontend and IR, classic high-level-synthesis scheduling and
binding, RTL-level artifacts with cycle-accurate simulators, and one
synthesis *flow* per language the paper surveys (Cones, HardwareC,
Transmogrifier C, SystemC, Ocapi, C2Verilog, Cyber, Handel-C, SpecC,
Bach C, CASH).

Quickstart::

    from repro import SynthesisOptions, synthesize
    result = synthesize("int main() { return 2 + 3; }",
                        SynthesisOptions(flow="handelc"))
    run = result.run()
    print(run.value, run.cycles)

Pass ``SynthesisOptions(..., trace=True)`` to record a per-phase trace of
the whole pipeline (``result.trace.write_chrome("out.json")`` opens in
Perfetto); see :mod:`repro.trace`.
"""

from __future__ import annotations

__version__ = "1.0.0"

from .lang import parse  # noqa: F401


def synthesize(source, options=None, trace=None, **overrides):
    """Parse, check, and compile ``source`` under one
    :class:`~repro.api.SynthesisOptions` set; returns a
    :class:`~repro.api.SynthesisResult`.  See :mod:`repro.api`."""
    from .api import synthesize as _synthesize

    return _synthesize(source, options, trace=trace, **overrides)


def __getattr__(name):
    # Lazy so `import repro` stays cheap; these are classes, not functions,
    # so they cannot wrap a deferred import the way synthesize() does.
    if name in ("SynthesisOptions", "SynthesisResult"):
        from . import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def compile_flow(source, flow="c2verilog", function="main", **options):
    """Deprecated: use :func:`synthesize`.  Compiles ``source`` with the
    named flow; returns a CompiledDesign.  See :mod:`repro.flows`."""
    from .flows import compile_flow as _compile_flow

    return _compile_flow(source, flow=flow, function=function, **options)


def run_flow(source, args=(), flow="c2verilog", function="main", **options):
    """Deprecated: use :func:`synthesize` and ``.run()``.  Compiles and
    simulates in one call; returns a FlowResult.  See :mod:`repro.flows`."""
    from .flows import run_flow as _run_flow

    return _run_flow(source, args=args, flow=flow, function=function, **options)


__all__ = [
    "SynthesisOptions",
    "SynthesisResult",
    "compile_flow",
    "parse",
    "run_flow",
    "synthesize",
    "__version__",
]
