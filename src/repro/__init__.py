"""repro — a C-like hardware synthesis framework.

This package reproduces Stephen A. Edwards, *The Challenges of Hardware
Synthesis from C-like Languages* (DATE 2005), as an executable system: a
shared C-like frontend and IR, classic high-level-synthesis scheduling and
binding, RTL-level artifacts with cycle-accurate simulators, and one
synthesis *flow* per language the paper surveys (Cones, HardwareC,
Transmogrifier C, SystemC, Ocapi, C2Verilog, Cyber, Handel-C, SpecC,
Bach C, CASH).

Quickstart::

    from repro import compile_flow, run_flow
    result = run_flow("int main() { return 2 + 3; }", flow="handelc")
    print(result.value, result.cycles)
"""

from __future__ import annotations

__version__ = "1.0.0"

from .lang import parse  # noqa: F401


def compile_flow(source, flow="c2verilog", function="main", **options):
    """Compile ``source`` with the named flow; returns a CompiledDesign.
    See :mod:`repro.flows` for the flow registry."""
    from .flows import compile_flow as _compile_flow

    return _compile_flow(source, flow=flow, function=function, **options)


def run_flow(source, args=(), flow="c2verilog", function="main", **options):
    """Compile and simulate in one call; returns a FlowResult with the
    value, cycle count, and cost-model timing.  See :mod:`repro.flows`."""
    from .flows import run_flow as _run_flow

    return _run_flow(source, args=args, flow=flow, function=function, **options)


__all__ = ["compile_flow", "parse", "run_flow", "__version__"]
