"""Intermediate representation: CDFG construction and transformation.

The lowering pipeline every flow shares::

    parse -> inline (passes.inline) -> build_module (builder) ->
    optimize (passes.pipeline) -> schedule -> bind -> FSMD

AST-level transforms live in :mod:`repro.ir.passes` alongside the
CDFG-level ones.
"""

from .astutils import Cloner, fresh_symbol, make_identifier
from .builder import BuildError, build_function, build_module, CDFGBuilder
from .cdfg import (
    BasicBlock,
    FunctionCDFG,
    ModuleCDFG,
    TimingConstraint,
    validate,
)
from .liveness import (
    LivenessInfo,
    block_use_def,
    compute_liveness,
    op_def,
    op_var_uses,
    op_vreg_uses,
)
from .ops import (
    Branch,
    Const,
    Jump,
    Operand,
    Operation,
    OpKind,
    Ret,
    Terminator,
    VReg,
    VarRead,
)

__all__ = [
    "BasicBlock",
    "Branch",
    "BuildError",
    "CDFGBuilder",
    "Cloner",
    "Const",
    "FunctionCDFG",
    "Jump",
    "LivenessInfo",
    "ModuleCDFG",
    "OpKind",
    "Operand",
    "Operation",
    "Ret",
    "Terminator",
    "TimingConstraint",
    "VReg",
    "VarRead",
    "block_use_def",
    "build_function",
    "build_module",
    "compute_liveness",
    "fresh_symbol",
    "make_identifier",
    "op_def",
    "op_var_uses",
    "op_vreg_uses",
    "validate",
]
