"""Intermediate representation: CDFG construction and transformation.

The lowering pipeline every flow shares::

    parse -> inline (passes.inline) -> build_module (builder) ->
    optimize (passes.pipeline) -> schedule -> bind -> FSMD

AST-level transforms live in :mod:`repro.ir.passes` alongside the
CDFG-level ones.
"""

from .astutils import Cloner, fresh_symbol, make_identifier
from .builder import BuildError, build_function, build_module, CDFGBuilder
from .cdfg import (
    BasicBlock,
    FunctionCDFG,
    ModuleCDFG,
    TimingConstraint,
    validate,
)
from .ops import (
    Branch,
    Const,
    Jump,
    Operand,
    Operation,
    OpKind,
    Ret,
    Terminator,
    VReg,
    VarRead,
)

__all__ = [
    "BasicBlock",
    "Branch",
    "BuildError",
    "CDFGBuilder",
    "Cloner",
    "Const",
    "FunctionCDFG",
    "Jump",
    "ModuleCDFG",
    "OpKind",
    "Operand",
    "Operation",
    "Ret",
    "Terminator",
    "TimingConstraint",
    "VReg",
    "VarRead",
    "build_function",
    "build_module",
    "fresh_symbol",
    "make_identifier",
    "validate",
]
