"""IR operations and operands.

A function is lowered into a control/data-flow graph (CDFG): basic blocks of
dataflow operations connected by control-flow terminators.  Operands are:

* :class:`Const` — an immediate;
* :class:`VReg` — a value computed earlier in the *same* block (a wire);
* :class:`VarRead` — the value a scalar variable's register held at *block
  entry* (the builder rewrites intra-block read-after-write into direct VReg
  uses, so VarRead is always the entry value).

Scalar variable updates are collected per block in ``var_writes`` and latch
at block exit, which is exactly the register-transfer semantics the FSMD
backend implements.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..lang.errors import SourceLocation
from ..lang.symtab import Symbol
from ..lang.types import Type


class OpKind(enum.Enum):
    BINARY = "binary"      # attr op: + - * / % & | ^ << >> == != < <= > >= && ||
    UNARY = "unary"        # attr op: - ~ !
    CAST = "cast"          # wrap operand into dest's type (free in hardware)
    SELECT = "select"      # operands: cond, if_true, if_false
    LOAD = "load"          # operands: index; attr array
    STORE = "store"        # operands: index, value; attr array
    CALL = "call"          # operands: args; attr callee
    SEND = "send"          # operands: value; attr channel
    RECV = "recv"          # attr channel
    BARRIER = "barrier"    # wait(): forces a control-step boundary
    DELAY = "delay"        # attr cycles: forces N idle control steps
    NOP = "nop"


@dataclass(frozen=True)
class Const:
    """An immediate operand."""

    value: int
    type: Type

    def __str__(self) -> str:
        return f"#{self.value}"


_vreg_ids = itertools.count()


@dataclass(frozen=True, eq=False)
class VReg:
    """A block-local value (a wire between operations).

    VRegs that a schedule splits across control steps are materialized as
    carrier registers by the binding stage.
    """

    type: Type
    hint: str = ""
    id: int = field(default_factory=lambda: next(_vreg_ids))

    def __str__(self) -> str:
        suffix = f".{self.hint}" if self.hint else ""
        return f"%{self.id}{suffix}"

    def __hash__(self) -> int:
        return self.id

    def __eq__(self, other: object) -> bool:
        return self is other


@dataclass(frozen=True)
class VarRead:
    """The value of a scalar variable's register at block entry."""

    var: Symbol

    @property
    def type(self) -> Type:
        return self.var.type

    def __str__(self) -> str:
        return f"${self.var.unique_name}"


Operand = Union[Const, VReg, VarRead]


_op_ids = itertools.count()


@dataclass(eq=False)
class Operation:
    """One dataflow operation inside a basic block."""

    kind: OpKind
    dest: Optional[VReg] = None
    operands: List[Operand] = field(default_factory=list)
    op: str = ""                      # BINARY/UNARY operator spelling
    array: Optional[Symbol] = None    # LOAD/STORE target memory
    channel: Optional[Symbol] = None  # SEND/RECV channel
    callee: str = ""                  # CALL target
    cycles: int = 0                   # DELAY count
    constraint: Optional[int] = None  # `within` group id, if any
    location: Optional[SourceLocation] = None  # source statement, if known
    id: int = field(default_factory=lambda: next(_op_ids))

    def __hash__(self) -> int:
        return self.id

    @property
    def result_type(self) -> Optional[Type]:
        return self.dest.type if self.dest is not None else None

    def uses(self) -> List[Operand]:
        return list(self.operands)

    def is_memory(self) -> bool:
        return self.kind in (OpKind.LOAD, OpKind.STORE)

    def is_fence(self) -> bool:
        """Fences pin program order: synchronization and timing ops."""
        return self.kind in (OpKind.SEND, OpKind.RECV, OpKind.BARRIER,
                             OpKind.DELAY, OpKind.CALL)

    def has_side_effect(self) -> bool:
        return self.kind in (OpKind.STORE, OpKind.SEND, OpKind.RECV,
                             OpKind.BARRIER, OpKind.DELAY, OpKind.CALL)

    def __str__(self) -> str:
        parts: List[str] = []
        if self.dest is not None:
            parts.append(f"{self.dest} = ")
        name = self.kind.value
        if self.kind is OpKind.BINARY or self.kind is OpKind.UNARY:
            name = self.op
        elif self.kind is OpKind.LOAD:
            name = f"load {self.array.unique_name if self.array else '?'}"
        elif self.kind is OpKind.STORE:
            name = f"store {self.array.unique_name if self.array else '?'}"
        elif self.kind is OpKind.CALL:
            name = f"call {self.callee}"
        elif self.kind in (OpKind.SEND, OpKind.RECV):
            name = f"{self.kind.value} {self.channel.unique_name if self.channel else '?'}"
        elif self.kind is OpKind.DELAY:
            name = f"delay {self.cycles}"
        operand_text = ", ".join(str(o) for o in self.operands)
        suffix = f" [within#{self.constraint}]" if self.constraint is not None else ""
        return "".join(parts) + f"{name}({operand_text})" + suffix


# ---------------------------------------------------------------------------
# Terminators
# ---------------------------------------------------------------------------


@dataclass
class Jump:
    target: "object"  # BasicBlock; typed loosely to avoid a circular import

    def successors(self) -> List["object"]:
        return [self.target]

    def __str__(self) -> str:
        return f"jump {getattr(self.target, 'label', '?')}"


@dataclass
class Branch:
    cond: Operand
    if_true: "object"
    if_false: "object"

    def successors(self) -> List["object"]:
        return [self.if_true, self.if_false]

    def __str__(self) -> str:
        return (
            f"branch {self.cond} ? {getattr(self.if_true, 'label', '?')}"
            f" : {getattr(self.if_false, 'label', '?')}"
        )


@dataclass
class Ret:
    value: Optional[Operand] = None

    def successors(self) -> List["object"]:
        return []

    def __str__(self) -> str:
        return f"ret {self.value}" if self.value is not None else "ret"


Terminator = Union[Jump, Branch, Ret]
