"""Reference executor for CDFGs.

Runs a :class:`~repro.ir.cdfg.FunctionCDFG` with the register-transfer
semantics the FSMD backend implements (register latches at block exit,
memories with word addressing), but without any notion of clock cycles.
It is the bridge in the validation chain::

    interpreter (language semantics)
        == CDFG executor (lowered semantics)       <- this module
        == FSMD simulator (scheduled hardware)
        == dataflow simulator (asynchronous hardware)

Channel operations are delegated to caller-provided callbacks so tests can
script a rendezvous partner; designs without channels need none.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..interp.machine import eval_binary, eval_unary, wrap
from ..lang.errors import InterpError
from ..lang.symtab import Symbol
from ..lang.types import ArrayType
from .cdfg import BasicBlock, FunctionCDFG
from .ops import Branch, Const, Jump, Operand, Operation, OpKind, Ret, VReg, VarRead


@dataclass
class CDFGResult:
    value: Optional[int]
    registers: Dict[str, int]
    memories: Dict[str, List[int]]
    blocks_executed: int = 0
    ops_executed: int = 0


class CDFGExecutor:
    def __init__(
        self,
        cdfg: FunctionCDFG,
        args: Sequence[int] = (),
        register_init: Optional[Dict[Symbol, int]] = None,
        memory_init: Optional[Dict[Symbol, List[int]]] = None,
        on_send: Optional[Callable[[Symbol, int], None]] = None,
        on_recv: Optional[Callable[[Symbol], int]] = None,
        max_blocks: int = 1_000_000,
    ):
        self.cdfg = cdfg
        self.max_blocks = max_blocks
        self.on_send = on_send
        self.on_recv = on_recv
        self.registers: Dict[Symbol, int] = {s: 0 for s in cdfg.registers}
        self.memories: Dict[Symbol, List[int]] = {}
        for array in cdfg.arrays:
            assert isinstance(array.type, ArrayType)
            self.memories[array] = [0] * array.type.size
        if register_init:
            for symbol, value in register_init.items():
                self.registers[symbol] = wrap(value, symbol.type)
        if memory_init:
            for symbol, values in memory_init.items():
                words = self.memories.setdefault(
                    symbol, [0] * (symbol.type.size if isinstance(symbol.type, ArrayType) else len(values))
                )
                for i, v in enumerate(values):
                    words[i] = v
        scalar_params = [
            p for p in cdfg.params if not isinstance(p.type, ArrayType)
        ]
        if len(args) != len(scalar_params):
            raise InterpError(
                f"{cdfg.name} expects {len(scalar_params)} scalar arguments,"
                f" got {len(args)}"
            )
        for symbol, value in zip(scalar_params, args):
            self.registers[symbol] = wrap(value, symbol.type)

    # ------------------------------------------------------------------

    def _operand(self, operand: Operand, values: Dict[VReg, int]) -> int:
        if isinstance(operand, Const):
            return operand.value
        if isinstance(operand, VarRead):
            if operand.var not in self.registers:
                self.registers[operand.var] = 0
            return self.registers[operand.var]
        return values[operand]

    def _exec_op(self, op: Operation, values: Dict[VReg, int],
                 entry_registers: Dict[Symbol, int]) -> None:
        def operand(i: int) -> int:
            o = op.operands[i]
            if isinstance(o, VarRead):
                return entry_registers.get(o.var, 0)
            return self._operand(o, values)

        if op.kind is OpKind.BINARY:
            assert op.dest is not None
            values[op.dest] = eval_binary(op.op, operand(0), operand(1), op.dest.type)
        elif op.kind is OpKind.UNARY:
            assert op.dest is not None
            values[op.dest] = eval_unary(op.op, operand(0), op.dest.type)
        elif op.kind is OpKind.CAST:
            assert op.dest is not None
            values[op.dest] = wrap(operand(0), op.dest.type)
        elif op.kind is OpKind.SELECT:
            assert op.dest is not None
            chosen = operand(1) if operand(0) else operand(2)
            values[op.dest] = wrap(chosen, op.dest.type)
        elif op.kind is OpKind.LOAD:
            assert op.dest is not None and op.array is not None
            memory = self.memories[op.array]
            index = operand(0)
            if not 0 <= index < len(memory):
                raise InterpError(
                    f"load from {op.array.unique_name}[{index}] out of bounds"
                    f" (size {len(memory)})"
                )
            values[op.dest] = memory[index]
        elif op.kind is OpKind.STORE:
            assert op.array is not None
            memory = self.memories[op.array]
            index = operand(0)
            if not 0 <= index < len(memory):
                raise InterpError(
                    f"store to {op.array.unique_name}[{index}] out of bounds"
                    f" (size {len(memory)})"
                )
            memory[index] = operand(1)
        elif op.kind is OpKind.SEND:
            if self.on_send is None:
                raise InterpError("SEND executed without a channel callback")
            assert op.channel is not None
            self.on_send(op.channel, operand(0))
        elif op.kind is OpKind.RECV:
            if self.on_recv is None:
                raise InterpError("RECV executed without a channel callback")
            assert op.dest is not None and op.channel is not None
            values[op.dest] = wrap(self.on_recv(op.channel), op.dest.type)
        elif op.kind in (OpKind.BARRIER, OpKind.DELAY, OpKind.NOP):
            pass
        else:
            raise InterpError(f"executor cannot run {op.kind}")

    def run(self) -> CDFGResult:
        block = self.cdfg.entry
        assert block is not None
        blocks_executed = 0
        ops_executed = 0
        while True:
            blocks_executed += 1
            if blocks_executed > self.max_blocks:
                raise InterpError(
                    f"block budget of {self.max_blocks} exceeded in {self.cdfg.name}"
                )
            values: Dict[VReg, int] = {}
            entry_registers = dict(self.registers)
            for op in block.ops:
                self._exec_op(op, values, entry_registers)
                ops_executed += 1
            # Latch register updates at block exit.
            for var, value in block.var_writes.items():
                raw = (
                    entry_registers.get(value.var, 0)
                    if isinstance(value, VarRead)
                    else self._operand(value, values)
                )
                self.registers[var] = wrap(raw, var.type)
            terminator = block.terminator
            if isinstance(terminator, Jump):
                block = terminator.target
            elif isinstance(terminator, Branch):
                cond = (
                    entry_registers.get(terminator.cond.var, 0)
                    if isinstance(terminator.cond, VarRead)
                    else self._operand(terminator.cond, values)
                )
                block = terminator.if_true if cond else terminator.if_false
            elif isinstance(terminator, Ret):
                value = None
                if terminator.value is not None:
                    raw = (
                        entry_registers.get(terminator.value.var, 0)
                        if isinstance(terminator.value, VarRead)
                        else self._operand(terminator.value, values)
                    )
                    value = wrap(raw, self.cdfg.return_type) if self.cdfg.return_type.bit_width else raw
                return CDFGResult(
                    value=value,
                    registers={s.unique_name: v for s, v in self.registers.items()},
                    memories={s.unique_name: list(v) for s, v in self.memories.items()},
                    blocks_executed=blocks_executed,
                    ops_executed=ops_executed,
                )
            else:
                raise InterpError(f"block {block.label} has no terminator")


def execute(cdfg: FunctionCDFG, args: Sequence[int] = (), **kwargs) -> CDFGResult:
    """Convenience wrapper around :class:`CDFGExecutor`."""
    return CDFGExecutor(cdfg, args=args, **kwargs).run()
