"""Backward liveness analysis over the CDFG.

Scalar variables live in registers; every :class:`~repro.ir.ops.VarRead`
yields the value the register held at *block entry* (the builder rewrites
intra-block read-after-write into direct VReg uses), and every entry in
``var_writes`` latches at *block exit*.  That makes block-level gen/kill
sets trivial to compute:

* ``USE[B]`` — every variable appearing as a ``VarRead`` anywhere in the
  block (operation operands, latch values, the terminator).  All such
  reads are upward-exposed by construction.
* ``DEF[B]`` — the keys of ``var_writes``: the registers the block
  overwrites at exit.

The classic backward dataflow then iterates to a fixed point over the
reachable blocks in reverse-postorder:

    live_out[B] = union(live_in[S] for S in succ(B))
    live_in[B]  = USE[B] | (live_out[B] - DEF[B])

Per-operation def/use helpers are exported for passes that reason at
operation granularity (a pass deleting an op can ask exactly which
registers and wires it touched).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set

from ..lang.symtab import Symbol
from .cdfg import BasicBlock, FunctionCDFG
from .ops import Branch, Operand, Operation, Ret, Terminator, VReg, VarRead


def op_def(op: Operation) -> Optional[VReg]:
    """The wire an operation defines, if any."""
    return op.dest


def op_vreg_uses(op: Operation) -> Set[VReg]:
    """Wires an operation reads."""
    return {o for o in op.operands if isinstance(o, VReg)}


def op_var_uses(op: Operation) -> Set[Symbol]:
    """Registers an operation reads (always the block-entry value)."""
    return {o.var for o in op.operands if isinstance(o, VarRead)}


def _terminator_operands(terminator: Optional[Terminator]):
    if isinstance(terminator, Branch):
        yield terminator.cond
    elif isinstance(terminator, Ret) and terminator.value is not None:
        yield terminator.value


def block_use_def(block: BasicBlock) -> "tuple[Set[Symbol], Set[Symbol]]":
    """Block-level (USE, DEF) register sets."""
    use: Set[Symbol] = set()

    def note(operand: Operand) -> None:
        if isinstance(operand, VarRead):
            use.add(operand.var)

    for op in block.ops:
        for operand in op.operands:
            note(operand)
    for value in block.var_writes.values():
        note(value)
    for operand in _terminator_operands(block.terminator):
        note(operand)
    return use, set(block.var_writes)


@dataclass
class LivenessInfo:
    """Per-block live-variable sets, keyed by block id.

    Only blocks reachable from entry are analyzed; unreachable blocks have
    no entry in the maps (treat them as "everything live" or — better —
    prune them first).
    """

    live_in: Dict[int, FrozenSet[Symbol]] = field(default_factory=dict)
    live_out: Dict[int, FrozenSet[Symbol]] = field(default_factory=dict)
    use: Dict[int, FrozenSet[Symbol]] = field(default_factory=dict)
    defs: Dict[int, FrozenSet[Symbol]] = field(default_factory=dict)
    iterations: int = 0

    def live_out_of(self, block: BasicBlock) -> Optional[FrozenSet[Symbol]]:
        return self.live_out.get(block.id)


def compute_liveness(cdfg: FunctionCDFG) -> LivenessInfo:
    """Backward dataflow to a fixed point over the reachable blocks."""
    blocks = cdfg.reachable_blocks()
    info = LivenessInfo()
    use: Dict[int, Set[Symbol]] = {}
    defs: Dict[int, Set[Symbol]] = {}
    live_in: Dict[int, Set[Symbol]] = {}
    live_out: Dict[int, Set[Symbol]] = {}
    for block in blocks:
        use[block.id], defs[block.id] = block_use_def(block)
        live_in[block.id] = set(use[block.id])
        live_out[block.id] = set()

    # Reverse-postorder backwards converges in O(loop depth) sweeps.
    changed = True
    while changed:
        changed = False
        info.iterations += 1
        for block in reversed(blocks):
            out: Set[Symbol] = set()
            for succ in block.successors():
                out |= live_in.get(succ.id, set())
            inn = use[block.id] | (out - defs[block.id])
            if out != live_out[block.id] or inn != live_in[block.id]:
                live_out[block.id] = out
                live_in[block.id] = inn
                changed = True

    for block in blocks:
        info.live_in[block.id] = frozenset(live_in[block.id])
        info.live_out[block.id] = frozenset(live_out[block.id])
        info.use[block.id] = frozenset(use[block.id])
        info.defs[block.id] = frozenset(defs[block.id])
    return info
