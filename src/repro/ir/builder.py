"""Lowering from the (inlined) AST to a control/data-flow graph.

The builder requires that function calls have been eliminated by the inline
pass; everything else in the language lowers here:

* scalar variables become datapath registers (latched at block exit);
* arrays become memories with LOAD/STORE operations;
* pointers are lowered per the :class:`~repro.analysis.pointer.PointerPlan` —
  resolved pointers become index registers over their target array (or direct
  register accesses for scalar targets), unresolved pointers become word
  addresses into the plan's unified memory;
* short-circuit operators and conditional expressions become SELECT
  operations when their operands cannot trap, and real control flow
  otherwise, preserving C's evaluation-order guarantees;
* ``par`` branches are flattened in order — the data independence that
  semantic analysis verified is rediscovered by the scheduler as ILP, which
  is exactly the compiler-extracts-parallelism story the paper tells for
  C2Verilog and CASH;
* ``wait``/``delay``/``send``/``recv`` become fence operations; ``within``
  blocks tag their operations with a timing-constraint group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..analysis.pointer import PointerPlan, plan_pointers
from ..lang import ast_nodes as ast
from ..lang.errors import SemanticError, SourceLocation, UNKNOWN_LOCATION
from ..lang.semantic import SemanticInfo
from ..lang.symtab import Symbol, SymbolKind
from ..lang.types import (
    ArrayType,
    BOOL,
    BoolType,
    INT,
    IntType,
    PointerType,
    Type,
    UINT,
)
from .astutils import fresh_symbol
from .cdfg import BasicBlock, FunctionCDFG, ModuleCDFG, TimingConstraint, validate
from .ops import Branch, Const, Jump, Operand, Operation, OpKind, Ret, VReg, VarRead


class BuildError(SemanticError):
    """The program cannot be lowered to a CDFG (e.g. residual calls)."""


@dataclass
class _PtrValue:
    """A lowered pointer-typed value.

    ``kind`` is 'array' (base memory + index operand), 'scalar' (a direct
    register), or 'memory' (a word address into the unified memory).
    """

    kind: str
    base: Optional[Symbol] = None
    index: Optional[Operand] = None
    address: Optional[Operand] = None


_INDEX_TYPE = IntType(32, signed=False)


def _is_trap_free(expr: ast.Expr) -> bool:
    """Whether evaluating ``expr`` eagerly can never trap or synchronize —
    the precondition for if-converting it into a SELECT operand."""
    for sub in ast.walk_expr(expr):
        if isinstance(sub, (ast.Call, ast.Receive, ast.ArrayIndex)):
            return False
        if isinstance(sub, ast.BinaryOp) and sub.op in ("/", "%"):
            return False
        if isinstance(sub, ast.UnaryOp) and sub.op in ("*", "&"):
            return False
        if isinstance(sub, ast.Identifier) and isinstance(sub.type, ArrayType):
            return False
    return True


class CDFGBuilder:
    """Builds the CDFG of one inlined function."""

    def __init__(
        self,
        fn: ast.FunctionDef,
        info: SemanticInfo,
        plan: Optional[PointerPlan] = None,
    ):
        self.fn = fn
        self.info = info
        self.plan = plan if plan is not None else plan_pointers(fn)
        self.cdfg = FunctionCDFG(fn.name, fn.return_type)
        self.block: BasicBlock = self.cdfg.new_block("entry")
        self.cdfg.entry = self.block
        self.current_values: Dict[Symbol, Operand] = {}
        self.loop_stack: List[Tuple[BasicBlock, BasicBlock]] = []  # (break, continue)
        self.constraint_group: Optional[int] = None
        self._next_group = 0
        self._loop_depth = 0
        self._registers: Dict[Symbol, None] = {}
        self._arrays: Dict[Symbol, None] = {}
        self._pointer_index: Dict[Symbol, Symbol] = {}
        # Which block each VReg was computed in: used to route values that
        # cross a block boundary (e.g. around a lowered ternary) through a
        # temporary register, keeping VRegs strictly block-local wires.
        self._vreg_block: Dict[VReg, BasicBlock] = {}
        # Source statement currently being lowered; stamped onto emitted ops
        # so CDFG-level diagnostics can point at source lines.
        self._loc: Optional[SourceLocation] = None

    # ------------------------------------------------------------------
    # Public entry
    # ------------------------------------------------------------------

    def build(self) -> FunctionCDFG:
        for param in self.fn.params:
            symbol: Symbol = param.symbol  # type: ignore[attr-defined]
            self.cdfg.params.append(symbol)
            if isinstance(symbol.type, ArrayType):
                self._note_array(symbol)
            elif not isinstance(symbol.type, PointerType):
                self._note_register(symbol)
            else:
                self._note_register(symbol)
        if self.plan.memory_symbol is not None:
            self._note_array(self.plan.memory_symbol)
        self._lower_block(self.fn.body)
        if self.block.terminator is None:
            self.block.terminator = Ret(None)
        self.cdfg.registers = list(self._registers)
        self.cdfg.arrays = list(self._arrays)
        self.cdfg.prune_unreachable()
        validate(self.cdfg)
        return self.cdfg

    # ------------------------------------------------------------------
    # Bookkeeping helpers
    # ------------------------------------------------------------------

    def _note_register(self, symbol: Symbol) -> None:
        self._registers.setdefault(symbol, None)
        if symbol.kind is SymbolKind.GLOBAL:
            self.cdfg.globals_read.add(symbol)
            if self._loc is not None:
                self.cdfg.global_read_sites.setdefault(symbol, self._loc)

    def _note_array(self, symbol: Symbol) -> None:
        self._arrays.setdefault(symbol, None)
        if symbol.kind is SymbolKind.GLOBAL:
            self.cdfg.globals_read.add(symbol)
            if self._loc is not None:
                self.cdfg.global_read_sites.setdefault(symbol, self._loc)

    def _localize(self, operand: Operand) -> Operand:
        """Make ``operand`` usable in the current block.  A VReg computed in
        an earlier block is latched into a fresh temporary register there
        (the earlier block dominates this one within structured lowering)
        and re-read here."""
        if not isinstance(operand, VReg):
            return operand
        defining = self._vreg_block.get(operand)
        if defining is None or defining is self.block:
            return operand
        temp = fresh_symbol("xb", operand.type)
        self._note_register(temp)
        defining.var_writes[temp] = operand
        return self._read_var(temp)

    def _emit(
        self,
        kind: OpKind,
        dest_type: Optional[Type],
        operands: List[Operand],
        **attrs,
    ) -> Optional[VReg]:
        operands = [self._localize(o) for o in operands]
        dest = VReg(dest_type) if dest_type is not None else None
        op = Operation(kind=kind, dest=dest, operands=operands,
                       constraint=self.constraint_group,
                       location=self._loc, **attrs)
        self.block.append(op)
        if dest is not None:
            self._vreg_block[dest] = self.block
        return dest

    def _new_block(self, label: str = "") -> BasicBlock:
        return self.cdfg.new_block(label)

    def _switch_to(self, block: BasicBlock) -> None:
        self.block = block
        self.current_values = {}

    def _read_var(self, symbol: Symbol) -> Operand:
        if symbol in self.plan.in_memory:
            address = self.plan.address_of(symbol)
            assert self.plan.memory_symbol is not None
            result = self._emit(
                OpKind.LOAD, symbol.type, [Const(address, _INDEX_TYPE)],
                array=self.plan.memory_symbol,
            )
            assert result is not None
            return result
        if symbol in self.current_values:
            return self.current_values[symbol]
        self._note_register(symbol)
        value = VarRead(symbol)
        self.current_values[symbol] = value
        return value

    def _write_var(self, symbol: Symbol, value: Operand) -> None:
        if symbol in self.plan.in_memory:
            address = self.plan.address_of(symbol)
            assert self.plan.memory_symbol is not None
            value = self._cast_to(value, symbol.type)
            self._emit(
                OpKind.STORE, None,
                [Const(address, _INDEX_TYPE), value],
                array=self.plan.memory_symbol,
            )
            return
        self._note_register(symbol)
        if symbol.kind is SymbolKind.GLOBAL:
            self.cdfg.globals_written.add(symbol)
            if self._loc is not None:
                self.cdfg.global_write_sites.setdefault(symbol, self._loc)
        value = self._localize(self._cast_to(self._localize(value), symbol.type))
        self.current_values[symbol] = value
        self.block.var_writes[symbol] = value

    def _cast_to(self, value: Operand, target: Type) -> Operand:
        source = value.type
        if isinstance(target, (IntType, BoolType, PointerType)) and source == target:
            return value
        if isinstance(value, Const):
            from ..interp.machine import wrap

            return Const(wrap(value.value, target), target)
        result = self._emit(OpKind.CAST, target, [value])
        assert result is not None
        return result

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _lower_block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            self._lower_stmt(stmt)
            if self.block.terminator is not None:
                return  # the rest of this block is unreachable

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if stmt.location != UNKNOWN_LOCATION:
            self._loc = stmt.location
        if isinstance(stmt, ast.Block):
            self._lower_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self._lower_decl(stmt)
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._lower_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            value = None
            if stmt.value is not None:
                value = self._localize(
                    self._cast_to(
                        self._localize(self._lower_expr(stmt.value)),
                        self.fn.return_type,
                    )
                )
            self.block.terminator = Ret(value)
        elif isinstance(stmt, ast.Break):
            self.block.terminator = Jump(self.loop_stack[-1][0])
        elif isinstance(stmt, ast.Continue):
            self.block.terminator = Jump(self.loop_stack[-1][1])
        elif isinstance(stmt, ast.Par):
            # Scheduled flows flatten par: the branches are data-independent
            # (checked semantically), so the scheduler rediscovers them as ILP.
            for branch in stmt.branches:
                self._lower_stmt(branch)
                if self.block.terminator is not None:
                    return
        elif isinstance(stmt, ast.Seq):
            self._lower_block(stmt.body)
        elif isinstance(stmt, ast.Wait):
            self._emit(OpKind.BARRIER, None, [])
        elif isinstance(stmt, ast.Delay):
            if stmt.cycles > 0:
                self._emit(OpKind.DELAY, None, [], cycles=stmt.cycles)
        elif isinstance(stmt, ast.Within):
            group = self._next_group
            self._next_group += 1
            self.cdfg.constraints.append(TimingConstraint(group, stmt.cycles))
            previous = self.constraint_group
            self.constraint_group = group
            self._lower_block(stmt.body)
            self.constraint_group = previous
        elif isinstance(stmt, ast.Send):
            channel: Symbol = stmt.symbol  # type: ignore[attr-defined]
            value = self._lower_expr(stmt.value)
            element = channel.type.element  # type: ignore[union-attr]
            self._emit(OpKind.SEND, None, [self._cast_to(value, element)], channel=channel)
        elif isinstance(stmt, ast.ChannelDecl):
            raise BuildError("channels must be global", stmt.location)
        else:
            raise BuildError(f"cannot lower {type(stmt).__name__}", stmt.location)

    def _lower_decl(self, decl: ast.VarDecl) -> None:
        symbol: Symbol = decl.symbol  # type: ignore[attr-defined]
        if isinstance(symbol.type, ArrayType):
            self._note_array(symbol)
            inits = decl.array_init or []
            if symbol not in self.plan.in_memory:
                for i, expr in enumerate(inits):
                    value = self._cast_to(self._lower_expr(expr), symbol.type.element)
                    self._emit(
                        OpKind.STORE, None, [Const(i, _INDEX_TYPE), value], array=symbol
                    )
                if self._loop_depth > 0:
                    # Redeclared each iteration: C gives a fresh (zeroed, in
                    # our semantics) array, so clear the tail explicitly.
                    zero = Const(0, symbol.type.element)
                    for i in range(len(inits), symbol.type.size):
                        self._emit(
                            OpKind.STORE, None, [Const(i, _INDEX_TYPE), zero],
                            array=symbol,
                        )
            else:
                base = self.plan.address_of(symbol)
                assert self.plan.memory_symbol is not None
                for i, expr in enumerate(inits):
                    value = self._cast_to(self._lower_expr(expr), symbol.type.element)
                    self._emit(
                        OpKind.STORE, None, [Const(base + i, _INDEX_TYPE), value],
                        array=self.plan.memory_symbol,
                    )
            return
        if isinstance(symbol.type, PointerType):
            if decl.init is not None:
                self._assign_pointer(symbol, self._lower_pointer(decl.init))
            return
        if decl.init is not None:
            self._write_var(symbol, self._lower_expr(decl.init))
        else:
            # Declarations (re)zero their variable; cheap, and keeps loop
            # bodies that redeclare locals equivalent to the interpreter.
            self._write_var(symbol, Const(0, symbol.type))

    def _lower_assign(self, assign: ast.Assign) -> None:
        target = assign.target
        if isinstance(target, ast.Identifier):
            symbol: Symbol = target.symbol  # type: ignore[attr-defined]
            if isinstance(symbol.type, PointerType):
                self._assign_pointer(symbol, self._lower_pointer(assign.value))
                return
            self._write_var(symbol, self._lower_expr(assign.value))
            return
        if isinstance(target, ast.ArrayIndex):
            base = target.base
            if isinstance(base, ast.Identifier) and isinstance(base.type, ArrayType):
                array: Symbol = base.symbol  # type: ignore[attr-defined]
                index = self._lower_expr(target.index)
                value = self._lower_expr(assign.value)
                self._store_array(array, index, value)
                return
            # pointer[i] = v  ==  *(pointer + i) = v
            pointer = self._lower_pointer(base)
            pointer = self._pointer_add(pointer, self._lower_expr(target.index))
            self._store_through(pointer, self._lower_expr(assign.value), target.type)
            return
        if isinstance(target, ast.UnaryOp) and target.op == "*":
            pointer = self._lower_pointer(target.operand)
            self._store_through(pointer, self._lower_expr(assign.value), target.type)
            return
        raise BuildError("unsupported assignment target", assign.location)

    def _store_array(self, array: Symbol, index: Operand, value: Operand) -> None:
        element = array.type.element  # type: ignore[union-attr]
        value = self._cast_to(value, element)
        if array in self.plan.in_memory:
            base = self.plan.address_of(array)
            address = self._emit(
                OpKind.BINARY, _INDEX_TYPE,
                [Const(base, _INDEX_TYPE), self._cast_to(index, _INDEX_TYPE)], op="+",
            )
            assert address is not None and self.plan.memory_symbol is not None
            self._emit(
                OpKind.STORE, None, [address, value], array=self.plan.memory_symbol
            )
            return
        self._note_array(array)
        if array.kind is SymbolKind.GLOBAL:
            self.cdfg.globals_written.add(array)
            if self._loc is not None:
                self.cdfg.global_write_sites.setdefault(array, self._loc)
        self._emit(OpKind.STORE, None, [index, value], array=array)

    def _store_through(self, pointer: _PtrValue, value: Operand, target_type) -> None:
        if pointer.kind == "scalar":
            assert pointer.base is not None
            self._write_var(pointer.base, value)
            return
        if pointer.kind == "array":
            assert pointer.base is not None and pointer.index is not None
            self._store_array(pointer.base, pointer.index, value)
            return
        assert pointer.address is not None and self.plan.memory_symbol is not None
        value = self._cast_to(value, target_type if target_type is not None else INT)
        self._emit(
            OpKind.STORE, None, [pointer.address, value],
            array=self.plan.memory_symbol,
        )

    # -- control flow -------------------------------------------------------

    def _lower_if(self, stmt: ast.If) -> None:
        cond = self._localize(self._lower_expr(stmt.cond))
        then_block = self._new_block("then")
        join_block = self._new_block("endif")
        else_block = self._new_block("else") if stmt.otherwise is not None else join_block
        self.block.terminator = Branch(cond, then_block, else_block)
        self._switch_to(then_block)
        self._lower_stmt(stmt.then)
        if self.block.terminator is None:
            self.block.terminator = Jump(join_block)
        if stmt.otherwise is not None:
            self._switch_to(else_block)
            self._lower_stmt(stmt.otherwise)
            if self.block.terminator is None:
                self.block.terminator = Jump(join_block)
        self._switch_to(join_block)

    def _lower_while(self, stmt: ast.While) -> None:
        head = self._new_block("while_head")
        body = self._new_block("while_body")
        exit_block = self._new_block("while_exit")
        self.block.terminator = Jump(head)
        self._switch_to(head)
        cond = self._localize(self._lower_expr(stmt.cond))
        self.block.terminator = Branch(cond, body, exit_block)
        self.loop_stack.append((exit_block, head))
        self._loop_depth += 1
        self._switch_to(body)
        self._lower_stmt(stmt.body)
        if self.block.terminator is None:
            self.block.terminator = Jump(head)
        self._loop_depth -= 1
        self.loop_stack.pop()
        self._switch_to(exit_block)

    def _lower_do_while(self, stmt: ast.DoWhile) -> None:
        body = self._new_block("do_body")
        cond_block = self._new_block("do_cond")
        exit_block = self._new_block("do_exit")
        self.block.terminator = Jump(body)
        self.loop_stack.append((exit_block, cond_block))
        self._loop_depth += 1
        self._switch_to(body)
        self._lower_stmt(stmt.body)
        if self.block.terminator is None:
            self.block.terminator = Jump(cond_block)
        self._loop_depth -= 1
        self.loop_stack.pop()
        self._switch_to(cond_block)
        cond = self._localize(self._lower_expr(stmt.cond))
        self.block.terminator = Branch(cond, body, exit_block)
        self._switch_to(exit_block)

    def _lower_for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        head = self._new_block("for_head")
        body = self._new_block("for_body")
        step_block = self._new_block("for_step")
        exit_block = self._new_block("for_exit")
        self.block.terminator = Jump(head)
        self._switch_to(head)
        if stmt.cond is not None:
            cond = self._localize(self._lower_expr(stmt.cond))
            self.block.terminator = Branch(cond, body, exit_block)
        else:
            self.block.terminator = Jump(body)
        self.loop_stack.append((exit_block, step_block))
        self._loop_depth += 1
        self._switch_to(body)
        self._lower_stmt(stmt.body)
        if self.block.terminator is None:
            self.block.terminator = Jump(step_block)
        self._switch_to(step_block)
        if stmt.step is not None:
            self._lower_stmt(stmt.step)
        if self.block.terminator is None:
            self.block.terminator = Jump(head)
        self._loop_depth -= 1
        self.loop_stack.pop()
        self._switch_to(exit_block)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _lower_expr(self, expr: ast.Expr) -> Operand:
        if isinstance(expr, ast.IntLiteral):
            assert expr.type is not None
            return Const(expr.value, expr.type)
        if isinstance(expr, ast.BoolLiteral):
            return Const(int(expr.value), BOOL)
        if isinstance(expr, ast.Identifier):
            symbol: Symbol = expr.symbol  # type: ignore[attr-defined]
            if isinstance(symbol.type, ArrayType):
                raise BuildError(
                    f"array {symbol.name!r} used as a scalar", expr.location
                )
            if isinstance(symbol.type, PointerType):
                return self._pointer_as_operand(self._lower_pointer(expr), expr)
            return self._read_var(symbol)
        if isinstance(expr, ast.UnaryOp):
            if expr.op == "*":
                pointer = self._lower_pointer(expr.operand)
                return self._load_through(pointer, expr.type)
            if expr.op == "&":
                return self._pointer_as_operand(self._lower_pointer(expr), expr)
            operand = self._lower_expr(expr.operand)
            assert expr.type is not None
            result = self._emit(OpKind.UNARY, expr.type, [operand], op=expr.op)
            assert result is not None
            return result
        if isinstance(expr, ast.BinaryOp):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Conditional):
            return self._lower_conditional(expr)
        if isinstance(expr, ast.ArrayIndex):
            base = expr.base
            if isinstance(base, ast.Identifier) and isinstance(base.type, ArrayType):
                array: Symbol = base.symbol  # type: ignore[attr-defined]
                index = self._lower_expr(expr.index)
                return self._load_array(array, index, expr.type)
            pointer = self._lower_pointer(base)
            pointer = self._pointer_add(pointer, self._lower_expr(expr.index))
            return self._load_through(pointer, expr.type)
        if isinstance(expr, ast.Receive):
            channel: Symbol = expr.symbol  # type: ignore[attr-defined]
            element = channel.type.element  # type: ignore[union-attr]
            result = self._emit(OpKind.RECV, element, [], channel=channel)
            assert result is not None
            return result
        if isinstance(expr, ast.Call):
            raise BuildError(
                f"call to {expr.callee!r} survived inlining — flows must"
                " inline before building the CDFG",
                expr.location,
            )
        raise BuildError(f"cannot lower {type(expr).__name__}", expr.location)

    def _load_array(self, array: Symbol, index: Operand, result_type) -> VReg:
        if array in self.plan.in_memory:
            base = self.plan.address_of(array)
            address = self._emit(
                OpKind.BINARY, _INDEX_TYPE,
                [Const(base, _INDEX_TYPE), self._cast_to(index, _INDEX_TYPE)], op="+",
            )
            assert address is not None and self.plan.memory_symbol is not None
            result = self._emit(
                OpKind.LOAD, result_type or INT, [address], array=self.plan.memory_symbol
            )
            assert result is not None
            return result
        self._note_array(array)
        result = self._emit(OpKind.LOAD, result_type or INT, [index], array=array)
        assert result is not None
        return result

    def _load_through(self, pointer: _PtrValue, result_type) -> Operand:
        if pointer.kind == "scalar":
            assert pointer.base is not None
            return self._read_var(pointer.base)
        if pointer.kind == "array":
            assert pointer.base is not None and pointer.index is not None
            return self._load_array(pointer.base, pointer.index, result_type)
        assert pointer.address is not None and self.plan.memory_symbol is not None
        result = self._emit(
            OpKind.LOAD, result_type or INT, [pointer.address],
            array=self.plan.memory_symbol,
        )
        assert result is not None
        return result

    def _lower_binary(self, expr: ast.BinaryOp) -> Operand:
        if isinstance(expr.type, PointerType):
            return self._pointer_as_operand(self._lower_pointer(expr), expr)
        if isinstance(expr.left.type, PointerType) and isinstance(
            expr.right.type, PointerType
        ):
            # Pointer comparison / difference: compare lowered positions.
            left = self._comparable_pointer(self._lower_pointer(expr.left), expr)
            right = self._comparable_pointer(self._lower_pointer(expr.right), expr)
            assert expr.type is not None
            result = self._emit(OpKind.BINARY, expr.type, [left, right], op=expr.op)
            assert result is not None
            return result
        if expr.op in ("&&", "||") and not _is_trap_free(expr.right):
            return self._lower_short_circuit(expr)
        left = self._lower_expr(expr.left)
        right = self._lower_expr(expr.right)
        assert expr.type is not None
        result = self._emit(OpKind.BINARY, expr.type, [left, right], op=expr.op)
        assert result is not None
        return result

    def _lower_short_circuit(self, expr: ast.BinaryOp) -> Operand:
        """``a && b`` with a trapping ``b``: real control flow via a temp."""
        temp = fresh_symbol("sc", BOOL)
        left = self._lower_expr(expr.left)
        left_bool = self._emit(
            OpKind.BINARY, BOOL, [left, Const(0, left.type)], op="!="
        )
        assert left_bool is not None
        self._write_var(temp, left_bool)
        rhs_block = self._new_block("sc_rhs")
        join_block = self._new_block("sc_join")
        if expr.op == "&&":
            self.block.terminator = Branch(left_bool, rhs_block, join_block)
        else:
            self.block.terminator = Branch(left_bool, join_block, rhs_block)
        self._switch_to(rhs_block)
        right = self._lower_expr(expr.right)
        right_bool = self._emit(
            OpKind.BINARY, BOOL, [right, Const(0, right.type)], op="!="
        )
        assert right_bool is not None
        self._write_var(temp, right_bool)
        self.block.terminator = Jump(join_block)
        self._switch_to(join_block)
        return self._read_var(temp)

    def _lower_conditional(self, expr: ast.Conditional) -> Operand:
        assert expr.type is not None
        if _is_trap_free(expr.then) and _is_trap_free(expr.otherwise):
            cond = self._lower_expr(expr.cond)
            then_value = self._cast_to(self._lower_expr(expr.then), expr.type)
            else_value = self._cast_to(self._lower_expr(expr.otherwise), expr.type)
            result = self._emit(
                OpKind.SELECT, expr.type, [cond, then_value, else_value]
            )
            assert result is not None
            return result
        temp = fresh_symbol("cond", expr.type)
        cond = self._lower_expr(expr.cond)
        then_block = self._new_block("cond_then")
        else_block = self._new_block("cond_else")
        join_block = self._new_block("cond_join")
        self.block.terminator = Branch(cond, then_block, else_block)
        self._switch_to(then_block)
        self._write_var(temp, self._lower_expr(expr.then))
        self.block.terminator = Jump(join_block)
        self._switch_to(else_block)
        self._write_var(temp, self._lower_expr(expr.otherwise))
        self.block.terminator = Jump(join_block)
        self._switch_to(join_block)
        return self._read_var(temp)

    # ------------------------------------------------------------------
    # Pointers
    # ------------------------------------------------------------------

    def _index_register(self, pointer: Symbol) -> Symbol:
        if pointer not in self._pointer_index:
            shadow = fresh_symbol(f"{pointer.name}_idx", _INDEX_TYPE)
            self._pointer_index[pointer] = shadow
            self._note_register(shadow)
        return self._pointer_index[pointer]

    def _lower_pointer(self, expr: ast.Expr) -> _PtrValue:
        if isinstance(expr, ast.Identifier):
            symbol: Symbol = expr.symbol  # type: ignore[attr-defined]
            if isinstance(symbol.type, ArrayType):
                # Array decaying to a pointer to its first element.
                if symbol in self.plan.in_memory:
                    return _PtrValue(
                        "memory",
                        address=Const(self.plan.address_of(symbol), _INDEX_TYPE),
                    )
                return _PtrValue("array", base=symbol, index=Const(0, _INDEX_TYPE))
            if symbol in self.plan.bases:
                kind, base = self.plan.bases[symbol]
                if kind == "scalar":
                    return _PtrValue("scalar", base=base)
                return _PtrValue(
                    "array", base=base, index=self._read_var(self._index_register(symbol))
                )
            # Unresolved pointer variable: its register holds a word address.
            self._note_register(symbol)
            return _PtrValue("memory", address=self._read_var(symbol))
        if isinstance(expr, ast.UnaryOp) and expr.op == "&":
            return self._lower_address_of(expr.operand)
        if isinstance(expr, ast.BinaryOp) and expr.op in ("+", "-"):
            if isinstance(expr.left.type, PointerType):
                pointer = self._lower_pointer(expr.left)
                delta = self._lower_expr(expr.right)
            else:
                pointer = self._lower_pointer(expr.right)
                delta = self._lower_expr(expr.left)
            if expr.op == "-":
                negated = self._emit(OpKind.UNARY, _INDEX_TYPE, [delta], op="-")
                assert negated is not None
                delta = negated
            return self._pointer_add(pointer, delta)
        if isinstance(expr, ast.Conditional):
            cond = self._lower_expr(expr.cond)
            then_ptr = self._comparable_pointer(self._lower_pointer(expr.then), expr)
            else_ptr = self._comparable_pointer(self._lower_pointer(expr.otherwise), expr)
            address = self._emit(
                OpKind.SELECT, _INDEX_TYPE, [cond, then_ptr, else_ptr]
            )
            assert address is not None
            return _PtrValue("memory", address=address)
        raise BuildError(
            f"cannot lower pointer expression {type(expr).__name__}", expr.location
        )

    def _lower_address_of(self, operand: ast.Expr) -> _PtrValue:
        if isinstance(operand, ast.Identifier):
            symbol: Symbol = operand.symbol  # type: ignore[attr-defined]
            if symbol in self.plan.in_memory:
                return _PtrValue(
                    "memory", address=Const(self.plan.address_of(symbol), _INDEX_TYPE)
                )
            if isinstance(symbol.type, ArrayType):
                return _PtrValue("array", base=symbol, index=Const(0, _INDEX_TYPE))
            return _PtrValue("scalar", base=symbol)
        if isinstance(operand, ast.ArrayIndex) and isinstance(
            operand.base, ast.Identifier
        ):
            array: Symbol = operand.base.symbol  # type: ignore[attr-defined]
            index = self._lower_expr(operand.index)
            if array in self.plan.in_memory:
                base = self.plan.address_of(array)
                address = self._emit(
                    OpKind.BINARY, _INDEX_TYPE,
                    [Const(base, _INDEX_TYPE), self._cast_to(index, _INDEX_TYPE)],
                    op="+",
                )
                assert address is not None
                return _PtrValue("memory", address=address)
            return _PtrValue("array", base=array, index=index)
        if isinstance(operand, ast.UnaryOp) and operand.op == "*":
            return self._lower_pointer(operand.operand)
        raise BuildError("cannot take this address", operand.location)

    def _pointer_add(self, pointer: _PtrValue, delta: Operand) -> _PtrValue:
        if isinstance(delta, Const) and delta.value == 0:
            return pointer
        if pointer.kind == "scalar":
            raise BuildError(
                "arithmetic on a pointer to a scalar is not synthesizable"
            )
        if pointer.kind == "array":
            assert pointer.index is not None
            index = self._emit(
                OpKind.BINARY, _INDEX_TYPE,
                [self._cast_to(pointer.index, _INDEX_TYPE),
                 self._cast_to(delta, _INDEX_TYPE)],
                op="+",
            )
            assert index is not None
            return _PtrValue("array", base=pointer.base, index=index)
        assert pointer.address is not None
        address = self._emit(
            OpKind.BINARY, _INDEX_TYPE,
            [pointer.address, self._cast_to(delta, _INDEX_TYPE)], op="+",
        )
        assert address is not None
        return _PtrValue("memory", address=address)

    def _pointer_as_operand(self, pointer: _PtrValue, expr: ast.Expr) -> Operand:
        """A pointer value flowing into a register or comparison."""
        if pointer.kind == "memory":
            assert pointer.address is not None
            return pointer.address
        if pointer.kind == "array":
            assert pointer.index is not None
            return self._cast_to(pointer.index, _INDEX_TYPE)
        raise BuildError(
            "a pointer to a scalar register has no runtime representation",
            expr.location,
        )

    def _comparable_pointer(self, pointer: _PtrValue, expr: ast.Expr) -> Operand:
        return self._pointer_as_operand(pointer, expr)

    def _assign_pointer(self, symbol: Symbol, value: _PtrValue) -> None:
        if symbol in self.plan.bases:
            kind, base = self.plan.bases[symbol]
            if kind == "scalar":
                return  # statically resolved; nothing to store
            if value.kind != "array" or value.base is not base:
                raise BuildError(
                    f"pointer plan mismatch assigning {symbol.name!r}"
                )
            assert value.index is not None
            self._write_var(self._index_register(symbol), value.index)
            return
        # Unresolved: store the word address.
        if value.kind != "memory":
            raise BuildError(
                f"pointer {symbol.name!r} is unresolved but its value is not"
                " a unified-memory address"
            )
        assert value.address is not None
        self._note_register(symbol)
        address = self._localize(value.address)
        self.current_values[symbol] = address
        self.block.var_writes[symbol] = address


def build_function(
    fn: ast.FunctionDef,
    info: SemanticInfo,
    plan: Optional[PointerPlan] = None,
) -> FunctionCDFG:
    """Lower one inlined function to a CDFG."""
    return CDFGBuilder(fn, info, plan).build()


def build_module(
    program: ast.Program,
    info: SemanticInfo,
    enable_pointer_analysis: bool = True,
) -> ModuleCDFG:
    """Lower every function of an inlined program."""
    module = ModuleCDFG(
        channels=[c.symbol for c in program.channels],  # type: ignore[attr-defined]
        global_symbols=[g.symbol for g in program.globals],  # type: ignore[attr-defined]
        global_inits=dict(info.global_inits),
    )
    for fn in program.functions:
        plan = plan_pointers(fn, enable_analysis=enable_pointer_analysis)
        module.functions[fn.name] = build_function(fn, info, plan)
    return module
