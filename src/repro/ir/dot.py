"""Graphviz (DOT) export for CDFGs and FSMDs — the debugging view.

Usage::

    from repro.ir.dot import cdfg_to_dot, fsmd_to_dot
    print(cdfg_to_dot(cdfg))      # pipe into `dot -Tsvg`
"""

from __future__ import annotations

from typing import List

from ..lang.symtab import Symbol
from .cdfg import FunctionCDFG
from .ops import Branch, Jump, Ret


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def cdfg_to_dot(cdfg: FunctionCDFG) -> str:
    """The CDFG as a DOT digraph: one record node per basic block (its
    operations and latches), edges for control flow (branch edges labelled
    T/F)."""
    lines: List[str] = [
        f'digraph "{_escape(cdfg.name)}" {{',
        "  node [shape=box, fontname=monospace, fontsize=9];",
        "  rankdir=TB;",
    ]
    for block in cdfg.reachable_blocks():
        body = [f"{block.label}:"]
        body += [f"  {op}" for op in block.ops]
        for var, value in sorted(
            block.var_writes.items(), key=lambda kv: kv[0].unique_name
        ):
            body.append(f"  {var.unique_name} <- {value}")
        terminator = block.terminator
        if isinstance(terminator, Ret):
            body.append(f"  {terminator}")
        label = _escape("\\l".join(body)) + "\\l"
        lines.append(f'  b{block.id} [label="{label}"];')
    for block in cdfg.reachable_blocks():
        terminator = block.terminator
        if isinstance(terminator, Jump):
            lines.append(f"  b{block.id} -> b{terminator.target.id};")
        elif isinstance(terminator, Branch):
            lines.append(
                f'  b{block.id} -> b{terminator.if_true.id} [label="T"];'
            )
            lines.append(
                f'  b{block.id} -> b{terminator.if_false.id} [label="F"];'
            )
    lines.append("}")
    return "\n".join(lines)


def fsmd_to_dot(fsmd) -> str:
    """An FSMD's state graph as a DOT digraph (states and transitions;
    nested decision trees flatten into labelled edges)."""
    from ..rtl.fsmd import CondNext, Done, NextState

    lines: List[str] = [
        f'digraph "{_escape(fsmd.name)}" {{',
        "  node [shape=circle, fontname=monospace, fontsize=9];",
    ]
    edges: List[str] = []

    def walk(source: int, transition, path: str) -> None:
        if isinstance(transition, int):
            label = _escape(path) if path else ""
            edges.append(f'  s{source} -> s{transition} [label="{label}"];')
        elif isinstance(transition, NextState):
            walk(source, transition.target, path)
        elif isinstance(transition, Done):
            lines.append(
                f'  s{source}_done [shape=doublecircle, label="done"];'
            )
            edges.append(
                f'  s{source} -> s{source}_done [label="{_escape(path)}"];'
            )
        elif isinstance(transition, CondNext):
            cond = str(transition.cond)
            prefix = f"{path} & " if path else ""
            walk(source, transition.if_true, f"{prefix}{cond}")
            walk(source, transition.if_false, f"{prefix}!{cond}")

    for state in fsmd.states:
        lines.append(f'  s{state.id} [label="S{state.id}\\n{_escape(state.label)}"];')
        if state.transition is not None:
            walk(state.id, state.transition, "")
    lines.extend(edges)
    lines.append("}")
    return "\n".join(lines)
