"""Transformation passes.

AST-level passes (run before CDFG construction):

* :mod:`.inline` — exhaustive function inlining (bounded recursion);
* :mod:`.unroll` — loop unrolling, full or by a factor;
* :mod:`.recode` — the source-level rewrites ("recoding") the paper says
  implicit timing rules force on designers.

CDFG-level passes (run on the built graph):

* :mod:`.constfold` — constant folding and algebraic identities;
* :mod:`.cse` — common-subexpression elimination within blocks;
* :mod:`.dce` — dead-code elimination;
* :mod:`.simplify` — CFG cleanup (jump threading, empty-block removal).
"""

from .inline import inline_program, InlineStats
from .unroll import unroll_loops, try_full_unroll
from .constfold import fold_constants
from .cse import eliminate_common_subexpressions
from .dce import eliminate_dead_code
from .narrow import NarrowReport, narrow_widths
from .simplify import simplify_cfg
from .pipeline import optimize, OptimizationReport

__all__ = [
    "InlineStats",
    "NarrowReport",
    "narrow_widths",
    "OptimizationReport",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "fold_constants",
    "inline_program",
    "optimize",
    "simplify_cfg",
    "try_full_unroll",
    "unroll_loops",
]
