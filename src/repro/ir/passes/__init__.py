"""Transformation passes.

AST-level passes (run before CDFG construction):

* :mod:`.inline` — exhaustive function inlining (bounded recursion);
* :mod:`.unroll` — loop unrolling, full or by a factor;
* :mod:`.recode` — the source-level rewrites ("recoding") the paper says
  implicit timing rules force on designers.

CDFG-level passes (run on the built graph):

* :mod:`.constfold` — constant folding and algebraic identities;
* :mod:`.cse` — common-subexpression elimination within blocks;
* :mod:`.dce` — dead-code elimination;
* :mod:`.simplify` — CFG cleanup (jump threading, empty-block removal);
* :mod:`.copyprop` — copy propagation (identity casts, constant selects,
  self-latches);
* :mod:`.memchain` — chain load/store elimination (store-to-load
  forwarding, redundant-store removal);
* :mod:`.deadvar` — liveness-driven dead-variable elimination
  (:mod:`repro.ir.liveness`).

Drivers:

* :func:`.pipeline.optimize` — the classic fold/CSE/DCE/simplify loop
  (opt_level 1);
* :func:`.fixpoint.run_fixpoint` — the full pass list with cached
  liveness, applied until quiescent (opt_level 2);
* :func:`.fixpoint.optimize_cdfg` — the opt_level dispatch flows call.
"""

from .inline import inline_program, InlineStats
from .unroll import unroll_loops, try_full_unroll
from .constfold import fold_constants
from .copyprop import propagate_copies
from .cse import eliminate_common_subexpressions
from .dce import eliminate_dead_code
from .deadvar import eliminate_dead_variables
from .memchain import eliminate_load_store_chains
from .narrow import NarrowReport, narrow_widths
from .simplify import simplify_cfg
from .pipeline import optimize, OptimizationReport
from .fixpoint import (
    DEFAULT_MAX_ITERATIONS,
    FIXPOINT_PASSES,
    FixpointReport,
    PassSpec,
    optimize_cdfg,
    run_fixpoint,
)

__all__ = [
    "DEFAULT_MAX_ITERATIONS",
    "FIXPOINT_PASSES",
    "FixpointReport",
    "InlineStats",
    "NarrowReport",
    "narrow_widths",
    "OptimizationReport",
    "PassSpec",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "eliminate_dead_variables",
    "eliminate_load_store_chains",
    "fold_constants",
    "inline_program",
    "optimize",
    "optimize_cdfg",
    "propagate_copies",
    "run_fixpoint",
    "simplify_cfg",
    "try_full_unroll",
    "unroll_loops",
]
