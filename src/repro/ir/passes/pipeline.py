"""The standard optimization pipeline run by every scheduled flow."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..cdfg import FunctionCDFG, validate
from .constfold import fold_constants
from .cse import eliminate_common_subexpressions
from .dce import eliminate_dead_code
from .simplify import simplify_cfg


@dataclass
class OptimizationReport:
    """Counts of what each pass did, summed over all iterations."""

    constants_folded: int = 0
    subexpressions_eliminated: int = 0
    dead_removed: int = 0
    cfg_changes: int = 0
    iterations: int = 0

    def total(self) -> int:
        return (
            self.constants_folded
            + self.subexpressions_eliminated
            + self.dead_removed
            + self.cfg_changes
        )


def optimize(cdfg: FunctionCDFG, max_iterations: int = 8) -> OptimizationReport:
    """Run fold/CSE/DCE/simplify to a fixed point (bounded).

    The passes enable each other — folding exposes dead code, CFG merging
    exposes CSE — so they loop until quiescent.
    """
    report = OptimizationReport()
    for _ in range(max_iterations):
        report.iterations += 1
        changed = 0
        folded = fold_constants(cdfg)
        report.constants_folded += folded
        changed += folded
        merged = simplify_cfg(cdfg)
        report.cfg_changes += merged
        changed += merged
        eliminated = eliminate_common_subexpressions(cdfg)
        report.subexpressions_eliminated += eliminated
        changed += eliminated
        removed = eliminate_dead_code(cdfg)
        report.dead_removed += removed
        changed += removed
        if not changed:
            break
    validate(cdfg)
    return report
