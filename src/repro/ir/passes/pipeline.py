"""The standard optimization pipeline run by every scheduled flow."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ...trace import ensure_trace
from ..cdfg import FunctionCDFG, validate
from .constfold import fold_constants
from .cse import eliminate_common_subexpressions
from .dce import eliminate_dead_code
from .simplify import simplify_cfg


@dataclass
class OptimizationReport:
    """Counts of what each pass did, summed over all iterations."""

    constants_folded: int = 0
    subexpressions_eliminated: int = 0
    dead_removed: int = 0
    cfg_changes: int = 0
    iterations: int = 0

    def total(self) -> int:
        return (
            self.constants_folded
            + self.subexpressions_eliminated
            + self.dead_removed
            + self.cfg_changes
        )


def optimize(
    cdfg: FunctionCDFG, max_iterations: int = 8, trace=None
) -> OptimizationReport:
    """Run fold/CSE/DCE/simplify to a fixed point (bounded).

    The passes enable each other — folding exposes dead code, CFG merging
    exposes CSE — so they loop until quiescent.  Per-pass spans (with the
    op counts they changed) land in ``trace`` when one is supplied.
    """
    t = ensure_trace(trace)
    report = OptimizationReport()
    ops_in = cdfg.op_count() if t.enabled else 0
    for _ in range(max_iterations):
        report.iterations += 1
        changed = 0
        with t.span("pass.constfold", cat="pass"):
            folded = fold_constants(cdfg)
            t.count(folded=folded)
        report.constants_folded += folded
        changed += folded
        with t.span("pass.simplify_cfg", cat="pass"):
            merged = simplify_cfg(cdfg)
            t.count(cfg_changes=merged)
        report.cfg_changes += merged
        changed += merged
        with t.span("pass.cse", cat="pass"):
            eliminated = eliminate_common_subexpressions(cdfg)
            t.count(eliminated=eliminated)
        report.subexpressions_eliminated += eliminated
        changed += eliminated
        with t.span("pass.dce", cat="pass"):
            removed = eliminate_dead_code(cdfg)
            t.count(removed=removed)
        report.dead_removed += removed
        changed += removed
        if not changed:
            break
    with t.span("pass.validate", cat="pass"):
        validate(cdfg)
    if t.enabled:
        t.count(
            iterations=report.iterations,
            ops_in=ops_in,
            ops_out=cdfg.op_count(),
        )
    return report
