"""Constant folding and algebraic simplification on the CDFG.

Folds pure operations whose operands are all constants (using the shared
machine arithmetic, so folding can never disagree with simulation), applies
the usual algebraic identities, and converts branches on constants into
jumps so that :mod:`.simplify` can prune the dead arm.
"""

from __future__ import annotations

from typing import Dict, Optional

from ...interp.machine import eval_binary, eval_unary, wrap
from ...lang.errors import InterpError
from ..cdfg import BasicBlock, FunctionCDFG
from ..ops import Branch, Const, Jump, Operand, Operation, OpKind, Ret, VReg


def _subst(operand: Operand, replacements: Dict[VReg, Operand]) -> Operand:
    if isinstance(operand, VReg) and operand in replacements:
        return replacements[operand]
    return operand


def _algebraic(op: Operation) -> Optional[Operand]:
    """Identity simplifications returning a replacement operand, if any."""
    if op.kind is not OpKind.BINARY or len(op.operands) != 2:
        return None
    a, b = op.operands
    a_const = a.value if isinstance(a, Const) else None
    b_const = b.value if isinstance(b, Const) else None
    result_type = op.dest.type if op.dest is not None else None
    if result_type is None:
        return None

    def same_type(x: Operand) -> bool:
        return x.type == result_type

    if op.op == "+":
        if a_const == 0 and same_type(b):
            return b
        if b_const == 0 and same_type(a):
            return a
    elif op.op == "-":
        if b_const == 0 and same_type(a):
            return a
    elif op.op == "*":
        if a_const == 1 and same_type(b):
            return b
        if b_const == 1 and same_type(a):
            return a
        if a_const == 0 or b_const == 0:
            return Const(0, result_type)
    elif op.op in ("&",):
        if a_const == 0 or b_const == 0:
            return Const(0, result_type)
    elif op.op in ("|", "^"):
        if a_const == 0 and same_type(b):
            return b
        if b_const == 0 and same_type(a):
            return a
    elif op.op in ("<<", ">>"):
        if b_const == 0 and same_type(a):
            return a
    return None


def _fold_block(block: BasicBlock) -> int:
    folded = 0
    replacements: Dict[VReg, Operand] = {}
    kept = []
    for op in block.ops:
        op.operands = [_subst(o, replacements) for o in op.operands]
        if op.dest is None:
            kept.append(op)
            continue
        constants = [o.value for o in op.operands if isinstance(o, Const)]
        all_const = len(constants) == len(op.operands) and op.operands
        try:
            if op.kind is OpKind.BINARY and all_const:
                value = eval_binary(op.op, constants[0], constants[1], op.dest.type)
                replacements[op.dest] = Const(value, op.dest.type)
                folded += 1
                continue
            if op.kind is OpKind.UNARY and all_const:
                value = eval_unary(op.op, constants[0], op.dest.type)
                replacements[op.dest] = Const(value, op.dest.type)
                folded += 1
                continue
            if op.kind is OpKind.CAST and all_const:
                replacements[op.dest] = Const(
                    wrap(constants[0], op.dest.type), op.dest.type
                )
                folded += 1
                continue
            if op.kind is OpKind.SELECT and isinstance(op.operands[0], Const):
                chosen = op.operands[1] if op.operands[0].value else op.operands[2]
                if chosen.type == op.dest.type:
                    replacements[op.dest] = chosen
                    folded += 1
                    continue
                rewritten = Operation(
                    kind=OpKind.CAST, dest=op.dest, operands=[chosen],
                    constraint=op.constraint,
                )
                kept.append(rewritten)
                continue
        except InterpError:
            # Folding would trap (e.g. division by zero); leave it for runtime.
            kept.append(op)
            continue
        simplified = _algebraic(op)
        if simplified is not None:
            replacements[op.dest] = simplified
            folded += 1
            continue
        kept.append(op)
    block.ops = kept
    block.var_writes = {
        var: _subst(value, replacements) for var, value in block.var_writes.items()
    }
    terminator = block.terminator
    if isinstance(terminator, Branch):
        terminator.cond = _subst(terminator.cond, replacements)
        if isinstance(terminator.cond, Const):
            target = terminator.if_true if terminator.cond.value else terminator.if_false
            block.terminator = Jump(target)
            folded += 1
    elif isinstance(terminator, Ret) and terminator.value is not None:
        terminator.value = _subst(terminator.value, replacements)
    return folded


def fold_constants(cdfg: FunctionCDFG) -> int:
    """Fold constants throughout; returns the number of simplifications."""
    return sum(_fold_block(block) for block in cdfg.blocks)
