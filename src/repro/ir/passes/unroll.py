"""Loop unrolling at the AST level.

Two uses, straight from the paper:

* **Cones** flattened *everything* — "loops, which it unrolled" — so the
  Cones flow calls :func:`try_full_unroll` and rejects programs whose loop
  bounds it cannot evaluate at compile time.
* **Transmogrifier C** charged one cycle per loop iteration, so "loops may
  need to be unrolled … to meet timing": the recoding experiments call
  :func:`unroll_loops` with a factor to regenerate that designer effort.

Only counted ``for`` loops with an affine induction pattern are touched:
``for (i = C0; i <op> C1; i += C2)`` where the body does not write ``i``
and contains no ``break``/``continue``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ...lang import ast_nodes as ast
from ...lang.symtab import Symbol
from ..astutils import Cloner, make_identifier, make_int_literal


@dataclass
class _CountedLoop:
    var: Symbol
    start: int
    step: int
    trip_count: int
    declares_var: bool


def _const_of(expr: ast.Expr) -> Optional[int]:
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.BoolLiteral):
        return int(expr.value)
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        inner = _const_of(expr.operand)
        return -inner if inner is not None else None
    return None


def _match_counted_loop(loop: ast.For) -> Optional[_CountedLoop]:
    # init: "T i = C" or "i = C"
    declares = False
    if isinstance(loop.init, ast.VarDecl) and loop.init.init is not None:
        var: Symbol = loop.init.symbol  # type: ignore[attr-defined]
        start = _const_of(loop.init.init)
        declares = True
    elif isinstance(loop.init, ast.Assign) and isinstance(loop.init.target, ast.Identifier):
        var = loop.init.target.symbol  # type: ignore[attr-defined]
        start = _const_of(loop.init.value)
    else:
        return None
    if start is None:
        return None
    # cond: "i < C" / "i <= C" / "i > C" / "i >= C" / "i != C"
    cond = loop.cond
    if not isinstance(cond, ast.BinaryOp) or not isinstance(cond.left, ast.Identifier):
        return None
    if cond.left.symbol is not var:  # type: ignore[attr-defined]
        return None
    bound = _const_of(cond.right)
    if bound is None:
        return None
    # step: "i = i + C" / "i = i - C" (the parser lowers i++, i += C to this)
    step_stmt = loop.step
    if not isinstance(step_stmt, ast.Assign) or not isinstance(
        step_stmt.target, ast.Identifier
    ):
        return None
    if step_stmt.target.symbol is not var:  # type: ignore[attr-defined]
        return None
    delta_expr = step_stmt.value
    if not isinstance(delta_expr, ast.BinaryOp) or not isinstance(
        delta_expr.left, ast.Identifier
    ):
        return None
    if delta_expr.left.symbol is not var:  # type: ignore[attr-defined]
        return None
    delta = _const_of(delta_expr.right)
    if delta is None or delta == 0:
        return None
    step = delta if delta_expr.op == "+" else -delta if delta_expr.op == "-" else None
    if step is None:
        return None
    # trip count
    count = _trip_count(start, cond.op, bound, step)
    if count is None:
        return None
    # safety: body must not write the induction variable or branch out
    for inner in ast.walk_stmts(loop.body):
        if isinstance(inner, (ast.Break, ast.Continue)):
            return None
        if isinstance(inner, ast.Assign) and isinstance(inner.target, ast.Identifier):
            if inner.target.symbol is var:  # type: ignore[attr-defined]
                return None
    return _CountedLoop(var=var, start=start, step=step, trip_count=count, declares_var=declares)


def loop_trip_count(loop: ast.For) -> Optional[int]:
    """The static trip count of ``loop``, or None if it is not a counted
    affine loop (the same test unrolling uses).  Public for the linter's
    unbounded-latency rule."""
    info = _match_counted_loop(loop)
    return info.trip_count if info is not None else None


def _trip_count(start: int, op: str, bound: int, step: int) -> Optional[int]:
    if op == "<" and step > 0:
        return max(0, -(-(bound - start) // step)) if bound > start else 0
    if op == "<=" and step > 0:
        return max(0, (bound - start) // step + 1) if bound >= start else 0
    if op == ">" and step < 0:
        return max(0, -(-(start - bound) // -step)) if start > bound else 0
    if op == ">=" and step < 0:
        return max(0, (start - bound) // -step + 1) if start >= bound else 0
    if op == "!=" and step != 0:
        diff = bound - start
        if diff % step == 0 and diff // step >= 0:
            return diff // step
    return None


def _expand_iteration(loop: ast.For, info: _CountedLoop, value: int) -> ast.Stmt:
    """The loop body with the induction variable pinned to ``value``."""
    literal = make_int_literal(value, info.var.type)
    cloner = Cloner(substitutions={info.var: literal})
    return cloner.stmt(loop.body)


def _fully_unroll(loop: ast.For, info: _CountedLoop, max_iterations: int) -> Optional[List[ast.Stmt]]:
    if info.trip_count > max_iterations:
        return None
    out: List[ast.Stmt] = []
    value = info.start
    for _ in range(info.trip_count):
        out.append(_expand_iteration(loop, info, value))
        value += info.step
    if not info.declares_var:
        # The variable outlives the loop: leave it holding its final value.
        out.append(
            ast.Assign(
                target=make_identifier(info.var),
                value=make_int_literal(value, info.var.type),
            )
        )
    return out


def _partially_unroll(loop: ast.For, info: _CountedLoop, factor: int) -> Optional[ast.Stmt]:
    if factor <= 1 or info.trip_count % factor != 0:
        return None
    # Body repeated `factor` times, iteration k reading (i + k*step); the
    # step then advances by factor*step.
    repeats: List[ast.Stmt] = []
    for k in range(factor):
        if k == 0:
            repeats.append(Cloner().stmt(loop.body))
        else:
            offset = ast.BinaryOp(
                op="+",
                left=make_identifier(info.var),
                right=make_int_literal(k * info.step, info.var.type),
            )
            offset.type = info.var.type
            cloner = Cloner(substitutions={info.var: offset})
            repeats.append(cloner.stmt(loop.body))
    new_step = ast.Assign(
        target=make_identifier(info.var),
        value=_add_const(make_identifier(info.var), factor * info.step, info.var.type),
    )
    return ast.For(
        init=loop.init,
        cond=loop.cond,
        step=new_step,
        body=ast.Block(statements=repeats),
        location=loop.location,
    )


def _add_const(expr: ast.Expr, value: int, expr_type) -> ast.Expr:
    out = ast.BinaryOp(op="+", left=expr, right=make_int_literal(value, expr_type))
    out.type = expr_type
    return out


class _UnrollRewriter:
    def __init__(self, factor: Optional[int], full: bool, max_iterations: int):
        self.factor = factor
        self.full = full
        self.max_iterations = max_iterations
        self.unrolled = 0
        self.failed = 0

    def rewrite_stmt(self, stmt: ast.Stmt) -> List[ast.Stmt]:
        if isinstance(stmt, ast.Block):
            return [self.rewrite_block(stmt)]
        if isinstance(stmt, ast.If):
            then = self._single(stmt.then)
            otherwise = self._single(stmt.otherwise) if stmt.otherwise is not None else None
            return [ast.If(cond=stmt.cond, then=then, otherwise=otherwise, location=stmt.location)]
        if isinstance(stmt, ast.While):
            self.failed += 1 if self.full else 0
            return [ast.While(cond=stmt.cond, body=self._single(stmt.body), location=stmt.location)]
        if isinstance(stmt, ast.DoWhile):
            self.failed += 1 if self.full else 0
            return [ast.DoWhile(body=self._single(stmt.body), cond=stmt.cond, location=stmt.location)]
        if isinstance(stmt, ast.For):
            # Unroll inner loops first so nested counted loops flatten fully.
            body = self._single(stmt.body)
            loop = ast.For(
                init=stmt.init, cond=stmt.cond, step=stmt.step, body=body,
                location=stmt.location,
            )
            info = _match_counted_loop(loop)
            if info is None:
                self.failed += 1
                return [loop]
            if self.full:
                expansion = _fully_unroll(loop, info, self.max_iterations)
                if expansion is None:
                    self.failed += 1
                    return [loop]
                self.unrolled += 1
                return expansion
            assert self.factor is not None
            partial = _partially_unroll(loop, info, self.factor)
            if partial is None:
                self.failed += 1
                return [loop]
            self.unrolled += 1
            return [partial]
        if isinstance(stmt, ast.Par):
            return [
                ast.Par(
                    branches=[self._single(b) for b in stmt.branches],
                    location=stmt.location,
                )
            ]
        if isinstance(stmt, ast.Seq):
            return [ast.Seq(body=self.rewrite_block(stmt.body), location=stmt.location)]
        if isinstance(stmt, ast.Within):
            return [
                ast.Within(
                    cycles=stmt.cycles,
                    body=self.rewrite_block(stmt.body),
                    location=stmt.location,
                )
            ]
        return [stmt]

    def _single(self, stmt: ast.Stmt) -> ast.Stmt:
        out = self.rewrite_stmt(stmt)
        if len(out) == 1:
            return out[0]
        return ast.Block(statements=out)

    def rewrite_block(self, block: ast.Block) -> ast.Block:
        out: List[ast.Stmt] = []
        for stmt in block.statements:
            out.extend(self.rewrite_stmt(stmt))
        return ast.Block(statements=out, location=block.location)


def unroll_loops(
    fn: ast.FunctionDef, factor: int, max_iterations: int = 4096
) -> Tuple[ast.FunctionDef, int]:
    """Partially unroll counted loops by ``factor``.  Returns the new
    function and the number of loops transformed."""
    rewriter = _UnrollRewriter(factor=factor, full=False, max_iterations=max_iterations)
    body = rewriter.rewrite_block(fn.body)
    out = ast.FunctionDef(
        name=fn.name, return_type=fn.return_type, params=fn.params, body=body,
        is_process=fn.is_process, location=fn.location,
    )
    return out, rewriter.unrolled


def try_full_unroll(
    fn: ast.FunctionDef, max_iterations: int = 4096
) -> Tuple[ast.FunctionDef, int, int]:
    """Fully unroll every counted loop.  Returns (new_function,
    loops_unrolled, loops_that_resisted); the caller decides whether
    resisting loops are fatal (they are for the Cones flow)."""
    rewriter = _UnrollRewriter(factor=None, full=True, max_iterations=max_iterations)
    body = rewriter.rewrite_block(fn.body)
    out = ast.FunctionDef(
        name=fn.name, return_type=fn.return_type, params=fn.params, body=body,
        is_process=fn.is_process, location=fn.location,
    )
    return out, rewriter.unrolled, rewriter.failed
