"""Exhaustive function inlining at the AST level.

Every synthesis flow in this framework inlines calls before building
hardware — exactly what Cones, Transmogrifier C, and CASH did, and what
C2Verilog did for bounded recursion.  After this pass the root function
contains no :class:`~repro.lang.ast_nodes.Call` nodes.

Calls buried inside expressions are *hoisted*: the callee's body is spliced
in front of the enclosing statement and the call is replaced by a reference
to a fresh result variable.  Lazy contexts (``&&``/``||`` right-hand sides,
conditional-expression arms, loop conditions) are first lowered into
explicit control flow so that C's evaluation-order guarantees survive.

Recursion is handled by bounded unrolling of the call tree: each nested
call adds one to the depth, and exceeding ``max_depth`` raises
:class:`InlineBudgetExceeded`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...lang import ast_nodes as ast
from ...lang.errors import SemanticError
from ...lang.semantic import SemanticInfo
from ...lang.symtab import Symbol, SymbolKind
from ...lang.types import ArrayType, BOOL, ChannelType, PointerType, VoidType
from ..astutils import (
    Cloner,
    contains_return,
    eliminate_returns,
    fresh_symbol,
    make_identifier,
)


class InlineBudgetExceeded(SemanticError):
    """Recursion deeper than the inliner's budget (a true hardware compiler
    would need a runtime stack here, which the surveyed tools lacked)."""


@dataclass
class InlineStats:
    calls_inlined: int = 0
    max_depth_used: int = 0
    truncated_calls: int = 0
    per_callee: Dict[str, int] = field(default_factory=dict)


def _expr_has_call(expr: ast.Expr) -> bool:
    return any(isinstance(e, ast.Call) for e in ast.walk_expr(expr))


class _Inliner:
    def __init__(
        self,
        program: ast.Program,
        max_depth: int,
        max_calls: int,
        call_boundary: bool = False,
    ):
        self.program = program
        self.max_depth = max_depth
        self.max_calls = max_calls
        # Transmogrifier C charges one clock cycle per function call; with
        # call_boundary the inliner marks each spliced call with a wait().
        self.call_boundary = call_boundary
        self.stats = InlineStats()

    # -- driver -------------------------------------------------------------

    def inline_function(self, fn: ast.FunctionDef) -> ast.FunctionDef:
        body = self._inline_block(fn.body, depth=0)
        return ast.FunctionDef(
            name=fn.name,
            return_type=fn.return_type,
            params=fn.params,
            body=body,
            is_process=fn.is_process,
            location=fn.location,
        )

    def _inline_block(self, block: ast.Block, depth: int) -> ast.Block:
        out: List[ast.Stmt] = []
        for stmt in block.statements:
            self._inline_stmt(stmt, depth, out)
        return ast.Block(statements=out, location=block.location)

    # -- statements ----------------------------------------------------------

    def _inline_stmt(self, stmt: ast.Stmt, depth: int, out: List[ast.Stmt]) -> None:
        if isinstance(stmt, ast.Block):
            out.append(self._inline_block(stmt, depth))
        elif isinstance(stmt, ast.VarDecl):
            prelude: List[ast.Stmt] = []
            init = (
                self._rewrite_expr(stmt.init, depth, prelude)
                if stmt.init is not None
                else None
            )
            array_init = (
                [self._rewrite_expr(e, depth, prelude) for e in stmt.array_init]
                if stmt.array_init is not None
                else None
            )
            out.extend(prelude)
            clone = ast.VarDecl(
                name=stmt.name,
                var_type=stmt.var_type,
                init=init,
                array_init=array_init,
                is_const=stmt.is_const,
                location=stmt.location,
            )
            clone.symbol = stmt.symbol  # type: ignore[attr-defined]
            out.append(clone)
        elif isinstance(stmt, ast.Assign):
            prelude = []
            value = self._rewrite_expr(stmt.value, depth, prelude)
            target = self._rewrite_expr(stmt.target, depth, prelude)
            out.extend(prelude)
            out.append(ast.Assign(target=target, value=value, location=stmt.location))
        elif isinstance(stmt, ast.ExprStmt):
            prelude = []
            expr = self._rewrite_expr(stmt.expr, depth, prelude)
            out.extend(prelude)
            # A lone call's result (if any) is discarded; the prelude holds
            # the inlined body, so keep only expressions with residue.
            if not isinstance(expr, ast.Identifier) or not prelude:
                out.append(ast.ExprStmt(expr=expr, location=stmt.location))
        elif isinstance(stmt, ast.If):
            prelude = []
            cond = self._rewrite_expr(stmt.cond, depth, prelude)
            out.extend(prelude)
            then = self._inline_substmt(stmt.then, depth)
            otherwise = (
                self._inline_substmt(stmt.otherwise, depth)
                if stmt.otherwise is not None
                else None
            )
            out.append(
                ast.If(cond=cond, then=then, otherwise=otherwise, location=stmt.location)
            )
        elif isinstance(stmt, ast.While):
            out.append(self._inline_while(stmt, depth))
        elif isinstance(stmt, ast.DoWhile):
            out.append(self._inline_do_while(stmt, depth))
        elif isinstance(stmt, ast.For):
            self._inline_for(stmt, depth, out)
        elif isinstance(stmt, ast.Return):
            prelude = []
            value = (
                self._rewrite_expr(stmt.value, depth, prelude)
                if stmt.value is not None
                else None
            )
            out.extend(prelude)
            out.append(ast.Return(value=value, location=stmt.location))
        elif isinstance(stmt, (ast.Break, ast.Continue, ast.Wait, ast.Delay)):
            out.append(stmt)
        elif isinstance(stmt, ast.Par):
            out.append(
                ast.Par(
                    branches=[self._inline_substmt(b, depth) for b in stmt.branches],
                    location=stmt.location,
                )
            )
        elif isinstance(stmt, ast.Seq):
            out.append(
                ast.Seq(body=self._inline_block(stmt.body, depth), location=stmt.location)
            )
        elif isinstance(stmt, ast.Within):
            inlined = self._inline_block(stmt.body, depth)
            for inner in ast.walk_stmts(inlined):
                for expr in ast.stmt_expressions(inner):
                    if _expr_has_call(expr):
                        raise SemanticError(
                            "calls inside within blocks cannot be inlined"
                            " without breaking the constraint group",
                            stmt.location,
                        )
            out.append(
                ast.Within(cycles=stmt.cycles, body=inlined, location=stmt.location)
            )
        elif isinstance(stmt, ast.Send):
            prelude = []
            value = self._rewrite_expr(stmt.value, depth, prelude)
            out.extend(prelude)
            clone = ast.Send(channel=stmt.channel, value=value, location=stmt.location)
            if hasattr(stmt, "symbol"):
                clone.symbol = stmt.symbol  # type: ignore[attr-defined]
            out.append(clone)
        else:
            raise SemanticError(
                f"inliner cannot handle {type(stmt).__name__}", stmt.location
            )

    def _inline_substmt(self, stmt: ast.Stmt, depth: int) -> ast.Stmt:
        out: List[ast.Stmt] = []
        self._inline_stmt(stmt, depth, out)
        if len(out) == 1:
            return out[0]
        return ast.Block(statements=out, location=stmt.location)

    def _inline_while(self, stmt: ast.While, depth: int) -> ast.Stmt:
        if not _expr_has_call(stmt.cond):
            return ast.While(
                cond=stmt.cond,
                body=self._inline_substmt(stmt.body, depth),
                location=stmt.location,
            )
        # while (f(...)) body  =>  while (true) { t = cond; if (!t) break; body }
        prelude: List[ast.Stmt] = []
        cond = self._rewrite_expr(stmt.cond, depth, prelude)
        not_cond = ast.UnaryOp(op="!", operand=cond)
        not_cond.type = BOOL
        escape = ast.If(cond=not_cond, then=ast.Break())
        body = self._inline_substmt(stmt.body, depth)
        true_lit = ast.BoolLiteral(value=True)
        true_lit.type = BOOL
        return ast.While(
            cond=true_lit,
            body=ast.Block(statements=prelude + [escape, body]),
            location=stmt.location,
        )

    def _inline_do_while(self, stmt: ast.DoWhile, depth: int) -> ast.Stmt:
        if not _expr_has_call(stmt.cond):
            return ast.DoWhile(
                body=self._inline_substmt(stmt.body, depth),
                cond=stmt.cond,
                location=stmt.location,
            )
        prelude: List[ast.Stmt] = []
        cond = self._rewrite_expr(stmt.cond, depth, prelude)
        not_cond = ast.UnaryOp(op="!", operand=cond)
        not_cond.type = BOOL
        escape = ast.If(cond=not_cond, then=ast.Break())
        body = self._inline_substmt(stmt.body, depth)
        true_lit = ast.BoolLiteral(value=True)
        true_lit.type = BOOL
        return ast.While(
            cond=true_lit,
            body=ast.Block(statements=[body] + prelude + [escape]),
            location=stmt.location,
        )

    def _inline_for(self, stmt: ast.For, depth: int, out: List[ast.Stmt]) -> None:
        if stmt.cond is not None and _expr_has_call(stmt.cond):
            # Desugar into a while loop, then reuse the while logic.
            body_parts: List[ast.Stmt] = [stmt.body]
            if stmt.step is not None:
                body_parts.append(stmt.step)
            desugared = ast.While(
                cond=stmt.cond,
                body=ast.Block(statements=body_parts),
                location=stmt.location,
            )
            if stmt.init is not None:
                self._inline_stmt(stmt.init, depth, out)
            out.append(self._inline_while(desugared, depth))
            return
        init: Optional[ast.Stmt] = None
        if stmt.init is not None:
            init_out: List[ast.Stmt] = []
            self._inline_stmt(stmt.init, depth, init_out)
            if len(init_out) == 1:
                init = init_out[0]
            else:
                out.extend(init_out[:-1])
                init = init_out[-1]
        step: Optional[ast.Stmt] = None
        if stmt.step is not None:
            step = self._inline_substmt(stmt.step, depth)
            if isinstance(step, ast.Block):
                # A call in the step would need splicing inside the loop;
                # desugar conservatively.
                body = ast.Block(statements=[stmt.body, step])
                out.append(
                    ast.For(
                        init=init, cond=stmt.cond, step=None,
                        body=self._inline_block(body, depth),
                        location=stmt.location,
                    )
                )
                return
        out.append(
            ast.For(
                init=init,
                cond=stmt.cond,
                step=step,
                body=self._inline_substmt(stmt.body, depth),
                location=stmt.location,
            )
        )

    # -- expressions ----------------------------------------------------------

    def _rewrite_expr(
        self, expr: ast.Expr, depth: int, prelude: List[ast.Stmt]
    ) -> ast.Expr:
        if isinstance(expr, (ast.IntLiteral, ast.BoolLiteral, ast.Identifier, ast.Receive)):
            return expr
        if isinstance(expr, ast.Call):
            return self._inline_call(expr, depth, prelude)
        if isinstance(expr, ast.UnaryOp):
            operand = self._rewrite_expr(expr.operand, depth, prelude)
            if operand is expr.operand:
                return expr
            clone = ast.UnaryOp(op=expr.op, operand=operand, location=expr.location)
            clone.type = expr.type
            return clone
        if isinstance(expr, ast.ArrayIndex):
            base = self._rewrite_expr(expr.base, depth, prelude)
            index = self._rewrite_expr(expr.index, depth, prelude)
            if base is expr.base and index is expr.index:
                return expr
            clone = ast.ArrayIndex(base=base, index=index, location=expr.location)
            clone.type = expr.type
            return clone
        if isinstance(expr, ast.BinaryOp):
            if expr.op in ("&&", "||") and _expr_has_call(expr.right):
                return self._lower_lazy_binary(expr, depth, prelude)
            left = self._rewrite_expr(expr.left, depth, prelude)
            right = self._rewrite_expr(expr.right, depth, prelude)
            if left is expr.left and right is expr.right:
                return expr
            clone = ast.BinaryOp(op=expr.op, left=left, right=right, location=expr.location)
            clone.type = expr.type
            return clone
        if isinstance(expr, ast.Conditional):
            if _expr_has_call(expr.then) or _expr_has_call(expr.otherwise):
                return self._lower_lazy_conditional(expr, depth, prelude)
            cond = self._rewrite_expr(expr.cond, depth, prelude)
            if cond is expr.cond:
                return expr
            clone = ast.Conditional(
                cond=cond, then=expr.then, otherwise=expr.otherwise, location=expr.location
            )
            clone.type = expr.type
            return clone
        raise SemanticError(
            f"inliner cannot rewrite {type(expr).__name__}", expr.location
        )

    def _lower_lazy_binary(
        self, expr: ast.BinaryOp, depth: int, prelude: List[ast.Stmt]
    ) -> ast.Expr:
        """``a && f(b)`` => ``bool t = false/true; t = a; if (t) t = f(b)!=0``."""
        result = fresh_symbol("shortcircuit", BOOL)
        self._declare(result, prelude)
        left = self._rewrite_expr(expr.left, depth, prelude)
        as_bool_left = self._as_bool(left)
        prelude.append(ast.Assign(target=make_identifier(result), value=as_bool_left))
        rhs_prelude: List[ast.Stmt] = []
        right = self._rewrite_expr(expr.right, depth, rhs_prelude)
        assign_rhs = ast.Assign(target=make_identifier(result), value=self._as_bool(right))
        guarded_body = ast.Block(statements=rhs_prelude + [assign_rhs])
        if expr.op == "&&":
            prelude.append(ast.If(cond=make_identifier(result), then=guarded_body))
        else:
            negated = ast.UnaryOp(op="!", operand=make_identifier(result))
            negated.type = BOOL
            prelude.append(ast.If(cond=negated, then=guarded_body))
        return make_identifier(result)

    def _lower_lazy_conditional(
        self, expr: ast.Conditional, depth: int, prelude: List[ast.Stmt]
    ) -> ast.Expr:
        assert expr.type is not None
        result = fresh_symbol("select", expr.type)
        self._declare(result, prelude)
        cond = self._rewrite_expr(expr.cond, depth, prelude)
        then_prelude: List[ast.Stmt] = []
        then_value = self._rewrite_expr(expr.then, depth, then_prelude)
        else_prelude: List[ast.Stmt] = []
        else_value = self._rewrite_expr(expr.otherwise, depth, else_prelude)
        prelude.append(
            ast.If(
                cond=cond,
                then=ast.Block(
                    statements=then_prelude
                    + [ast.Assign(target=make_identifier(result), value=then_value)]
                ),
                otherwise=ast.Block(
                    statements=else_prelude
                    + [ast.Assign(target=make_identifier(result), value=else_value)]
                ),
            )
        )
        return make_identifier(result)

    @staticmethod
    def _as_bool(expr: ast.Expr) -> ast.Expr:
        zero = ast.IntLiteral(value=0)
        zero.type = expr.type
        test = ast.BinaryOp(op="!=", left=expr, right=zero)
        test.type = BOOL
        return test

    @staticmethod
    def _declare(symbol: Symbol, prelude: List[ast.Stmt]) -> None:
        decl = ast.VarDecl(name=symbol.name, var_type=symbol.type)
        decl.symbol = symbol  # type: ignore[attr-defined]
        prelude.append(decl)

    # -- the actual call splice -------------------------------------------

    def _inline_call(
        self, call: ast.Call, depth: int, prelude: List[ast.Stmt]
    ) -> ast.Expr:
        if depth >= self.max_depth:
            # Bounded-recursion semantics: beyond the unrolled depth the
            # hardware has no stack frame left, so the deepest call yields
            # zero.  Inputs that would actually recurse this deep produce
            # wrong answers — callers size max_depth for their inputs, as
            # C2Verilog users sized their implicit stacks.
            fn = self.program.function(call.callee)
            self.stats.truncated_calls += 1
            if isinstance(fn.return_type, VoidType):
                return make_identifier(fresh_symbol("void", fn.return_type))
            zero = ast.IntLiteral(value=0, location=call.location)
            zero.type = fn.return_type
            return zero
        if self.stats.calls_inlined >= self.max_calls:
            raise InlineBudgetExceeded(
                f"inlining exceeded the budget of {self.max_calls} call sites"
                " (non-linear recursion explodes exponentially; a real"
                " compiler would need a runtime stack here)",
                call.location,
            )
        fn = self.program.function(call.callee)
        self.stats.calls_inlined += 1
        self.stats.max_depth_used = max(self.stats.max_depth_used, depth + 1)
        self.stats.per_callee[call.callee] = self.stats.per_callee.get(call.callee, 0) + 1
        if self.call_boundary:
            prelude.append(ast.Wait(location=call.location))

        symbol_map: Dict[Symbol, Symbol] = {}
        substitutions: Dict[Symbol, ast.Expr] = {}
        for param, arg in zip(fn.params, call.args):
            param_symbol: Symbol = param.symbol  # type: ignore[attr-defined]
            arg = self._rewrite_expr(arg, depth, prelude)
            if isinstance(param_symbol.type, (ArrayType, PointerType)):
                substitutions[param_symbol] = arg
            elif isinstance(param_symbol.type, ChannelType):
                if not isinstance(arg, ast.Identifier):
                    raise SemanticError(
                        "channel arguments must be channel names", arg.location
                    )
                symbol_map[param_symbol] = arg.symbol  # type: ignore[attr-defined]
            else:
                local = fresh_symbol(param_symbol.name, param_symbol.type)
                decl = ast.VarDecl(
                    name=local.name, var_type=local.type, init=arg, location=call.location
                )
                decl.symbol = local  # type: ignore[attr-defined]
                prelude.append(decl)
                symbol_map[param_symbol] = local

        cloned = Cloner(symbol_map, substitutions).stmt(fn.body)
        assert isinstance(cloned, ast.Block)

        returns_value = not isinstance(fn.return_type, VoidType)
        result_symbol: Optional[Symbol] = None
        if returns_value:
            result_symbol = fresh_symbol(f"{fn.name}_ret", fn.return_type)
            self._declare(result_symbol, prelude)
        if contains_return(cloned):
            done = fresh_symbol(f"{fn.name}_done", BOOL)
            self._declare(done, prelude)
            cloned = eliminate_returns(cloned, result_symbol, done)
        body = self._inline_block(cloned, depth + 1)
        prelude.append(body)
        if returns_value:
            assert result_symbol is not None
            return make_identifier(result_symbol)
        # Void call in expression position can only be an ExprStmt.
        return make_identifier(fresh_symbol("void", fn.return_type))


def inline_program(
    program: ast.Program,
    info: SemanticInfo,
    roots: Optional[List[str]] = None,
    max_depth: int = 32,
    max_calls: int = 20_000,
    call_boundary: bool = False,
):
    """Inline all calls reachable from ``roots`` (default: ``main`` plus all
    ``process`` functions).  Returns ``(new_program, stats)``; the original
    program is left untouched.  Globals and channels are shared by symbol, so
    results of running the new program are directly comparable.

    Recursion is unrolled up to ``max_depth`` nested inlines; non-linear
    recursion additionally hits ``max_calls`` quickly and raises
    :class:`InlineBudgetExceeded` — the honest outcome, since the surveyed
    compilers either rejected recursion outright (Cyber, Transmogrifier C)
    or implemented it with a runtime stack (C2Verilog)."""
    import sys

    if roots is None:
        roots = []
        names = {fn.name for fn in program.functions}
        if "main" in names:
            roots.append("main")
        roots.extend(p.name for p in program.processes if p.name not in roots)
    inliner = _Inliner(program, max_depth, max_calls, call_boundary=call_boundary)
    limit = sys.getrecursionlimit()
    if limit < 20_000:
        sys.setrecursionlimit(20_000)
    try:
        new_functions = [inliner.inline_function(program.function(r)) for r in roots]
    finally:
        sys.setrecursionlimit(limit)
    new_program = ast.Program(
        functions=new_functions,
        globals=program.globals,
        channels=program.channels,
        location=program.location,
    )
    return new_program, inliner.stats
