"""Chain load/store elimination within basic blocks.

Two block-local memory optimizations that :mod:`.cse` (which only merges
load/load pairs) cannot express:

* **store-to-load forwarding** — ``store a[k] = v`` followed by
  ``x = load a[k]`` with a syntactically identical index and no
  intervening store to ``a`` or fence rewrites every use of ``x`` to
  ``v``.  The store itself stays (memory must still be updated); the
  load disappears, freeing a memory-port slot in the schedule.
* **redundant-store removal** — ``store a[k] = v1`` superseded by a
  later ``store a[k] = v2`` in the same block, with *no* load from ``a``
  in between (any load from the array may alias — index keys prove
  equality, never disequality) and no fence, deletes the earlier store.
  Final memory contents are bit-identical.

Both rules count removed memory operations so the port-occupancy
statistics behind TIM302 reflect traffic the hardware would actually
issue, not traffic the mid-end already proved away.

Safety notes:

* Index equality uses :func:`repro.ir.passes.cse._operand_key` — Consts
  by value+type, VarReads by register (stable across the block: VarRead
  is the block-entry value), VRegs by identity.
* Forwarding additionally requires the stored value's static type to
  equal the load destination's type: loads return the raw stored word,
  so a type-changing forward would skip the wrap a CAST performs.
* Stores to *global* arrays are never removed: a concurrently running
  process may observe the intermediate memory state between the two
  stores.  Forwarding from a global-array store is allowed — it reasons
  about values already read within one machine's block, the same
  single-machine stance block-local load/load CSE already takes.
* Fences (send/recv/wait/delay/call) clobber all tracked state, exactly
  as they version memory in CSE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ...lang.symtab import SymbolKind
from ..cdfg import BasicBlock, FunctionCDFG
from ..ops import Branch, Operand, Operation, OpKind, Ret, VReg
from .cse import _operand_key


@dataclass
class _PendingStore:
    op: Operation
    index_key: Tuple
    value: Operand
    observed: bool = False  # a later load from this array may have read it


def _chain_block(block: BasicBlock) -> Tuple[int, int]:
    forwarded = 0
    stores_removed = 0
    pending: Dict[str, _PendingStore] = {}
    replacements: Dict[VReg, Operand] = {}
    kept = []
    drop = set()

    def substitute(operand: Operand) -> Operand:
        if isinstance(operand, VReg):
            return replacements.get(operand, operand)
        return operand

    for op in block.ops:
        op.operands = [substitute(o) for o in op.operands]
        if op.kind is OpKind.LOAD and op.array is not None and op.dest is not None:
            name = op.array.unique_name
            last = pending.get(name)
            if (
                last is not None
                and last.index_key == _operand_key(op.operands[0])
                and last.value.type == op.dest.type
            ):
                replacements[op.dest] = last.value
                forwarded += 1
                continue  # drop the load
            if last is not None:
                last.observed = True
        elif op.kind is OpKind.STORE and op.array is not None:
            name = op.array.unique_name
            index_key = _operand_key(op.operands[0])
            last = pending.get(name)
            # A store to an unproven-distinct address, or one that may
            # already have been read, must stay.
            if (
                last is not None
                and last.index_key == index_key
                and not last.observed
                and op.array.kind is not SymbolKind.GLOBAL
            ):
                drop.add(last.op)
                stores_removed += 1
            pending[name] = _PendingStore(op, index_key, op.operands[1])
        elif op.is_fence():
            pending.clear()
        kept.append(op)

    if drop:
        kept = [op for op in kept if op not in drop]
    block.ops = kept
    block.var_writes = {
        var: substitute(value) for var, value in block.var_writes.items()
    }
    terminator = block.terminator
    if isinstance(terminator, Branch):
        terminator.cond = substitute(terminator.cond)
    elif isinstance(terminator, Ret) and terminator.value is not None:
        terminator.value = substitute(terminator.value)
    return forwarded, stores_removed


def eliminate_load_store_chains(cdfg: FunctionCDFG) -> int:
    """Forward store-to-load pairs and delete superseded stores.

    Returns the number of memory operations removed.
    """
    removed = 0
    for block in cdfg.blocks:
        forwarded, stores_removed = _chain_block(block)
        removed += forwarded + stores_removed
    return removed
