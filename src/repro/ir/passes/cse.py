"""Common-subexpression elimination within basic blocks.

Pure operations (arithmetic, casts, selects) with identical operands are
merged.  Loads participate too, versioned by the store/fence history of
their memory: two loads from the same address with no intervening store to
that memory (or fence) collapse into one — the basic memory-reuse
optimization an HLS compiler needs for array-heavy kernels.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..cdfg import BasicBlock, FunctionCDFG
from ..ops import Branch, Const, Operand, Operation, OpKind, Ret, VReg, VarRead


def _operand_key(operand: Operand) -> Tuple:
    if isinstance(operand, Const):
        return ("const", operand.value, str(operand.type))
    if isinstance(operand, VarRead):
        return ("var", operand.var.unique_name)
    return ("vreg", operand.id)


def _cse_block(block: BasicBlock) -> int:
    eliminated = 0
    table: Dict[Tuple, VReg] = {}
    replacements: Dict[VReg, VReg] = {}
    memory_version: Dict[str, int] = {}
    kept = []

    def version_of(array) -> int:
        return memory_version.get(array.unique_name, 0)

    for op in block.ops:
        op.operands = [
            replacements.get(o, o) if isinstance(o, VReg) else o for o in op.operands
        ]
        key: Optional[Tuple] = None
        if op.kind in (OpKind.BINARY, OpKind.UNARY, OpKind.CAST, OpKind.SELECT):
            key = (
                op.kind.value, op.op,
                str(op.dest.type) if op.dest is not None else "",
                tuple(_operand_key(o) for o in op.operands),
            )
        elif op.kind is OpKind.LOAD and op.array is not None:
            key = (
                "load", op.array.unique_name, version_of(op.array),
                str(op.dest.type) if op.dest is not None else "",
                tuple(_operand_key(o) for o in op.operands),
            )
        if key is not None and op.dest is not None:
            existing = table.get(key)
            if existing is not None and existing.type == op.dest.type:
                replacements[op.dest] = existing
                eliminated += 1
                continue
            table[key] = op.dest
        if op.kind is OpKind.STORE and op.array is not None:
            memory_version[op.array.unique_name] = version_of(op.array) + 1
        elif op.is_fence():
            for name in list(memory_version):
                memory_version[name] += 1
            # Fences also invalidate every memoized load (conservative).
            table = {
                k: v for k, v in table.items() if k and k[0] != "load"
            }
        kept.append(op)

    block.ops = kept
    block.var_writes = {
        var: replacements.get(value, value) if isinstance(value, VReg) else value
        for var, value in block.var_writes.items()
    }
    terminator = block.terminator
    if isinstance(terminator, Branch) and isinstance(terminator.cond, VReg):
        terminator.cond = replacements.get(terminator.cond, terminator.cond)
    elif isinstance(terminator, Ret) and isinstance(terminator.value, VReg):
        terminator.value = replacements.get(terminator.value, terminator.value)
    return eliminated


def eliminate_common_subexpressions(cdfg: FunctionCDFG) -> int:
    """Run block-local CSE; returns the number of operations removed."""
    return sum(_cse_block(block) for block in cdfg.blocks)
