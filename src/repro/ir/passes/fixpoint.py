"""Fixpoint driver for the optimizing mid-end, and the opt_level dispatch.

``run_fixpoint`` applies a declared pass list round-robin until a full
sweep reports no changes.  Passes declare whether they consume liveness;
the driver computes it lazily, caches it, and recomputes only after a
pass that changed the CDFG invalidated it — the counter for how often
that happens lands in the trace alongside per-pass and per-iteration
spans.

``optimize_cdfg`` is the single entry point flows use, mapping the
:class:`repro.api.SynthesisOptions` ``opt_level`` knob onto a pipeline:

* ``0`` — no optimization (structural validation only);
* ``1`` — the classic fold/CSE/DCE/simplify loop (:func:`.pipeline.optimize`);
* ``2+`` — this fixpoint driver with the liveness-consuming passes
  (dead-variable elimination, chain load/store elimination, copy
  propagation) added to the classic list.

Width narrowing stays a separate knob layered on top by the scheduled
flow at level 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ...trace import ensure_trace
from ..cdfg import FunctionCDFG, validate
from ..liveness import LivenessInfo, compute_liveness
from .constfold import fold_constants
from .copyprop import propagate_copies
from .cse import eliminate_common_subexpressions
from .dce import eliminate_dead_code
from .deadvar import eliminate_dead_variables
from .memchain import eliminate_load_store_chains
from .pipeline import OptimizationReport, optimize
from .simplify import simplify_cfg


@dataclass(frozen=True)
class PassSpec:
    """One mid-end pass: a name and a callable returning a change count."""

    name: str
    run: Callable[[FunctionCDFG, Optional[LivenessInfo]], int]
    needs_liveness: bool = False


def _plain(fn: Callable[[FunctionCDFG], int]):
    return lambda cdfg, liveness: fn(cdfg)


#: The level-2 pipeline.  Ordering matters for convergence speed, not
#: correctness: folding exposes copies, simplify merges blocks so the
#: block-local passes see longer regions, copy/chain elimination feed
#: dead-variable and dead-code sweeps.
FIXPOINT_PASSES: Tuple[PassSpec, ...] = (
    PassSpec("constfold", _plain(fold_constants)),
    PassSpec("simplify_cfg", _plain(simplify_cfg)),
    PassSpec("cse", _plain(eliminate_common_subexpressions)),
    PassSpec("copyprop", _plain(propagate_copies)),
    PassSpec("memchain", _plain(eliminate_load_store_chains)),
    PassSpec("deadvar", eliminate_dead_variables, needs_liveness=True),
    PassSpec("dce", _plain(eliminate_dead_code)),
)

#: Any fuzz-grammar program converges well under this; the convergence
#: property test pins it.
DEFAULT_MAX_ITERATIONS = 25


@dataclass
class FixpointReport:
    """What the driver did: per-pass change counts plus convergence data."""

    iterations: int = 0
    converged: bool = False
    liveness_recomputes: int = 0
    ops_in: int = 0
    ops_out: int = 0
    pass_counts: Dict[str, int] = field(default_factory=dict)

    def total(self) -> int:
        return sum(self.pass_counts.values())


def run_fixpoint(
    cdfg: FunctionCDFG,
    passes: Tuple[PassSpec, ...] = FIXPOINT_PASSES,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    trace=None,
) -> FixpointReport:
    """Apply ``passes`` until a full sweep changes nothing (bounded)."""
    t = ensure_trace(trace)
    report = FixpointReport(pass_counts={spec.name: 0 for spec in passes})
    report.ops_in = cdfg.op_count()
    liveness: Optional[LivenessInfo] = None
    for iteration in range(1, max_iterations + 1):
        report.iterations = iteration
        changed = 0
        for spec in passes:
            if spec.needs_liveness and liveness is None:
                with t.span("pass.liveness", cat="pass"):
                    liveness = compute_liveness(cdfg)
                    t.count(blocks=len(liveness.live_in),
                            sweeps=liveness.iterations)
                report.liveness_recomputes += 1
            with t.span(f"pass.{spec.name}", cat="pass"):
                count = spec.run(cdfg, liveness)
                t.count(changed=count)
            report.pass_counts[spec.name] += count
            changed += count
            if count:
                # Every structural change may shift block-level USE/DEF
                # sets; drop the cache and recompute on next demand.
                liveness = None
        if t.enabled:
            t.leaf("fixpoint.iteration", 0.0, cat="pass",
                   iteration=iteration, changed=changed,
                   ops=cdfg.op_count())
        if not changed:
            report.converged = True
            break
    with t.span("pass.validate", cat="pass"):
        validate(cdfg)
    report.ops_out = cdfg.op_count()
    if t.enabled:
        t.count(
            iterations=report.iterations,
            ops_in=report.ops_in,
            ops_out=report.ops_out,
            removed=report.total(),
            liveness_recomputes=report.liveness_recomputes,
        )
    return report


def optimize_cdfg(cdfg: FunctionCDFG, opt_level: int = 1, trace=None):
    """Run the mid-end pipeline selected by ``opt_level``.

    Returns the underlying report (:class:`.pipeline.OptimizationReport`
    for levels <= 1, :class:`FixpointReport` for level >= 2).
    """
    if opt_level <= 0:
        return optimize(cdfg, max_iterations=0, trace=trace)
    if opt_level == 1:
        return optimize(cdfg, trace=trace)
    return run_fixpoint(cdfg, trace=trace)


__all__ = [
    "DEFAULT_MAX_ITERATIONS",
    "FIXPOINT_PASSES",
    "FixpointReport",
    "OptimizationReport",
    "PassSpec",
    "optimize_cdfg",
    "run_fixpoint",
]
