"""Bit-width narrowing by value-range analysis.

The paper's opening complaint about C as a hardware language: *"Bit vectors
are natural in hardware, yet C only supports four sizes."*  A C program
computes everything in 32-bit ints even when eight bits would do, and a
naive translation pays for 32-bit adders, multipliers, and registers.

This pass recovers the widths C's type system threw away:

1. **Interval analysis** — a forward abstract interpretation over the
   CFG: constants are exact; operator ranges follow interval arithmetic
   clipped to the result type (if the interval fits the type, no wrap
   occurs and the refined interval is sound; otherwise the type's full
   range is used); branch conditions of the shape ``var <op> const``
   refine the variable's range on each edge — which is what bounds loop
   counters.  Iteration starts from the initial state (zero-initialized
   locals, full-range parameters/globals), joins by union, and widens any
   variable still unstable after a few rounds to its full declared range,
   so termination and soundness are unconditional.

2. **Narrowing** — a value whose range fits a smaller integer type is
   retyped: wrap at the smaller width is the identity on the range, so
   semantics are untouched (the property tests check this against the
   interpreter).  Narrowed are pure-op results, constants, and *local*
   scalar registers; parameters and globals keep their declared interface
   widths.

The E12 benchmark measures what this buys: quadratic-area multipliers and
per-bit registers shrink to the widths the program actually needs —
exactly what a designer gets for free in Verilog/VHDL and what sized-type
extensions (``uint5``) bolt back onto C.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ...lang.symtab import Symbol, SymbolKind
from ...lang.types import BoolType, IntType, PointerType, make_int
from ..cdfg import FunctionCDFG
from ..ops import Branch, Const, Jump, Operand, Operation, OpKind, Ret, VReg, VarRead

Range = Tuple[int, int]

_MAX_ITERATIONS = 8


def _type_range(value_type) -> Range:
    if isinstance(value_type, BoolType):
        return (0, 1)
    if isinstance(value_type, IntType):
        return (value_type.min_value, value_type.max_value)
    if isinstance(value_type, PointerType):
        return (0, (1 << 32) - 1)
    return (-(1 << 63), (1 << 63) - 1)


def _fits(range_: Range, value_type) -> bool:
    lo, hi = range_
    tlo, thi = _type_range(value_type)
    return tlo <= lo and hi <= thi


def _clip(range_: Range, value_type) -> Range:
    """The operator's mathematical range, or the type's full range when a
    wrap is possible."""
    return range_ if _fits(range_, value_type) else _type_range(value_type)


def _union(a: Optional[Range], b: Range) -> Range:
    if a is None:
        return b
    return (min(a[0], b[0]), max(a[1], b[1]))


def minimal_type(range_: Range, signed_hint: bool) -> IntType:
    """The narrowest IntType containing ``range_``."""
    lo, hi = range_
    if lo >= 0 and not signed_hint:
        width = max(hi.bit_length(), 1)
        return make_int(min(width, 128), signed=False)
    width = 1
    while not (-(1 << (width - 1)) <= lo and hi <= (1 << (width - 1)) - 1):
        width += 1
        if width >= 128:
            break
    return make_int(min(width, 128), signed=True)


def _binary_range(op: str, a: Range, b: Range, result_type) -> Range:
    alo, ahi = a
    blo, bhi = b
    if op == "+":
        return _clip((alo + blo, ahi + bhi), result_type)
    if op == "-":
        return _clip((alo - bhi, ahi - blo), result_type)
    if op == "*":
        products = (alo * blo, alo * bhi, ahi * blo, ahi * bhi)
        return _clip((min(products), max(products)), result_type)
    if op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
        return (0, 1)
    if op == "&":
        # AND with a non-negative value can only clear bits: the result is
        # in [0, that value's max], whatever the other operand's sign.
        if alo >= 0 and blo >= 0:
            return (0, min(ahi, bhi))
        if blo >= 0:
            return (0, bhi)
        if alo >= 0:
            return (0, ahi)
        return _type_range(result_type)
    if op == "|" or op == "^":
        if alo >= 0 and blo >= 0:
            bits = max(ahi.bit_length(), bhi.bit_length(), 1)
            return (0, (1 << bits) - 1)
        return _type_range(result_type)
    if op == "<<":
        if alo >= 0 and 0 <= blo and bhi <= 63:
            return _clip((alo << blo, ahi << bhi), result_type)
        return _type_range(result_type)
    if op == ">>":
        if alo >= 0 and blo >= 0:
            return (alo >> min(bhi, 63), ahi >> min(blo, 63))
        return _type_range(result_type)
    if op == "%":
        if blo > 0:
            # C: result sign follows the dividend; magnitude < divisor.
            if alo >= 0:
                return (0, bhi - 1)
            return (-(bhi - 1), bhi - 1)
        return _type_range(result_type)
    if op == "/":
        if blo > 0 and alo >= 0:
            return (alo // bhi, ahi // blo)
        return _type_range(result_type)
    return _type_range(result_type)


@dataclass
class NarrowReport:
    vregs_narrowed: int = 0
    constants_narrowed: int = 0
    registers_narrowed: int = 0
    bits_saved: int = 0


def _intersect(a: Range, b: Range) -> Optional[Range]:
    lo, hi = max(a[0], b[0]), min(a[1], b[1])
    return (lo, hi) if lo <= hi else None


State = Dict[Symbol, Range]


class _Narrower:
    def __init__(self, cdfg: FunctionCDFG):
        self.cdfg = cdfg
        self.blocks = cdfg.reachable_blocks()
        # Per-block entry state: var -> range.  None = not yet reached.
        self.entry_state: Dict[int, Optional[State]] = {
            b.id: None for b in self.blocks
        }
        # The final, program-wide range per variable (union over blocks).
        self.var_range: Dict[Symbol, Range] = {}
        self.report = NarrowReport()

    # -- transfer functions --------------------------------------------------

    def _operand_range(self, operand: Operand, state: State,
                       vreg_range: Dict[VReg, Range]) -> Range:
        if isinstance(operand, Const):
            return (operand.value, operand.value)
        if isinstance(operand, VarRead):
            return state.get(operand.var, _type_range(operand.var.type))
        return vreg_range.get(operand, _type_range(operand.type))

    def _op_range(self, op: Operation, state: State,
                  vreg_range: Dict[VReg, Range]) -> Range:
        assert op.dest is not None
        ranges = [self._operand_range(o, state, vreg_range) for o in op.operands]
        if op.kind is OpKind.BINARY:
            return _binary_range(op.op, ranges[0], ranges[1], op.dest.type)
        if op.kind is OpKind.UNARY:
            lo, hi = ranges[0]
            if op.op == "-":
                return _clip((-hi, -lo), op.dest.type)
            if op.op == "!":
                return (0, 1)
            return _type_range(op.dest.type)  # ~ flips every bit
        if op.kind is OpKind.CAST:
            return _clip(ranges[0], op.dest.type)
        if op.kind is OpKind.SELECT:
            return _union(ranges[1], ranges[2])
        if op.kind is OpKind.LOAD:
            assert op.array is not None
            element = op.array.type.element  # type: ignore[union-attr]
            return _type_range(element)
        return _type_range(op.dest.type)

    def _execute_block(self, block, state: State):
        """Returns (exit_state, vreg ranges, comparison facts) where facts
        maps a comparison VReg to (var, op, const) for edge refinement."""
        state = dict(state)
        vreg_range: Dict[VReg, Range] = {}
        facts: Dict[VReg, tuple] = {}
        for op in block.ops:
            if op.dest is None:
                continue
            vreg_range[op.dest] = self._op_range(op, state, vreg_range)
            if (
                op.kind is OpKind.BINARY
                and op.op in ("<", "<=", ">", ">=", "==", "!=")
                and isinstance(op.operands[0], VarRead)
                and isinstance(op.operands[1], Const)
            ):
                facts[op.dest] = (
                    op.operands[0].var, op.op, op.operands[1].value
                )
        exit_state = dict(state)
        for var, value in block.var_writes.items():
            exit_state[var] = _clip(
                self._operand_range(value, state, vreg_range), var.type
            )
        return exit_state, vreg_range, facts

    @staticmethod
    def _refine(state: State, fact: tuple, taken: bool) -> Optional[State]:
        """State on a branch edge given ``var <op> const`` was taken/not."""
        var, op, const = fact
        current = state.get(var, _type_range(var.type))
        big = 1 << 70
        bounds = {
            ("<", True): (-big, const - 1), ("<", False): (const, big),
            ("<=", True): (-big, const), ("<=", False): (const + 1, big),
            (">", True): (const + 1, big), (">", False): (-big, const),
            (">=", True): (const, big), (">=", False): (-big, const - 1),
            ("==", True): (const, const), ("==", False): None,
            ("!=", False): (const, const), ("!=", True): None,
        }
        bound = bounds.get((op, taken))
        if bound is None:
            return dict(state)
        refined = _intersect(current, bound)
        if refined is None:
            return None  # edge is infeasible under this state
        out = dict(state)
        out[var] = refined
        return out

    # -- fixpoint --------------------------------------------------------------

    def _initial_state(self) -> State:
        state: State = {}
        for symbol in self.cdfg.registers:
            if symbol in self.cdfg.params or symbol.kind is SymbolKind.GLOBAL:
                state[symbol] = _type_range(symbol.type)
            else:
                state[symbol] = (0, 0)  # registers power up at zero
        return state

    @staticmethod
    def _join(a: Optional[State], b: State) -> State:
        if a is None:
            return dict(b)
        out = dict(a)
        for var, range_ in b.items():
            out[var] = _union(out.get(var), range_)
        return out

    def analyze(self) -> Dict[VReg, Range]:
        if not self.blocks:
            return {}
        entry = self.blocks[0]
        self.entry_state[entry.id] = self._initial_state()
        final_vregs: Dict[VReg, Range] = {}
        for iteration in range(4 * _MAX_ITERATIONS):
            changed = False
            # Only variables still moving in THIS iteration are widening
            # candidates; converged ones keep their tight ranges.
            changed_vars: Dict[Symbol, None] = {}
            final_vregs = {}
            for block in self.blocks:
                state = self.entry_state[block.id]
                if state is None:
                    continue
                exit_state, vreg_range, facts = self._execute_block(block, state)
                final_vregs.update(vreg_range)
                terminator = block.terminator
                targets = []
                if isinstance(terminator, Jump):
                    targets = [(terminator.target, dict(exit_state))]
                elif isinstance(terminator, Branch):
                    cond = terminator.cond
                    fact = facts.get(cond) if isinstance(cond, VReg) else None
                    for successor, taken in (
                        (terminator.if_true, True), (terminator.if_false, False)
                    ):
                        if fact is not None:
                            refined = self._refine(exit_state, fact, taken)
                            if refined is None:
                                continue
                            targets.append((successor, refined))
                        else:
                            targets.append((successor, dict(exit_state)))
                for successor, edge_state in targets:
                    joined = self._join(self.entry_state.get(successor.id),
                                        edge_state)
                    if joined != self.entry_state.get(successor.id):
                        before = self.entry_state.get(successor.id)
                        if before is not None:
                            for var in joined:
                                if before.get(var) != joined[var]:
                                    changed_vars[var] = None
                        self.entry_state[successor.id] = joined
                        changed = True
            if not changed:
                break
            if iteration == 2 * _MAX_ITERATIONS:
                # Widen the variables still in motion to their full type
                # range; the iteration then converges unconditionally.
                for block_state in self.entry_state.values():
                    if block_state is None:
                        continue
                    for var in changed_vars:
                        if var in block_state:
                            block_state[var] = _type_range(var.type)
        else:
            # Never converged: give up soundly — widen everything.
            for block in self.blocks:
                state = self.entry_state[block.id]
                if state is None:
                    continue
                for var in state:
                    state[var] = _type_range(var.type)
            final_vregs = {}
            for block in self.blocks:
                state = self.entry_state[block.id]
                if state is None:
                    continue
                _, vreg_range, _ = self._execute_block(block, state)
                final_vregs.update(vreg_range)
        # Program-wide variable ranges: union over block entries and exits.
        for block in self.blocks:
            state = self.entry_state[block.id]
            if state is None:
                continue
            exit_state, _, _ = self._execute_block(block, state)
            for snapshot in (state, exit_state):
                for var, range_ in snapshot.items():
                    self.var_range[var] = _union(self.var_range.get(var), range_)
        for symbol in self.cdfg.registers:
            self.var_range.setdefault(symbol, _type_range(symbol.type))
        return final_vregs

    def apply(self) -> NarrowReport:
        vreg_range = self.analyze()
        # Narrow pure-op results.
        for block in self.cdfg.blocks:
            for op in block.ops:
                if op.dest is None or op.dest not in vreg_range:
                    continue
                if op.kind in (OpKind.LOAD, OpKind.RECV):
                    continue  # interface widths belong to the memory/channel
                current = op.dest.type
                if not isinstance(current, (IntType, BoolType)):
                    continue
                signed_hint = isinstance(current, IntType) and current.signed
                narrow = minimal_type(vreg_range[op.dest], signed_hint)
                if narrow.bit_width < current.bit_width:
                    self.report.vregs_narrowed += 1
                    self.report.bits_saved += current.bit_width - narrow.bit_width
                    object.__setattr__(op.dest, "type", narrow)
                # Constants: retype to their own minimal width.
                for index, operand in enumerate(op.operands):
                    if isinstance(operand, Const) and isinstance(
                        operand.type, IntType
                    ):
                        tight = minimal_type(
                            (operand.value, operand.value), operand.type.signed
                        )
                        if tight.bit_width < operand.type.bit_width:
                            op.operands[index] = Const(operand.value, tight)
                            self.report.constants_narrowed += 1
        # Narrow local scalar registers (never interface symbols).
        for symbol in self.cdfg.registers:
            if symbol in self.cdfg.params or symbol.kind is SymbolKind.GLOBAL:
                continue
            current = symbol.type
            if not isinstance(current, IntType):
                continue
            narrow = minimal_type(self.var_range[symbol], current.signed)
            if narrow.bit_width < current.bit_width:
                self.report.registers_narrowed += 1
                self.report.bits_saved += current.bit_width - narrow.bit_width
                symbol.type = narrow
        return self.report


def narrow_widths(cdfg: FunctionCDFG) -> NarrowReport:
    """Run value-range bit-width narrowing on a built (ideally optimized)
    CDFG.  Mutates VReg/Const/local-register types in place; semantics are
    preserved because every narrowed value's range fits its new type."""
    return _Narrower(cdfg).apply()
