"""Copy propagation within basic blocks.

Three flavors of copies the builder and earlier passes leave behind:

* **identity casts** — ``%x = cast(%y)`` where ``%y`` already has the
  destination type.  The cast's wrap is a no-op on any value that is
  in-range for its static type, which holds for Consts, VarReads (the
  register wrapped at latch time), and every VReg *except* LOAD/RECV
  results: a load returns the raw memory word, so identity casts of
  load results are kept.
* **constant selects** — ``select(c, v, v)`` with both arms identical
  (same operand key) and arm type equal to the destination type
  collapses to ``v``.
* **self-latches** — ``v <- VarRead(v)`` writes a register with its own
  entry value; deleting the latch is observationally identical for
  locals.  Globals keep theirs: in a lockstep multi-process design the
  write participates in same-cycle conflict resolution.

Replaced destinations are rewritten through the rest of the block, its
latches, and its terminator, exactly like CSE's replacement map.
"""

from __future__ import annotations

from typing import Dict, Set

from ...lang.symtab import SymbolKind
from ..cdfg import BasicBlock, FunctionCDFG
from ..ops import Branch, Operand, OpKind, Ret, VReg, VarRead
from .cse import _operand_key


def _copyprop_block(block: BasicBlock) -> int:
    removed = 0
    replacements: Dict[VReg, Operand] = {}
    raw_values: Set[VReg] = set()  # LOAD/RECV dests: possibly out-of-range
    kept = []

    def substitute(operand: Operand) -> Operand:
        if isinstance(operand, VReg):
            return replacements.get(operand, operand)
        return operand

    def is_wrapped(operand: Operand) -> bool:
        return not (isinstance(operand, VReg) and operand in raw_values)

    for op in block.ops:
        op.operands = [substitute(o) for o in op.operands]
        if op.kind in (OpKind.LOAD, OpKind.RECV) and op.dest is not None:
            raw_values.add(op.dest)
        if op.dest is None:
            kept.append(op)
            continue
        forward = None
        if op.kind is OpKind.CAST:
            source = op.operands[0]
            if source.type == op.dest.type and is_wrapped(source):
                forward = source
        elif op.kind is OpKind.SELECT:
            if_true, if_false = op.operands[1], op.operands[2]
            if (
                _operand_key(if_true) == _operand_key(if_false)
                and if_true.type == op.dest.type
                and is_wrapped(if_true)
            ):
                forward = if_true
        if forward is not None:
            replacements[op.dest] = forward
            removed += 1
            continue
        kept.append(op)

    block.ops = kept
    block.var_writes = {
        var: substitute(value) for var, value in block.var_writes.items()
    }
    for var in [
        v
        for v, value in block.var_writes.items()
        if isinstance(value, VarRead)
        and value.var is v
        and v.kind is not SymbolKind.GLOBAL
    ]:
        del block.var_writes[var]
        removed += 1
    terminator = block.terminator
    if isinstance(terminator, Branch):
        terminator.cond = substitute(terminator.cond)
    elif isinstance(terminator, Ret) and terminator.value is not None:
        terminator.value = substitute(terminator.value)
    return removed


def propagate_copies(cdfg: FunctionCDFG) -> int:
    """Run block-local copy propagation; returns the number of copies
    (operations plus self-latches) removed."""
    return sum(_copyprop_block(block) for block in cdfg.blocks)
