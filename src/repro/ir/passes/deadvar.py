"""Liveness-driven dead-variable elimination.

:mod:`.dce` can only delete latches of variables that are never read
*anywhere* in the function.  With liveness in hand we can do better: a
latch ``v <- x`` in block B is dead whenever ``v`` is not live-out of B —
every path from B's exit overwrites ``v`` before reading it.  Deleting
the latch leaves the feeding operation for DCE to sweep.

Globals and parameters are exempt, matching :mod:`.dce`'s stance:
concurrent processes may read a global register at any cycle, and the
final global values are part of every flow's observable result.
"""

from __future__ import annotations

from typing import Optional

from ...lang.symtab import SymbolKind
from ..cdfg import FunctionCDFG
from ..liveness import LivenessInfo, compute_liveness


def eliminate_dead_variables(
    cdfg: FunctionCDFG, liveness: Optional[LivenessInfo] = None
) -> int:
    """Delete latches whose variable is dead at block exit.

    Returns the number of latches removed.  After removals the supplied
    ``liveness`` is still a safe *over*-approximation (deleting a latch
    only removes uses), but it may hide newly-dead chains — the fixpoint
    driver recomputes liveness whenever this pass reports a change so the
    converged CDFG is a true fixed point.
    """
    if liveness is None:
        liveness = compute_liveness(cdfg)
    keep = set(cdfg.params)
    removed = 0
    for block in cdfg.blocks:
        out = liveness.live_out.get(block.id)
        if out is None:  # unreachable block: leave it for simplify_cfg
            continue
        dead = [
            var
            for var in block.var_writes
            if var.kind is not SymbolKind.GLOBAL
            and var not in keep
            and var not in out
        ]
        for var in dead:
            del block.var_writes[var]
            removed += 1
    return removed
