"""Dead-code elimination.

Two levels:

* **operation level** — a pure operation whose result feeds nothing
  (transitively) is deleted;
* **register level** — a scalar variable that is never read anywhere in the
  function, is not a global, and is not the return value, has its latches
  deleted, which in turn exposes more dead operations.
"""

from __future__ import annotations

from typing import Set

from ...lang.symtab import Symbol, SymbolKind
from ..cdfg import BasicBlock, FunctionCDFG
from ..ops import Branch, Operand, OpKind, Ret, VReg, VarRead


def _live_vregs(block: BasicBlock) -> Set[VReg]:
    """VRegs needed by side effects, latches, and the terminator."""
    live: Set[VReg] = set()

    def note(operand: Operand) -> None:
        if isinstance(operand, VReg):
            live.add(operand)

    # Roots: latches and the terminator.
    for value in block.var_writes.values():
        note(value)
    terminator = block.terminator
    if isinstance(terminator, Branch):
        note(terminator.cond)
    elif isinstance(terminator, Ret) and terminator.value is not None:
        note(terminator.value)
    # Definitions precede uses within a block, so one reverse sweep closes
    # the transitive liveness set.
    for op in reversed(block.ops):
        if op.has_side_effect() or (op.dest is not None and op.dest in live):
            for operand in op.operands:
                note(operand)
    return live


def _sweep_block(block: BasicBlock) -> int:
    live = _live_vregs(block)
    before = len(block.ops)
    block.ops = [
        op
        for op in block.ops
        if op.has_side_effect() or (op.dest is not None and op.dest in live)
    ]
    return before - len(block.ops)


def _read_vars(cdfg: FunctionCDFG) -> Set[Symbol]:
    read: Set[Symbol] = set()
    for block in cdfg.blocks:
        for op in block.ops:
            for operand in op.operands:
                if isinstance(operand, VarRead):
                    read.add(operand.var)
        terminator = block.terminator
        operands = []
        if isinstance(terminator, Branch):
            operands = [terminator.cond]
        elif isinstance(terminator, Ret) and terminator.value is not None:
            operands = [terminator.value]
        for operand in operands:
            if isinstance(operand, VarRead):
                read.add(operand.var)
        for value in block.var_writes.values():
            if isinstance(value, VarRead):
                read.add(value.var)
    return read


def eliminate_dead_code(cdfg: FunctionCDFG) -> int:
    """Remove dead operations and dead register latches; returns the total
    number of items deleted."""
    removed = 0
    changed = True
    while changed:
        changed = False
        read = _read_vars(cdfg)
        keep = set(read)
        keep.update(s for s in cdfg.registers if s.kind is SymbolKind.GLOBAL)
        keep.update(cdfg.params)
        for block in cdfg.blocks:
            dead_latches = [v for v in block.var_writes if v not in keep]
            for var in dead_latches:
                del block.var_writes[var]
                removed += 1
                changed = True
        for block in cdfg.blocks:
            swept = _sweep_block(block)
            if swept:
                removed += swept
                changed = True
    live_registers = _read_vars(cdfg)
    cdfg.registers = [
        s
        for s in cdfg.registers
        if s in live_registers
        or s.kind is SymbolKind.GLOBAL
        or s in cdfg.params
        or any(s in b.var_writes for b in cdfg.blocks)
    ]
    return removed
