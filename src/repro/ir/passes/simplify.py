"""Control-flow graph cleanup.

* removes blocks that became unreachable (e.g. after a branch folded);
* threads jumps through empty blocks;
* collapses branches whose arms coincide;
* merges straight-line block pairs (single successor / single predecessor),
  rewriting VarReads in the merged tail to the head's latched values so the
  latch-at-exit semantics are preserved.
"""

from __future__ import annotations

from typing import Dict, Optional

from ...lang.symtab import Symbol
from ..cdfg import BasicBlock, FunctionCDFG
from ..ops import Branch, Jump, Operand, Ret, VReg, VarRead


def _is_trivial(block: BasicBlock) -> bool:
    return not block.ops and not block.var_writes and isinstance(block.terminator, Jump)


def _thread_target(block: BasicBlock) -> BasicBlock:
    """Follow chains of trivial blocks (with cycle protection)."""
    seen = set()
    current = block
    while _is_trivial(current) and current.id not in seen:
        seen.add(current.id)
        assert isinstance(current.terminator, Jump)
        target = current.terminator.target
        if not isinstance(target, BasicBlock) or target is current:
            break
        current = target
    return current


def _retarget(cdfg: FunctionCDFG) -> int:
    changed = 0
    for block in cdfg.blocks:
        terminator = block.terminator
        if isinstance(terminator, Jump):
            threaded = _thread_target(terminator.target)
            if threaded is not terminator.target:
                terminator.target = threaded
                changed += 1
        elif isinstance(terminator, Branch):
            threaded_true = _thread_target(terminator.if_true)
            threaded_false = _thread_target(terminator.if_false)
            if threaded_true is not terminator.if_true:
                terminator.if_true = threaded_true
                changed += 1
            if threaded_false is not terminator.if_false:
                terminator.if_false = threaded_false
                changed += 1
            if terminator.if_true is terminator.if_false:
                block.terminator = Jump(terminator.if_true)
                changed += 1
    if cdfg.entry is not None:
        threaded = _thread_target(cdfg.entry)
        if threaded is not cdfg.entry:
            cdfg.entry = threaded
            changed += 1
    return changed


def _merge_pairs(cdfg: FunctionCDFG) -> int:
    merged = 0
    pred_count: Dict[int, int] = {b.id: 0 for b in cdfg.blocks}
    for block in cdfg.blocks:
        for successor in block.successors():
            pred_count[successor.id] = pred_count.get(successor.id, 0) + 1
    removed: set = set()
    for block in cdfg.blocks:
        if block.id in removed:
            continue
        # Chase the whole straight-line chain hanging off this block.
        while True:
            terminator = block.terminator
            if not isinstance(terminator, Jump):
                break
            successor = terminator.target
            if (
                not isinstance(successor, BasicBlock)
                or successor is block
                or successor is cdfg.entry
                or successor.id in removed
                or pred_count.get(successor.id, 0) != 1
            ):
                break
            _merge_into(block, successor)
            removed.add(successor.id)
            merged += 1
    if removed:
        cdfg.blocks = [b for b in cdfg.blocks if b.id not in removed]
    return merged


def _merge_into(head: BasicBlock, tail: BasicBlock) -> None:
    """Append ``tail`` to ``head``.  Tail VarReads of variables the head
    latched must see the head's latched value (block-entry semantics)."""
    substitution: Dict[Symbol, Operand] = dict(head.var_writes)

    def rewrite(operand: Operand) -> Operand:
        if isinstance(operand, VarRead) and operand.var in substitution:
            return substitution[operand.var]
        return operand

    for op in tail.ops:
        op.operands = [rewrite(o) for o in op.operands]
        head.ops.append(op)
    new_writes = dict(head.var_writes)
    for var, value in tail.var_writes.items():
        new_writes[var] = rewrite(value)
    head.var_writes = new_writes
    terminator = tail.terminator
    if isinstance(terminator, Branch):
        terminator.cond = rewrite(terminator.cond)
    elif isinstance(terminator, Ret) and terminator.value is not None:
        terminator.value = rewrite(terminator.value)
    head.terminator = terminator


def simplify_cfg(cdfg: FunctionCDFG) -> int:
    """Clean the CFG; returns the number of structural changes made."""
    changed = _retarget(cdfg)
    cdfg.prune_unreachable()
    changed += _merge_pairs(cdfg)
    cdfg.prune_unreachable()
    return changed
