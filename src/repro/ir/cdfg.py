"""Control/data-flow graph structures.

A :class:`FunctionCDFG` holds basic blocks; each :class:`BasicBlock` holds a
DAG of :class:`~repro.ir.ops.Operation` plus the scalar register updates that
latch at block exit (``var_writes``).  This is the classic high-level
synthesis representation: schedulers assign each block's operations to
control steps, binding maps them onto shared functional units, and the FSMD
backend turns (blocks × steps) into a finite-state machine with a datapath.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..lang.errors import SourceLocation
from ..lang.symtab import Symbol
from ..lang.types import Type
from .ops import Branch, Const, Jump, Operand, Operation, OpKind, Ret, Terminator, VReg, VarRead


class BasicBlock:
    """A straight-line region: a list of operations plus one terminator."""

    _ids = itertools.count()

    def __init__(self, label: str = ""):
        self.id = next(BasicBlock._ids)
        self.label = label or f"bb{self.id}"
        self.ops: List[Operation] = []
        self.terminator: Optional[Terminator] = None
        # Scalar register updates latched at block exit: var -> value operand.
        self.var_writes: Dict[Symbol, Operand] = {}

    def append(self, op: Operation) -> Operation:
        self.ops.append(op)
        return op

    def successors(self) -> List["BasicBlock"]:
        if self.terminator is None:
            return []
        return [b for b in self.terminator.successors() if isinstance(b, BasicBlock)]

    def __repr__(self) -> str:
        return f"<BasicBlock {self.label} ({len(self.ops)} ops)>"

    def dump(self) -> str:
        lines = [f"{self.label}:"]
        for op in self.ops:
            lines.append(f"  {op}")
        for var, value in sorted(self.var_writes.items(), key=lambda kv: kv[0].unique_name):
            lines.append(f"  ${var.unique_name} <- {value}")
        lines.append(f"  {self.terminator}")
        return "\n".join(lines)


@dataclass
class TimingConstraint:
    """A HardwareC-style ``within`` constraint: the tagged operations must be
    scheduled into at most ``cycles`` control steps."""

    group: int
    cycles: int


class FunctionCDFG:
    """The CDFG of one function (or one concurrent process)."""

    def __init__(self, name: str, return_type: Type):
        self.name = name
        self.return_type = return_type
        self.entry: Optional[BasicBlock] = None
        self.blocks: List[BasicBlock] = []
        # Scalar storage (locals, params, and referenced globals) that become
        # datapath registers, and arrays that become memories.
        self.registers: List[Symbol] = []
        self.params: List[Symbol] = []
        self.arrays: List[Symbol] = []
        self.globals_read: Set[Symbol] = set()
        self.globals_written: Set[Symbol] = set()
        # First source site of each global access, for race diagnostics.
        self.global_read_sites: Dict[Symbol, "SourceLocation"] = {}
        self.global_write_sites: Dict[Symbol, "SourceLocation"] = {}
        self.constraints: List[TimingConstraint] = []

    def new_block(self, label: str = "") -> BasicBlock:
        block = BasicBlock(label)
        self.blocks.append(block)
        return block

    def iter_ops(self) -> Iterator[Operation]:
        for block in self.blocks:
            yield from block.ops

    def reachable_blocks(self) -> List[BasicBlock]:
        """Blocks reachable from entry, in reverse-postorder."""
        if self.entry is None:
            return []
        seen: Set[int] = set()
        order: List[BasicBlock] = []

        stack: List[Tuple[BasicBlock, Iterator[BasicBlock]]] = []
        seen.add(self.entry.id)
        stack.append((self.entry, iter(self.entry.successors())))
        postorder: List[BasicBlock] = []
        while stack:
            block, successors = stack[-1]
            advanced = False
            for succ in successors:
                if succ.id not in seen:
                    seen.add(succ.id)
                    stack.append((succ, iter(succ.successors())))
                    advanced = True
                    break
            if not advanced:
                postorder.append(block)
                stack.pop()
        order = list(reversed(postorder))
        return order

    def prune_unreachable(self) -> None:
        reachable = {b.id for b in self.reachable_blocks()}
        self.blocks = [b for b in self.blocks if b.id in reachable]

    def predecessors(self) -> Dict[int, List[BasicBlock]]:
        preds: Dict[int, List[BasicBlock]] = {b.id: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors():
                preds.setdefault(succ.id, []).append(block)
        return preds

    def op_count(self) -> int:
        return sum(len(b.ops) for b in self.blocks)

    def dump(self) -> str:
        header = [f"function {self.name}:"]
        if self.params:
            header.append("  params: " + ", ".join(p.unique_name for p in self.params))
        if self.registers:
            header.append(
                "  registers: " + ", ".join(r.unique_name for r in self.registers)
            )
        if self.arrays:
            header.append("  arrays: " + ", ".join(a.unique_name for a in self.arrays))
        body = [b.dump() for b in self.reachable_blocks() or self.blocks]
        return "\n".join(header + body)


@dataclass
class ModuleCDFG:
    """All CDFGs of a program plus shared metadata."""

    functions: Dict[str, FunctionCDFG] = field(default_factory=dict)
    channels: List[Symbol] = field(default_factory=list)
    global_symbols: List[Symbol] = field(default_factory=list)
    global_inits: Dict[str, object] = field(default_factory=dict)

    def function(self, name: str) -> FunctionCDFG:
        if name not in self.functions:
            raise KeyError(f"no CDFG for function {name!r}")
        return self.functions[name]


def operand_vregs(operand: Operand) -> List[VReg]:
    return [operand] if isinstance(operand, VReg) else []


def defs_and_uses(block: BasicBlock) -> Tuple[Set[VReg], Set[VReg]]:
    """VRegs defined and used in a block (for sanity checks)."""
    defs: Set[VReg] = set()
    uses: Set[VReg] = set()
    for op in block.ops:
        if op.dest is not None:
            defs.add(op.dest)
        for operand in op.operands:
            uses.update(operand_vregs(operand))
    if block.terminator is not None:
        if isinstance(block.terminator, Branch):
            uses.update(operand_vregs(block.terminator.cond))
        elif isinstance(block.terminator, Ret) and block.terminator.value is not None:
            uses.update(operand_vregs(block.terminator.value))
    for value in block.var_writes.values():
        uses.update(operand_vregs(value))
    return defs, uses


def validate(cdfg: FunctionCDFG) -> None:
    """Structural sanity checks; raises ValueError on malformed graphs.

    Invariants: every block has a terminator; every VReg used in a block is
    defined earlier in the same block (VRegs are block-local wires).
    """
    for block in cdfg.blocks:
        if block.terminator is None:
            raise ValueError(f"{cdfg.name}/{block.label}: missing terminator")
        defined: Set[VReg] = set()
        for op in block.ops:
            for operand in op.operands:
                for vreg in operand_vregs(operand):
                    if vreg not in defined:
                        raise ValueError(
                            f"{cdfg.name}/{block.label}: {op} uses {vreg}"
                            " before definition"
                        )
            if op.dest is not None:
                defined.add(op.dest)
        _, uses = defs_and_uses(block)
        stray = uses - defined
        if stray:
            raise ValueError(
                f"{cdfg.name}/{block.label}: terminator or latch uses"
                f" undefined vregs {sorted(str(v) for v in stray)}"
            )
