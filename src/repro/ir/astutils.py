"""AST surgery utilities: cloning, substitution, and return-elimination.

The AST-level transformation passes (function inlining, loop unrolling, the
"recoding" variants the timing experiments generate) all need to duplicate
subtrees.  Cloning allocates fresh :class:`~repro.lang.symtab.Symbol` objects
for every declaration it copies so that duplicated code never aliases the
original's storage, and it can substitute arbitrary expressions for
identifiers (how array/pointer arguments are bound during inlining).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from ..lang import ast_nodes as ast
from ..lang.errors import SemanticError
from ..lang.symtab import Symbol, SymbolKind
from ..lang.types import BOOL, Type

_fresh = itertools.count()


def fresh_symbol(name: str, sym_type: Type, kind: SymbolKind = SymbolKind.LOCAL) -> Symbol:
    """A new, never-before-seen local symbol."""
    return Symbol(f"{name}~{next(_fresh)}", sym_type, kind)


class Cloner:
    """Deep-copies statements/expressions.

    ``symbol_map`` maps original symbols to replacement symbols (fresh ones
    are invented for declarations encountered during the walk).
    ``substitutions`` maps symbols to whole replacement *expressions*; a
    matching identifier is replaced by a clone of that expression.
    """

    def __init__(
        self,
        symbol_map: Optional[Dict[Symbol, Symbol]] = None,
        substitutions: Optional[Dict[Symbol, ast.Expr]] = None,
    ):
        self.symbol_map: Dict[Symbol, Symbol] = symbol_map or {}
        self.substitutions: Dict[Symbol, ast.Expr] = substitutions or {}

    # -- expressions -------------------------------------------------------

    def expr(self, e: ast.Expr) -> ast.Expr:
        if isinstance(e, ast.IntLiteral):
            return ast.IntLiteral(value=e.value, location=e.location, type=e.type)
        if isinstance(e, ast.BoolLiteral):
            return ast.BoolLiteral(value=e.value, location=e.location, type=e.type)
        if isinstance(e, ast.Identifier):
            symbol: Symbol = e.symbol  # type: ignore[attr-defined]
            if symbol in self.substitutions:
                # Substitute a fresh clone so shared structure never appears.
                return Cloner(dict(self.symbol_map)).expr(self.substitutions[symbol])
            mapped = self.symbol_map.get(symbol, symbol)
            out = ast.Identifier(name=mapped.name, location=e.location, type=e.type)
            out.symbol = mapped  # type: ignore[attr-defined]
            return out
        if isinstance(e, ast.UnaryOp):
            return ast.UnaryOp(
                op=e.op, operand=self.expr(e.operand), location=e.location, type=e.type
            )
        if isinstance(e, ast.BinaryOp):
            return ast.BinaryOp(
                op=e.op,
                left=self.expr(e.left),
                right=self.expr(e.right),
                location=e.location,
                type=e.type,
            )
        if isinstance(e, ast.Conditional):
            return ast.Conditional(
                cond=self.expr(e.cond),
                then=self.expr(e.then),
                otherwise=self.expr(e.otherwise),
                location=e.location,
                type=e.type,
            )
        if isinstance(e, ast.ArrayIndex):
            return ast.ArrayIndex(
                base=self.expr(e.base),
                index=self.expr(e.index),
                location=e.location,
                type=e.type,
            )
        if isinstance(e, ast.Call):
            out = ast.Call(
                callee=e.callee,
                args=[self.expr(a) for a in e.args],
                location=e.location,
                type=e.type,
            )
            if hasattr(e, "symbol"):
                out.symbol = e.symbol  # type: ignore[attr-defined]
            return out
        if isinstance(e, ast.Receive):
            out = ast.Receive(channel=e.channel, location=e.location, type=e.type)
            if hasattr(e, "symbol"):
                mapped = self.symbol_map.get(e.symbol, e.symbol)  # type: ignore[attr-defined]
                out.symbol = mapped  # type: ignore[attr-defined]
                out.channel = mapped.name
            return out
        raise TypeError(f"cannot clone expression {type(e).__name__}")

    # -- statements --------------------------------------------------------

    def stmt(self, s: ast.Stmt) -> ast.Stmt:
        if isinstance(s, ast.Block):
            return ast.Block(
                statements=[self.stmt(c) for c in s.statements], location=s.location
            )
        if isinstance(s, ast.VarDecl):
            original: Symbol = s.symbol  # type: ignore[attr-defined]
            replacement = fresh_symbol(original.name, original.type, original.kind)
            replacement.is_const = original.is_const
            self.symbol_map[original] = replacement
            out = ast.VarDecl(
                name=replacement.name,
                var_type=s.var_type,
                init=self.expr(s.init) if s.init is not None else None,
                array_init=[self.expr(e) for e in s.array_init]
                if s.array_init is not None
                else None,
                is_const=s.is_const,
                location=s.location,
            )
            out.symbol = replacement  # type: ignore[attr-defined]
            return out
        if isinstance(s, ast.Assign):
            return ast.Assign(
                target=self.expr(s.target), value=self.expr(s.value), location=s.location
            )
        if isinstance(s, ast.ExprStmt):
            return ast.ExprStmt(expr=self.expr(s.expr), location=s.location)
        if isinstance(s, ast.If):
            return ast.If(
                cond=self.expr(s.cond),
                then=self.stmt(s.then),
                otherwise=self.stmt(s.otherwise) if s.otherwise is not None else None,
                location=s.location,
            )
        if isinstance(s, ast.While):
            return ast.While(cond=self.expr(s.cond), body=self.stmt(s.body), location=s.location)
        if isinstance(s, ast.DoWhile):
            return ast.DoWhile(body=self.stmt(s.body), cond=self.expr(s.cond), location=s.location)
        if isinstance(s, ast.For):
            return ast.For(
                init=self.stmt(s.init) if s.init is not None else None,
                cond=self.expr(s.cond) if s.cond is not None else None,
                step=self.stmt(s.step) if s.step is not None else None,
                body=self.stmt(s.body),
                location=s.location,
            )
        if isinstance(s, ast.Return):
            return ast.Return(
                value=self.expr(s.value) if s.value is not None else None,
                location=s.location,
            )
        if isinstance(s, ast.Break):
            return ast.Break(location=s.location)
        if isinstance(s, ast.Continue):
            return ast.Continue(location=s.location)
        if isinstance(s, ast.Par):
            return ast.Par(branches=[self.stmt(b) for b in s.branches], location=s.location)
        if isinstance(s, ast.Seq):
            body = self.stmt(s.body)
            assert isinstance(body, ast.Block)
            return ast.Seq(body=body, location=s.location)
        if isinstance(s, ast.Wait):
            return ast.Wait(location=s.location)
        if isinstance(s, ast.Delay):
            return ast.Delay(cycles=s.cycles, location=s.location)
        if isinstance(s, ast.Within):
            body = self.stmt(s.body)
            assert isinstance(body, ast.Block)
            return ast.Within(cycles=s.cycles, body=body, location=s.location)
        if isinstance(s, ast.Send):
            out = ast.Send(channel=s.channel, value=self.expr(s.value), location=s.location)
            if hasattr(s, "symbol"):
                mapped = self.symbol_map.get(s.symbol, s.symbol)  # type: ignore[attr-defined]
                out.symbol = mapped  # type: ignore[attr-defined]
                out.channel = mapped.name
            return out
        raise TypeError(f"cannot clone statement {type(s).__name__}")


def make_identifier(symbol: Symbol) -> ast.Identifier:
    """An identifier expression bound to ``symbol``."""
    ident = ast.Identifier(name=symbol.name, type=symbol.type)
    ident.symbol = symbol  # type: ignore[attr-defined]
    return ident


def make_int_literal(value: int, int_type: Type) -> ast.IntLiteral:
    lit = ast.IntLiteral(value=value)
    lit.type = int_type
    return lit


def contains_return(stmt: ast.Stmt) -> bool:
    return any(isinstance(s, ast.Return) for s in ast.walk_stmts(stmt))


def eliminate_returns(
    body: ast.Block, result_symbol: Optional[Symbol], done_symbol: Symbol
) -> ast.Block:
    """Rewrite ``return e`` into ``result = e; done = true;`` with guard
    logic so that execution falls through to the end of ``body``.

    This is the standard single-exit transformation used before inlining:
    after it, the block has no Return statements, and ``done`` is true on the
    paths that returned early.  Loops gain an early ``if (done) break;`` and
    their conditions are strengthened with ``!done``.
    """

    def not_done() -> ast.Expr:
        e = ast.UnaryOp(op="!", operand=make_identifier(done_symbol))
        e.type = BOOL
        return e

    def guard(statements: List[ast.Stmt]) -> List[ast.Stmt]:
        """Rewrite a statement list so that once ``done`` becomes true the
        remaining statements are skipped."""
        out: List[ast.Stmt] = []
        for i, s in enumerate(statements):
            rewritten, may_set_done = rewrite(s)
            out.append(rewritten)
            if may_set_done and i + 1 < len(statements):
                rest = guard(statements[i + 1 :])
                out.append(
                    ast.If(cond=not_done(), then=ast.Block(statements=rest))
                )
                break
        return out

    def rewrite(s: ast.Stmt):
        """Returns (rewritten_stmt, may_set_done)."""
        if isinstance(s, ast.Return):
            replacement: List[ast.Stmt] = []
            if s.value is not None:
                assert result_symbol is not None
                replacement.append(
                    ast.Assign(
                        target=make_identifier(result_symbol),
                        value=s.value,
                        location=s.location,
                    )
                )
            true_lit = ast.BoolLiteral(value=True)
            true_lit.type = BOOL
            replacement.append(
                ast.Assign(target=make_identifier(done_symbol), value=true_lit)
            )
            return ast.Block(statements=replacement, location=s.location), True
        if isinstance(s, ast.Block):
            if not contains_return(s):
                return s, False
            return ast.Block(statements=guard(s.statements), location=s.location), True
        if isinstance(s, ast.If):
            if not contains_return(s):
                return s, False
            then, _ = rewrite(s.then)
            otherwise = None
            if s.otherwise is not None:
                otherwise, _ = rewrite(s.otherwise)
            return (
                ast.If(cond=s.cond, then=then, otherwise=otherwise, location=s.location),
                True,
            )
        if isinstance(s, (ast.While, ast.DoWhile, ast.For)):
            if not contains_return(s):
                return s, False
            body_stmt = s.body
            new_body, _ = rewrite(body_stmt)
            escape = ast.If(cond=done_read_clone(), then=ast.Break())
            wrapped = ast.Block(statements=[new_body, escape])
            if isinstance(s, ast.While):
                return ast.While(cond=s.cond, body=wrapped, location=s.location), True
            if isinstance(s, ast.DoWhile):
                strengthened = ast.BinaryOp(op="&&", left=not_done(), right=s.cond)
                strengthened.type = BOOL
                return (
                    ast.DoWhile(body=wrapped, cond=strengthened, location=s.location),
                    True,
                )
            return (
                ast.For(
                    init=s.init, cond=s.cond, step=s.step, body=wrapped, location=s.location
                ),
                True,
            )
        if isinstance(s, ast.Seq):
            if not contains_return(s):
                return s, False
            inner, may = rewrite(s.body)
            assert isinstance(inner, ast.Block)
            return ast.Seq(body=inner, location=s.location), may
        if isinstance(s, ast.Par):
            if contains_return(s):
                raise SemanticError(
                    "return inside a par branch cannot be inlined", s.location
                )
            return s, False
        return s, False

    def done_read_clone() -> ast.Identifier:
        return make_identifier(done_symbol)

    return ast.Block(statements=guard(body.statements), location=body.location)
