"""The generative frontend: grammar-driven, flow-targeted program synthesis.

Extends the width-aware expression machinery of
:mod:`repro.workloads.generator` into a full program synthesizer covering
the constructs the flows actually disagree on: nested control flow,
arrays with masked (always in-bounds) indices, pointer walks where the
target flow's subset has pointers, helper-function calls, CSP channels
and ``par`` blocks where the flow has explicit concurrency, and
bit-width mixes everywhere.

Generation is *mask-directed*: :class:`repro.fuzz.masks.FeatureMask`
(derived from the registry's lint rules) decides which profiles are
available for a flow and which constructs the builder may emit.  In
**boundary mode** the builder deliberately injects exactly one forbidden
feature so the program straddles the flow's accept/reject frontier —
the expectation flips to "the flow must reject this, and the linter must
predict it".

Everything is a pure function of ``(seed, flow, boundary)``: the same
seed always yields byte-identical source, which is what makes fuzz
campaigns replayable and the corpus deduplicatable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..lang.semantic import FEATURE_CHANNELS, FEATURE_PAR, FEATURE_POINTERS
from ..workloads.generator import _COMPARE, _Generator
from .masks import FeatureMask

# Program shapes the synthesizer knows.  Availability depends on the mask.
PROFILE_SCALAR = "scalar"      # straight-line width-mix dataflow
PROFILE_CONTROL = "control"    # nested loops and conditionals
PROFILE_ARRAY = "array"        # global arrays, masked indices
PROFILE_CALLS = "calls"        # helper functions
PROFILE_POINTER = "pointer"    # walking-pointer loops (pointer flows only)
PROFILE_CHANNEL = "channel"    # producer process + rendezvous channel
PROFILE_PAR = "par"            # par blocks with disjoint writes
PROFILE_MIXED = "mixed"        # a bit of everything the mask allows
# The C2HLSC checklist of HLS-breaking constructs, as profiles:
PROFILE_INDIRECT = "indirect"    # data-dependent pointer indirection
PROFILE_RECORD = "record"        # struct-like aggregate (parallel arrays)
PROFILE_IRREGULAR = "irregular"  # data-dependent loop trip counts

_BASE_PROFILES = [PROFILE_SCALAR, PROFILE_CONTROL, PROFILE_ARRAY,
                  PROFILE_CALLS, PROFILE_MIXED, PROFILE_RECORD]


@dataclass(frozen=True)
class GeneratedProgram:
    """One synthesized differential probe."""

    name: str
    source: str
    args: Tuple[int, ...]
    flow: str                       # the flow this program targets
    profile: str
    seed: int
    boundary_feature: str = ""      # forbidden feature injected, if any

    @property
    def is_boundary(self) -> bool:
        return bool(self.boundary_feature)


def available_profiles(mask: FeatureMask) -> List[str]:
    profiles = list(_BASE_PROFILES)
    if mask.allows(FEATURE_POINTERS):
        profiles.append(PROFILE_POINTER)
        profiles.append(PROFILE_INDIRECT)
    if mask.allows(FEATURE_CHANNELS) and mask.allows_processes:
        profiles.append(PROFILE_CHANNEL)
    if mask.allows(FEATURE_PAR):
        profiles.append(PROFILE_PAR)
    if not mask.requires_static_bounds:
        profiles.append(PROFILE_IRREGULAR)
    return profiles


class _FuzzBuilder(_Generator):
    """Width-aware statement/program builder on top of the expression
    generator.  All loops are bounded by small literals (or literal
    countdowns), all array indices are masked to the array size, and
    division/modulo never appear — so every generated program terminates
    within the interpreter's fuel bound and can never trap."""

    def __init__(self, seed: int, mask: FeatureMask):
        super().__init__(seed, width_mix=True)
        self.mask = mask
        self.globals: List[str] = []        # global declaration lines
        self.helpers: List[str] = []        # helper function definitions
        self.processes: List[str] = []      # process definitions
        self.body: List[str] = []           # main body lines
        self.scalars: List[str] = ["x", "y"]
        # Loop counters: readable but never assignment targets (assigning
        # one would break Cones' static bounds or countdown termination).
        self.locked: set = set()
        self.arrays: List[Tuple[str, int]] = []   # (name, power-of-two size)
        self.helper_names: List[str] = []
        self.channel_recv: List[Tuple[str, int]] = []  # (chan, item count)

    # -- pieces ------------------------------------------------------------

    def add_array(self) -> Tuple[str, int]:
        size = self.rng.choice([4, 8, 16])
        name = self.fresh("arr")
        init = ", ".join(str(self.rng.randint(0, 63)) for _ in range(size))
        self.globals.append(f"int {name}[{size}] = {{{init}}};")
        self.arrays.append((name, size))
        return name, size

    def add_helper(self) -> str:
        name = self.fresh("helper")
        stmts = []
        locals_ = ["a", "b"]
        for _ in range(self.rng.randint(1, 3)):
            var = self.fresh("h")
            stmts.append(f"    int {var} = {self.expression(locals_, 2)};")
            locals_.append(var)
        body = "\n".join(stmts)
        ret = self.expression(locals_, 2)
        self.helpers.append(
            f"int {name}(int a, int b) {{\n{body}\n    return {ret};\n}}"
        )
        self.helper_names.append(name)
        return name

    def add_channel_pipeline(self) -> None:
        chan = self.fresh("ch")
        count = self.rng.randint(2, 6)
        scale = self.rng.randint(1, 9)
        offset = self.constant()
        self.globals.append(f"chan<int> {chan};")
        self.processes.append(
            f"process void feed_{chan}() {{\n"
            f"    for (int i = 0; i < {count}; i++) {{\n"
            f"        send({chan}, i * {scale} + {offset});\n"
            f"    }}\n}}"
        )
        self.channel_recv.append((chan, count))

    # -- statements ---------------------------------------------------------

    def statement(self, indent: int, depth: int) -> List[str]:
        pad = "    " * indent
        roll = self.rng.random()
        if roll < 0.30 or not self.scalars:
            name = self.fresh()
            width, signed = self.pick_width()
            type_name = self.declare(name, width, signed)
            line = (f"{pad}{type_name} {name} = "
                    f"{self.target_expression(name, self.scalars, 2)};")
            self.scalars.append(name)
            return [line]
        if roll < 0.50:
            target = self.assign_target()
            return [
                f"{pad}{target} = "
                f"{self.target_expression(target, self.scalars, 2)};"
            ]
        if roll < 0.65 and depth > 0:
            cond = (f"({self.expression(self.scalars, 1)}"
                    f" {self.rng.choice(_COMPARE)}"
                    f" {self.expression(self.scalars, 1)})")
            snapshot = list(self.scalars)
            then = self.statement(indent + 1, depth - 1)
            self.scalars = list(snapshot)
            out = [f"{pad}if {cond} {{"] + then
            if self.rng.random() < 0.5:
                out.append(f"{pad}}} else {{")
                out += self.statement(indent + 1, depth - 1)
                self.scalars = list(snapshot)
            out.append(f"{pad}}}")
            return out
        if roll < 0.80 and depth > 0:
            return self.counted_loop(indent, depth)
        if roll < 0.88 and depth > 0 and not self.mask.requires_static_bounds:
            return self.countdown_loop(indent, depth)
        if self.arrays and roll < 0.96:
            return self.array_touch(indent)
        # Fallback: accumulate into an existing scalar.
        target = self.assign_target()
        return [
            f"{pad}{target} = "
            f"{self.target_expression(target, self.scalars, 2)};"
        ]

    def assign_target(self) -> str:
        pool = [v for v in self.scalars if v not in self.locked]
        if len(pool) > 2 and self.rng.random() < 0.8:
            return self.rng.choice(pool[2:])   # prefer non-parameters
        return self.rng.choice(pool)

    def counted_loop(self, indent: int, depth: int) -> List[str]:
        pad = "    " * indent
        bound = self.rng.randint(2, 8)
        loop_var = self.fresh("i")
        self.declare(loop_var)
        out = [f"{pad}for (int {loop_var} = 0; {loop_var} < {bound};"
               f" {loop_var}++) {{"]
        snapshot = list(self.scalars)
        self.scalars.append(loop_var)
        self.locked.add(loop_var)
        for _ in range(self.rng.randint(1, 2)):
            out += self.statement(indent + 1, depth - 1)
        self.scalars = list(snapshot)
        self.locked.discard(loop_var)
        out.append(f"{pad}}}")
        return out

    def countdown_loop(self, indent: int, depth: int) -> List[str]:
        """A data-dependent-looking while loop that provably terminates:
        a literal countdown the flows cannot bound statically."""
        pad = "    " * indent
        counter = self.fresh("t")
        self.declare(counter, 8, False)
        start = self.rng.randint(2, 12)
        out = [f"{pad}uint8 {counter} = {start};",
               f"{pad}while ({counter} != 0) {{"]
        snapshot = list(self.scalars) + [counter]
        self.scalars.append(counter)
        self.locked.add(counter)
        for _ in range(self.rng.randint(1, 2)):
            out += self.statement(indent + 1, depth - 1)
        self.scalars = list(snapshot)
        out.append(f"{pad}    {counter} = {counter} - 1;")
        out.append(f"{pad}}}")
        return out

    def array_touch(self, indent: int) -> List[str]:
        pad = "    " * indent
        name, size = self.rng.choice(self.arrays)
        index = f"({self.expression(self.scalars, 1)}) & {size - 1}"
        if self.rng.random() < 0.5:
            target = self.assign_target()
            return [f"{pad}{target} = {target} ^ {name}[{index}];"]
        return [f"{pad}{name}[{index}] = {self.expression(self.scalars, 2)};"]

    def call_stmt(self, indent: int) -> List[str]:
        pad = "    " * indent
        helper = self.rng.choice(self.helper_names)
        a = self.expression(self.scalars, 1)
        b = self.expression(self.scalars, 1)
        name = self.fresh()
        self.declare(name)
        self.scalars.append(name)
        return [f"{pad}int {name} = {helper}({a}, {b});"]

    def pointer_walk(self, indent: int) -> List[str]:
        pad = "    " * indent
        if not self.arrays:
            self.add_array()
        name, size = self.rng.choice(self.arrays)
        p = self.fresh("p")
        acc = self.fresh("pa")
        self.declare(acc)
        steps = self.rng.randint(2, size)
        out = [
            f"{pad}int *{p} = &{name}[0];",
            f"{pad}int {acc} = 0;",
            f"{pad}for (int w = 0; w < {steps}; w++) {{",
            f"{pad}    {acc} = {acc} + *{p};",
            f"{pad}    {p} = {p} + 1;",
            f"{pad}}}",
        ]
        if self.rng.random() < 0.5:
            out.insert(2, f"{pad}*{p} = {self.constant()};")
        self.scalars.append(acc)
        return out

    def indirect_walk(self, indent: int) -> List[str]:
        """The C2HLSC pointer-indirection entry: a pointer derived from
        runtime data (base plus masked offset), a store through it, then
        a bounded walk.  The offset mask keeps the walk in bounds, so
        the construct is legal wherever pointers are."""
        pad = "    " * indent
        if not self.arrays:
            self.add_array()
        name, size = self.rng.choice(self.arrays)
        half = size // 2
        p = self.fresh("ip")
        off = self.fresh("io")
        acc = self.fresh("ia")
        walker = self.fresh("iw")
        self.declare(off), self.declare(acc)
        out = [
            f"{pad}int {off} = "
            f"({self.expression(self.scalars, 1)}) & {half - 1};",
            f"{pad}int *{p} = &{name}[0];",
            f"{pad}{p} = {p} + {off};",
            f"{pad}*{p} = {self.constant()};",
            f"{pad}int {acc} = 0;",
            f"{pad}for (int {walker} = 0; {walker} < {half};"
            f" {walker}++) {{",
            f"{pad}    {acc} = {acc} + *{p};",
            f"{pad}    {p} = {p} + 1;",
            f"{pad}}}",
        ]
        self.scalars.append(acc)
        return out

    def record_block(self, indent: int) -> List[str]:
        """The checklist's struct entry, emulated: the language has no
        record type, so a "struct array" is parallel arrays sharing one
        masked index — the access pattern flows must schedule together."""
        pad = "    " * indent
        size = self.rng.choice([4, 8])
        base = self.fresh("rec")
        names = []
        for fno in range(self.rng.randint(2, 3)):
            fname = f"{base}_f{fno}"
            init = ", ".join(
                str(self.rng.randint(0, 63)) for _ in range(size)
            )
            self.globals.append(f"int {fname}[{size}] = {{{init}}};")
            names.append(fname)
        idx = self.fresh("rx")
        acc = self.fresh("ra")
        q = self.fresh("rq")
        self.declare(idx), self.declare(acc)
        out = [
            f"{pad}int {idx} = "
            f"({self.expression(self.scalars, 1)}) & {size - 1};",
            f"{pad}int {acc} = 0;",
            f"{pad}for (int {q} = 0; {q} < {size}; {q}++) {{",
            f"{pad}    {names[0]}[{q}] = {names[0]}[{q}]"
            f" + {names[1]}[({idx} + {q}) & {size - 1}];",
            f"{pad}}}",
        ]
        for fname in names:
            out.append(f"{pad}{acc} = {acc} ^ {fname}[{idx}];")
        self.scalars.append(acc)
        return out

    def irregular_loop(self, indent: int, depth: int) -> List[str]:
        """The checklist's irregular-loop entry: a trip count computed
        from runtime data.  Masked to eight or fewer iterations so the
        interpreter's fuel bound holds, but no flow can bound the count
        statically — which is why static-bound flows never see it."""
        pad = "    " * indent
        bound = self.fresh("n")
        loop_var = self.fresh("j")
        self.declare(bound), self.declare(loop_var)
        out = [
            f"{pad}int {bound} = "
            f"(({self.expression(self.scalars, 1)}) & 7) + 1;",
            f"{pad}for (int {loop_var} = 0; {loop_var} < {bound};"
            f" {loop_var}++) {{",
        ]
        snapshot = list(self.scalars)
        self.scalars.append(loop_var)
        self.locked.add(loop_var)
        for _ in range(self.rng.randint(1, 2)):
            out += self.statement(indent + 1, depth - 1)
        self.scalars = snapshot
        self.locked.discard(loop_var)
        out.append(f"{pad}}}")
        return out

    def par_block(self, indent: int) -> List[str]:
        """Disjoint writes in parallel branches: each branch assigns its
        own fresh variable from pre-existing state, so the block is
        deterministic and race-free."""
        pad = "    " * indent
        readable = list(self.scalars)
        branches = []
        fresh = []
        for _ in range(self.rng.randint(2, 3)):
            name = self.fresh("pv")
            self.declare(name)
            fresh.append(name)
            branches.append(
                f"{pad}    {name} = {self.expression(readable, 2)};"
            )
        out = [f"{pad}int {name} = 0;" for name in fresh]
        out.append(f"{pad}par {{")
        out += branches
        out.append(f"{pad}}}")
        self.scalars.extend(fresh)
        return out

    def channel_reads(self, indent: int) -> List[str]:
        pad = "    " * indent
        out = []
        for chan, count in self.channel_recv:
            acc = self.fresh("cv")
            item = self.fresh("cr")
            self.declare(acc), self.declare(item)
            # Handel-C's translation needs recv() standing alone on the
            # right-hand side, and every other flow accepts that shape too.
            out += [
                f"{pad}int {acc} = 0;",
                f"{pad}int {item} = 0;",
                f"{pad}for (int r = 0; r < {count}; r++) {{",
                f"{pad}    {item} = recv({chan});",
                f"{pad}    {acc} = {acc} + {item};",
                f"{pad}}}",
            ]
            self.scalars.append(acc)
        return out

    # -- boundary injection --------------------------------------------------

    def inject_boundary(self, feature: str) -> List[str]:
        """Emit exactly one construct from the flow's forbidden set."""
        if feature == FEATURE_POINTERS:
            if not self.arrays:
                self.add_array()
            name, _ = self.arrays[0]
            p = self.fresh("bp")
            acc = self.rng.choice(self.scalars)
            return [
                f"    int *{p} = &{name}[0];",
                f"    {acc} = {acc} + *{p};",
            ]
        if feature == FEATURE_CHANNELS:
            chan = self.fresh("bc")
            self.globals.append(f"chan<int> {chan};")
            self.processes.append(
                f"process void feed_{chan}() {{\n"
                f"    send({chan}, {self.constant()});\n}}"
            )
            acc = self.rng.choice(self.scalars)
            return [f"    {acc} = recv({chan});"]
        if feature == FEATURE_PAR:
            a = self.fresh("ba")
            b = self.fresh("bb")
            return [
                f"    int {a} = 0;",
                f"    int {b} = 0;",
                "    par {",
                f"        {a} = x + 1;",
                f"        {b} = y + 2;",
                "    }",
                f"    x = x ^ {a} ^ {b};",
            ]
        raise ValueError(f"cannot inject feature {feature!r}")

    # -- assembly ------------------------------------------------------------

    def render(self) -> str:
        parts: List[str] = []
        parts += self.globals
        parts += self.helpers
        parts += self.processes
        body = "\n".join(self.body)
        parts.append(f"int main(int x, int y) {{\n{body}\n}}")
        return "\n".join(parts)


def generate_program(
    seed: int,
    mask: FeatureMask,
    boundary: bool = False,
    statements: int = 8,
    profile: str = "",
    profiles: Tuple[str, ...] = (),
) -> GeneratedProgram:
    """Synthesize one program targeting ``mask.flow``.

    Non-boundary programs stay strictly inside the flow's accepted subset
    (the property suite asserts they lint clean); boundary programs add
    exactly one forbidden construct and are expected to be rejected.

    ``profile`` forces one shape (if the mask permits it); ``profiles``
    restricts the rotation to an allowed subset — both are how the
    coverage-guided scheduler steers generation without breaking the
    pure-function-of-seed contract (the chosen profile is recorded on
    the returned program, and the same arguments always regenerate the
    same source).
    """
    builder = _FuzzBuilder(seed * 2 + (1 if boundary else 0), mask)
    rng = builder.rng
    builder.declare("x"), builder.declare("y")

    allowed = available_profiles(mask)
    if profiles:
        subset = [p for p in allowed if p in profiles]
        if subset:
            allowed = subset
    if profile and profile in allowed:
        chosen = profile
    else:
        chosen = allowed[seed % len(allowed)]

    boundary_feature = ""
    if boundary:
        choices = mask.boundary_features
        if not choices:
            boundary = False           # flow accepts every probe feature
        else:
            boundary_feature = choices[seed % len(choices)]
            chosen = PROFILE_SCALAR if seed % 2 == 0 else PROFILE_CONTROL

    if chosen in (PROFILE_ARRAY, PROFILE_MIXED, PROFILE_POINTER,
                  PROFILE_INDIRECT):
        for _ in range(rng.randint(1, 2)):
            builder.add_array()
    if chosen in (PROFILE_CALLS, PROFILE_MIXED):
        for _ in range(rng.randint(1, 2)):
            builder.add_helper()
    if chosen == PROFILE_CHANNEL or (
        chosen == PROFILE_MIXED
        and mask.allows(FEATURE_CHANNELS)
        and mask.allows_processes
        and rng.random() < 0.4
    ):
        builder.add_channel_pipeline()

    depth = 0 if chosen == PROFILE_SCALAR else 2
    for _ in range(statements):
        builder.body += builder.statement(1, depth)
        if builder.helper_names and rng.random() < 0.25:
            builder.body += builder.call_stmt(1)
    if chosen == PROFILE_POINTER:
        builder.body += builder.pointer_walk(1)
    if chosen == PROFILE_INDIRECT:
        builder.body += builder.indirect_walk(1)
    if chosen == PROFILE_RECORD:
        builder.body += builder.record_block(1)
    if chosen == PROFILE_IRREGULAR:
        builder.body += builder.irregular_loop(1, 2)
    if chosen == PROFILE_PAR or (
        chosen == PROFILE_MIXED
        and mask.allows(FEATURE_PAR)
        and rng.random() < 0.5
    ):
        builder.body += builder.par_block(1)
    if builder.channel_recv:
        builder.body += builder.channel_reads(1)

    if boundary_feature:
        builder.body += builder.inject_boundary(boundary_feature)

    checksum = " ^ ".join(builder.scalars)
    builder.body.append(f"    return {checksum};")

    args = (rng.randint(-100, 100), rng.randint(-100, 100))
    name = f"fuzz-{mask.flow}-s{seed}"
    if boundary_feature:
        name += f"-bnd-{boundary_feature}"
    return GeneratedProgram(
        name=name,
        source=builder.render(),
        args=args,
        flow=mask.flow,
        profile=chosen,
        seed=seed,
        boundary_feature=boundary_feature,
    )
