"""The seed pool: novelty-scored parents with power scheduling.

In coverage-guided mode every executed program becomes a pool entry
scored by how many *new* coverage buckets it opened.  The scheduler
draws parents energy-weighted (AFL-style power scheduling: a parent that
just found novel coverage gets mutated and varied more), and each
selection decays the winner's energy so no single seed monopolises the
campaign — pressure moves with the coverage frontier.

Everything is deterministic: selection consumes a ``random.Random``
stream the campaign derives from ``(campaign_seed, shard_index, flow)``,
and entries are kept in insertion order, so the same options replay the
same schedule bucket for bucket.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Energy decay applied to a parent on each selection.
DECAY = 0.5
#: Floor below which a parent effectively leaves the rotation.
MIN_ENERGY = 0.05


@dataclass
class PoolEntry:
    """One executed program the scheduler may derive children from."""

    key: str                  # unique id, e.g. "flow:profile:seed"
    flow: str
    profile: str
    seed: int
    statements: int           # generation size parameter used
    new_buckets: int = 0      # novelty at (last) execution
    energy: float = 1.0
    selections: int = 0
    children: int = 0

    def mutation_bonus(self, cap: int = 2) -> int:
        """Extra metamorphic mutants this parent's children earn: one
        per four novel buckets, capped — the power-scheduling half that
        spends cells, not just selection probability."""
        return min(cap, self.new_buckets // 4)


@dataclass
class SeedPool:
    """Energy-weighted parent store for one campaign (or shard)."""

    entries: List[PoolEntry] = field(default_factory=list)
    _index: Dict[str, PoolEntry] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.entries)

    def add(self, entry: PoolEntry) -> PoolEntry:
        """Insert (or update-and-return) an entry; energy starts at
        ``1 + new_buckets`` so novel parents dominate early draws."""
        existing = self._index.get(entry.key)
        if existing is not None:
            existing.new_buckets = max(existing.new_buckets, entry.new_buckets)
            return existing
        entry.energy = 1.0 + float(entry.new_buckets)
        self.entries.append(entry)
        self._index[entry.key] = entry
        return entry

    def credit(self, key: str, new_buckets: int) -> None:
        """Re-score an existing entry after (re-)execution."""
        entry = self._index.get(key)
        if entry is None:
            return
        entry.new_buckets = new_buckets
        entry.energy = max(entry.energy, 1.0 + float(new_buckets))

    def total_energy(self) -> float:
        return sum(e.energy for e in self.entries)

    def select(self, rng: random.Random) -> Optional[PoolEntry]:
        """Energy-weighted draw; decays the winner.  Deterministic given
        the rng state and insertion order."""
        if not self.entries:
            return None
        total = self.total_energy()
        if total <= 0:
            choice = self.entries[rng.randrange(len(self.entries))]
        else:
            point = rng.random() * total
            running = 0.0
            choice = self.entries[-1]
            for entry in self.entries:
                running += entry.energy
                if point <= running:
                    choice = entry
                    break
        choice.selections += 1
        choice.energy = max(MIN_ENERGY, choice.energy * DECAY)
        return choice

    def hottest(self, top: int = 5) -> List[PoolEntry]:
        """The most-novel entries (report/debug surface)."""
        ranked = sorted(
            self.entries, key=lambda e: (-e.new_buckets, e.key)
        )
        return ranked[:top]


__all__ = ["DECAY", "MIN_ENERGY", "PoolEntry", "SeedPool"]
