"""Automatic reducer: delta-debug failing programs to minimal reproducers.

Given a failing program and a *predicate* ("does this candidate still fail
with the same signature?"), the reducer shrinks in two alternating passes
until a global fixpoint:

* **statement pass** — remove whole statements (including entire loops,
  conditionals, helper functions, globals, and processes).  Greedy
  one-at-a-time with restart, which guarantees the result is
  **1-minimal at statement granularity**: no single statement can be
  removed without either breaking the program or losing the signature.
* **token pass** — shrink below statement level: replace a binary
  expression by one of its operands, collapse a conditional to one arm,
  shrink integer literals toward zero, and flatten an ``if`` to its taken
  branch.

Every candidate is validated through the real frontend before the
predicate sees it, so the predicate only ever judges parseable programs.
A predicate that does not hold on the *input* program returns immediately
(``reproduced=False``) — the reducer never loops on non-reproducing
failures.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..lang import ast_nodes as ast
from ..lang import parse
from ..lang.pretty import print_program

Predicate = Callable[[str], bool]

# Safety valve: reduction must terminate even on adversarial predicates.
DEFAULT_MAX_CALLS = 3000


@dataclass
class ReductionResult:
    original: str
    reduced: str
    reproduced: bool                 # predicate held on the input program
    predicate_calls: int = 0
    statement_rounds: int = 0
    token_rounds: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def shrink_ratio(self) -> float:
        if not self.original:
            return 1.0
        return len(self.reduced) / max(1, len(self.original))


class _Budget:
    def __init__(self, limit: int):
        self.limit = limit
        self.calls = 0

    def spent(self) -> bool:
        return self.calls >= self.limit


def _try_parse(source: str) -> bool:
    try:
        parse(source)
        return True
    except Exception:
        return False


def _render(program: ast.Program) -> Optional[str]:
    try:
        text = print_program(program)
    except Exception:
        return None
    return text if _try_parse(text) else None


# -- statement-level candidates ---------------------------------------------

def _statement_paths(program: ast.Program) -> List[Tuple]:
    """Every deletable statement position, as (kind, *address) tuples that
    remain meaningful on a fresh deepcopy of the same program."""
    paths: List[Tuple] = []
    for gi in range(len(program.globals)):
        paths.append(("global", gi))
    for ci in range(len(program.channels)):
        paths.append(("channel", ci))
    for fi, fn in enumerate(program.functions):
        if fn.name != "main":
            paths.append(("function", fi))

    def block_paths(block: ast.Block, addr: Tuple) -> None:
        for i, stmt in enumerate(block.statements):
            paths.append(("stmt", addr, i))
            for j, child in enumerate(_child_blocks(stmt)):
                block_paths(child, addr + (i, j))

    for fi, fn in enumerate(program.functions):
        if isinstance(fn.body, ast.Block):
            block_paths(fn.body, (fi,))
    return paths


def _child_blocks(stmt) -> List[ast.Block]:
    out: List[ast.Block] = []
    if isinstance(stmt, ast.Block):
        out.append(stmt)
    elif isinstance(stmt, ast.If):
        for branch in (stmt.then, stmt.otherwise):
            if isinstance(branch, ast.Block):
                out.append(branch)
    elif isinstance(stmt, (ast.While, ast.DoWhile, ast.For)):
        if isinstance(stmt.body, ast.Block):
            out.append(stmt.body)
    elif isinstance(stmt, ast.Par):
        out += [b for b in stmt.branches if isinstance(b, ast.Block)]
    elif isinstance(stmt, ast.Seq):
        if isinstance(stmt.body, ast.Block):
            out.append(stmt.body)
    elif isinstance(stmt, ast.Within):
        if isinstance(stmt.body, ast.Block):
            out.append(stmt.body)
    return out


def _resolve_block(program: ast.Program, addr: Tuple) -> Optional[ast.Block]:
    fi = addr[0]
    if fi >= len(program.functions):
        return None
    node: ast.Block = program.functions[fi].body
    rest = addr[1:]
    while rest:
        i, j = rest[0], rest[1]
        rest = rest[2:]
        if not isinstance(node, ast.Block) or i >= len(node.statements):
            return None
        children = _child_blocks(node.statements[i])
        if j >= len(children):
            return None
        node = children[j]
    return node if isinstance(node, ast.Block) else None


def _delete_path(program: ast.Program, path: Tuple) -> bool:
    kind = path[0]
    if kind == "global":
        if path[1] < len(program.globals):
            program.globals.pop(path[1])
            return True
        return False
    if kind == "channel":
        if path[1] < len(program.channels):
            program.channels.pop(path[1])
            return True
        return False
    if kind == "function":
        if path[1] < len(program.functions):
            program.functions.pop(path[1])
            return True
        return False
    _, addr, i = path
    block = _resolve_block(program, addr)
    if block is None or i >= len(block.statements):
        return False
    block.statements.pop(i)
    return True


def _candidate_without(source: str, path: Tuple) -> Optional[str]:
    program, _ = parse(source)
    working = copy.deepcopy(program)
    if not _delete_path(working, path):
        return None
    return _render(working)


# -- token-level candidates --------------------------------------------------

def _token_candidates(source: str) -> List[str]:
    """Expression-granularity shrinks, already validated to parse."""
    program, _ = parse(source)
    edits: List[Callable[[ast.Program], bool]] = []

    def exprs_of(fresh):
        found = []

        def visit(e, parent, slot):
            found.append((e, parent, slot))

        from .mutate import _walk_exprs

        _walk_exprs(fresh, visit)
        return found

    base = exprs_of(program)
    for idx, (e, parent, slot) in enumerate(base):
        if parent is None:
            continue
        if isinstance(e, ast.BinaryOp):
            edits.append(_replace_with_child(idx, "left"))
            edits.append(_replace_with_child(idx, "right"))
        elif isinstance(e, ast.Conditional):
            edits.append(_replace_with_child(idx, "then"))
            edits.append(_replace_with_child(idx, "otherwise"))
        elif isinstance(e, ast.IntLiteral) and e.value not in (0, 1):
            edits.append(_shrink_literal(idx, 0))
            edits.append(_shrink_literal(idx, e.value // 2))
    # Flatten if-statements to a taken branch.
    flat_count = _count_flattenable_ifs(program)
    for k in range(flat_count):
        edits.append(_flatten_if(k, "then"))
        edits.append(_flatten_if(k, "otherwise"))

    out: List[str] = []
    for edit in edits:
        fresh = copy.deepcopy(program)
        try:
            if not edit(fresh):
                continue
        except Exception:
            continue
        text = _render(fresh)
        if text is not None and text != source:
            out.append(text)
    return out


def _nth_expr(fresh, idx):
    found = []

    def visit(e, parent, slot):
        found.append((e, parent, slot))

    from .mutate import _walk_exprs

    _walk_exprs(fresh, visit)
    return found[idx] if idx < len(found) else (None, None, None)


def _assign_slot(parent, slot, value) -> bool:
    if parent is None:
        return False
    if isinstance(parent, list):
        parent[slot] = value
    else:
        setattr(parent, slot, value)
    return True


def _replace_with_child(idx, child_slot):
    def edit(fresh) -> bool:
        e, parent, slot = _nth_expr(fresh, idx)
        if e is None or not hasattr(e, child_slot):
            return False
        return _assign_slot(parent, slot, getattr(e, child_slot))

    return edit


def _shrink_literal(idx, new_value):
    def edit(fresh) -> bool:
        e, parent, slot = _nth_expr(fresh, idx)
        if not isinstance(e, ast.IntLiteral) or e.value == new_value:
            return False
        e.value = new_value
        return True

    return edit


def _count_flattenable_ifs(program) -> int:
    count = 0
    for fn in program.functions:
        count += _count_ifs_in(fn.body)
    return count


def _count_ifs_in(stmt) -> int:
    count = 0
    if isinstance(stmt, ast.Block):
        for s in stmt.statements:
            count += _count_ifs_in(s)
    elif isinstance(stmt, ast.If):
        count += 1
        count += _count_ifs_in(stmt.then)
        if stmt.otherwise is not None:
            count += _count_ifs_in(stmt.otherwise)
    else:
        for child in _child_blocks(stmt):
            count += _count_ifs_in(child)
    return count


def _flatten_if(target_index, branch):
    def edit(fresh) -> bool:
        state = {"seen": 0, "done": False}

        def walk_block(block):
            if state["done"] or not isinstance(block, ast.Block):
                return
            for i, s in enumerate(block.statements):
                if isinstance(s, ast.If):
                    if state["seen"] == target_index:
                        chosen = s.then if branch == "then" else s.otherwise
                        if chosen is None:
                            state["done"] = True
                            return
                        block.statements[i] = chosen
                        state["done"] = True
                        state["ok"] = True
                        return
                    state["seen"] += 1
                    walk_block(s.then if isinstance(s.then, ast.Block) else None)
                    if isinstance(s.otherwise, ast.Block):
                        walk_block(s.otherwise)
                else:
                    for child in _child_blocks(s):
                        walk_block(child)
                if state["done"]:
                    return

        for fn in fresh.functions:
            walk_block(fn.body)
            if state["done"]:
                break
        return state.get("ok", False)

    return edit


# -- the driver ---------------------------------------------------------------

def reduce_source(
    source: str,
    predicate: Predicate,
    max_predicate_calls: int = DEFAULT_MAX_CALLS,
) -> ReductionResult:
    """Shrink ``source`` while ``predicate`` holds.

    The returned program is 1-minimal at statement granularity: deleting
    any single remaining statement either produces an invalid program or
    loses the failure (both count as "cannot remove").
    """
    budget = _Budget(max_predicate_calls)

    def check(candidate: str) -> bool:
        budget.calls += 1
        try:
            return bool(predicate(candidate))
        except Exception:
            return False

    result = ReductionResult(original=source, reduced=source, reproduced=False)
    if not _try_parse(source):
        result.notes.append("input does not parse; nothing to reduce")
        result.predicate_calls = budget.calls
        return result
    if not check(source):
        result.notes.append("failure did not reproduce on the input program")
        result.predicate_calls = budget.calls
        return result
    result.reproduced = True

    current = source
    changed = True
    while changed and not budget.spent():
        changed = False

        # Statement pass: greedy delete-with-restart to 1-minimality.
        progress = True
        while progress and not budget.spent():
            progress = False
            result.statement_rounds += 1
            program, _ = parse(current)
            # Deleting later statements first keeps earlier addresses
            # stable and tends to drop dependents before dependencies.
            for path in reversed(_statement_paths(program)):
                if budget.spent():
                    break
                candidate = _candidate_without(current, path)
                if candidate is None or candidate == current:
                    continue
                if check(candidate):
                    current = candidate
                    progress = True
                    changed = True
                    break   # restart: addresses are stale after a delete

        # Token pass: one accepted shrink, then back to statements.
        result.token_rounds += 1
        for candidate in _token_candidates(current):
            if budget.spent():
                break
            if check(candidate):
                current = candidate
                changed = True
                break

    if budget.spent():
        result.notes.append(
            f"stopped at predicate budget ({budget.limit} calls)"
        )
    result.reduced = current
    result.predicate_calls = budget.calls
    return result


def is_statement_minimal(source: str, predicate: Predicate) -> bool:
    """True when no single-statement deletion keeps the predicate alive —
    the 1-minimality check the reducer promises and the tests assert."""
    program, _ = parse(source)
    for path in _statement_paths(program):
        candidate = _candidate_without(source, path)
        if candidate is None:
            continue
        try:
            if predicate(candidate):
                return False
        except Exception:
            continue
    return True
