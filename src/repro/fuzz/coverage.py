"""The campaign coverage signal: deterministic buckets over cell results.

Coverage-guided fuzzing needs a feedback signal that is (a) cheap, (b)
meaningful for a compiler pipeline, and (c) byte-deterministic so two
campaigns over the same options agree bucket-for-bucket.  The matrix
already produces both halves of that signal:

* the **trace counters** PR 5 threads through every compile phase (op
  counts, state counts, machine counts — deterministic by construction,
  durations are excluded at the source), and
* the **sim profiler's state-visit histograms**, summarized rank-wise
  (the top-N visit counts, not state *names*, so buckets compare across
  unrelated programs).

Each cell result flattens into a list of string buckets via
:func:`cell_signals`; numeric values are log2-bucketed so a counter has
to *double* to open a new bucket (novelty means a structurally different
program, not one more statement).  :class:`CoverageMap` counts distinct
buckets and hit frequencies, merges across shards, and round-trips
through JSON for the report schema.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

#: Signal family tags, in the order ``families()`` reports them.
FAMILIES = ("verdict", "rule", "phase", "ctr", "sim", "cycles")


def log2_bucket(value: object) -> str:
    """Deterministic coarse bucket for one counter value.

    Integers land in power-of-two buckets (0, 2^1, 2^2, ...): a counter
    must double before it reads as new coverage.  Bools and short strings
    pass through; anything else is repr-trimmed."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        magnitude = int(abs(value))
        if magnitude == 0:
            return "0"
        return f"2^{magnitude.bit_length()}"
    return str(value)[:24]


def _span_names(structure, out: List[str]) -> None:
    for node in structure:
        if isinstance(node, list) and len(node) == 2:
            out.append(str(node[0]))
            _span_names(node[1], out)
        else:
            out.append(str(node))


def cell_signals(result) -> List[str]:
    """Flatten one :class:`~repro.runner.CellResult` into its coverage
    buckets.  Pure in the result's deterministic fields — wall time,
    cache provenance, and trace durations never leak in."""
    from ..trace import numeric_counters_of, structure_of

    flow = result.flow
    signals = [f"{flow}:verdict:{result.verdict}"]
    if result.rule:
        signals.append(f"{flow}:rule:{result.rule}")
    if result.trace:
        names: List[str] = []
        _span_names(structure_of(result.trace), names)
        seen = set()
        for name in names:
            if name not in seen:
                seen.add(name)
                signals.append(f"{flow}:phase:{name}")
        for key, value in sorted(numeric_counters_of(result.trace).items()):
            signals.append(f"{flow}:ctr:{key}:{log2_bucket(value)}")
    stats = getattr(result, "sim_stats", None)
    if stats:
        signals.append(f"{flow}:sim:machines:{stats.get('machines', 0)}")
        signals.append(
            f"{flow}:sim:states:{log2_bucket(stats.get('states', 0))}"
        )
        for rank, visits in enumerate(stats.get("visits", ())):
            signals.append(f"{flow}:sim:rank{rank}:{log2_bucket(visits)}")
    if result.cycles:
        signals.append(f"{flow}:cycles:{log2_bucket(result.cycles)}")
    return signals


class CoverageMap:
    """Distinct coverage buckets with hit counts.

    ``add`` returns how many buckets were *new* — the novelty score the
    seed pool's power scheduler feeds on.  Maps merge associatively and
    commutatively (counts sum, distinct union), so shard maps fold into
    the campaign map in any order with identical results."""

    __slots__ = ("buckets",)

    def __init__(self, buckets: Optional[Dict[str, int]] = None):
        self.buckets: Dict[str, int] = dict(buckets or {})

    def add(self, signals: Iterable[str]) -> int:
        new = 0
        for signal in signals:
            if signal not in self.buckets:
                new += 1
                self.buckets[signal] = 1
            else:
                self.buckets[signal] += 1
        return new

    def peek(self, signals: Iterable[str]) -> int:
        """How many of ``signals`` would be new, without recording them."""
        return sum(1 for s in set(signals) if s not in self.buckets)

    def merge(self, other: "CoverageMap") -> int:
        new = 0
        for signal, count in other.buckets.items():
            if signal not in self.buckets:
                new += 1
                self.buckets[signal] = count
            else:
                self.buckets[signal] += count
        return new

    def distinct(self) -> int:
        return len(self.buckets)

    def __len__(self) -> int:
        return len(self.buckets)

    def __contains__(self, signal: str) -> bool:
        return signal in self.buckets

    def families(self) -> Dict[str, int]:
        """Distinct buckets per signal family (the report's coverage
        summary rows)."""
        counts: Dict[str, int] = {family: 0 for family in FAMILIES}
        for signal in self.buckets:
            parts = signal.split(":", 2)
            family = parts[1] if len(parts) > 1 else "other"
            counts[family] = counts.get(family, 0) + 1
        return {k: v for k, v in sorted(counts.items()) if v}

    def to_dict(self) -> Dict[str, object]:
        return {
            "distinct": self.distinct(),
            "families": self.families(),
            "buckets": dict(sorted(self.buckets.items())),
        }

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, object]]) -> "CoverageMap":
        if not data:
            return cls()
        return cls(buckets=dict(data.get("buckets", {})))  # type: ignore[arg-type]

    def summary(self) -> Dict[str, object]:
        """The buckets-free form reports embed (shard rows stay small)."""
        return {"distinct": self.distinct(), "families": self.families()}


__all__ = ["CoverageMap", "FAMILIES", "cell_signals", "log2_bucket"]
