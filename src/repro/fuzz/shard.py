"""Deterministic campaign sharding and idempotent corpus merging.

A sharded campaign is N independent single-shard campaigns plus one fold.
The split is a pure function of the options: base seed *s* belongs to
shard ``assign_shard(s, campaign_seed, shards)`` no matter which host,
process, or order runs it, so the nightly job can run shards as separate
CI matrix legs (``--shard-index``) and merge their outputs later, and a
local ``--shards N`` run orchestrates the same thing in subprocesses.

The fold is associative and order-independent: per-flow stats sum,
coverage maps union, divergences deduplicate by signature id and sort,
and :func:`merge_corpus_dirs` resolves any byte-level conflict by keeping
the lexicographically smaller entry — so the merged corpus is
byte-identical regardless of shard execution order, and merging a corpus
into itself is a no-op.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence

from .options import FuzzOptions
from .signature import Divergence


def mix(*parts) -> int:
    """FNV-1a over the stringified parts: a stable 32-bit hash behind
    every derived decision — shard assignment, minted child seeds, pool
    rng streams.  Python's ``hash()`` is salted per process; this never
    is, which is what makes shard splits reproducible across hosts."""
    value = 0x811C9DC5
    for part in parts:
        for byte in str(part).encode():
            value ^= byte
            value = (value * 0x01000193) & 0xFFFFFFFF
        # Field separator so ("ab", "c") and ("a", "bc") differ.
        value ^= 0x1F
        value = (value * 0x01000193) & 0xFFFFFFFF
    return value


def assign_shard(seed: int, campaign_seed: int, shards: int) -> int:
    """Which shard owns base seed ``seed`` — a pure function of the
    campaign seed, never of execution order."""
    if shards <= 1:
        return 0
    return mix("shard", campaign_seed, seed) % shards


def shard_options(options: FuzzOptions, index: int) -> FuzzOptions:
    """The option set one shard subprocess runs under: its slice index,
    and the parent's worker budget divided among the shards."""
    jobs = max(1, options.jobs // max(1, options.shards))
    return options.with_(shard_index=index, jobs=jobs)


def _shard_worker(payload: Dict[str, object]) -> Dict[str, object]:
    """Run one shard.  Module-level and dict-in/dict-out so it pickles
    across the process pool unchanged."""
    from .campaign import run_campaign

    options = FuzzOptions.from_payload(payload["options"])
    report = run_campaign(options)
    return {
        "index": payload["index"],
        "stats": {flow: asdict(s) for flow, s in report.stats.items()},
        "divergences": [d.to_dict() for d in report.divergences],
        "coverage": (
            report.coverage.to_dict() if report.coverage is not None else None
        ),
        "coverage_growth": list(report.coverage_growth),
        "cells_run": report.cells_run,
        "elapsed_s": report.elapsed_s,
        "budget_exhausted": report.budget_exhausted,
    }


def run_sharded(options: FuzzOptions):
    """Run every shard of ``options`` and fold the results into one
    :class:`~repro.fuzz.campaign.CampaignReport`.

    The fold visits shard outcomes in index order and uses only
    order-independent operations, so the merged report's signatures,
    stats, and coverage are identical however the shards were scheduled.
    """
    from .campaign import CampaignReport, FlowStats
    from .corpus import Corpus
    from .coverage import CoverageMap

    started = time.monotonic()
    payloads = [
        {"index": index, "options": shard_options(options, index).to_payload()}
        for index in range(options.shards)
    ]
    workers = min(options.shards, os.cpu_count() or 1)
    if workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_shard_worker, payloads))
    else:
        outcomes = [_shard_worker(payload) for payload in payloads]

    report = CampaignReport(options=options)
    if options.coverage:
        report.coverage = CoverageMap()
    merged: Dict[str, Divergence] = {}
    for outcome in sorted(outcomes, key=lambda o: o["index"]):
        for flow, stats in outcome["stats"].items():
            aggregate = report.stats.setdefault(flow, FlowStats())
            for key, value in stats.items():
                setattr(aggregate, key, getattr(aggregate, key) + value)
        for data in outcome["divergences"]:
            divergence = Divergence.from_dict(data)
            merged.setdefault(divergence.signature().id, divergence)
        shard_coverage = None
        if report.coverage is not None and outcome["coverage"]:
            shard_map = CoverageMap.from_dict(outcome["coverage"])
            report.coverage.merge(shard_map)
            shard_coverage = shard_map.summary()
        report.cells_run += outcome["cells_run"]
        report.budget_exhausted |= bool(outcome["budget_exhausted"])
        report.shard_reports.append({
            "index": outcome["index"],
            "cells_run": outcome["cells_run"],
            "divergences": len(outcome["divergences"]),
            "coverage": shard_coverage,
            "coverage_growth": list(outcome["coverage_growth"]),
            "elapsed_s": round(float(outcome["elapsed_s"]), 3),
            "budget_exhausted": bool(outcome["budget_exhausted"]),
        })
    report.divergences = [merged[sig] for sig in sorted(merged)]

    corpus = Corpus(options.corpus_path)
    known_coarse = corpus.known_coarse()
    for divergence in report.divergences:
        sig = divergence.signature()
        if sig in corpus or sig.coarse in known_coarse:
            report.known_signatures.append(sig.id)
        else:
            report.new_signatures.append(sig.id)
    report.new_signatures.sort()
    report.known_signatures.sort()
    report.elapsed_s = time.monotonic() - started
    return report


@dataclass
class MergeReport:
    """What :func:`merge_corpus_dirs` did, for the CLI and CI logs."""

    copied: List[str] = field(default_factory=list)      # written into dest
    identical: int = 0                                   # already there
    conflicts: List[str] = field(default_factory=list)   # tie-broken paths

    @property
    def changed(self) -> bool:
        return bool(self.copied)

    def summary(self) -> str:
        return (
            f"merged: {len(self.copied)} copied, {self.identical} identical, "
            f"{len(self.conflicts)} conflicts"
        )


def merge_corpus_dirs(sources: Sequence[Path], dest: Path) -> MergeReport:
    """Fold shard corpus deltas into ``dest``, idempotently.

    Entries are visited in sorted (source, relative-path) order.  An entry
    absent from ``dest`` is copied; a byte-identical one is counted and
    skipped (so merging a corpus into itself changes nothing); when the
    same relative path carries different bytes — between two sources or
    against ``dest`` — the lexicographically smaller byte string wins.
    The winner rule is symmetric and deterministic, which is what makes
    the merged corpus independent of shard execution order.
    """
    dest = Path(dest)
    report = MergeReport()
    conflicts = set()

    candidates: Dict[str, bytes] = {}
    for source in sorted(Path(s) for s in sources):
        if not source.is_dir():
            continue
        for path in sorted(source.glob("*/*.json")):
            rel = path.relative_to(source).as_posix()
            data = path.read_bytes()
            if rel not in candidates:
                candidates[rel] = data
            elif candidates[rel] != data:
                conflicts.add(rel)
                candidates[rel] = min(candidates[rel], data)

    for rel in sorted(candidates):
        target = dest / rel
        data = candidates[rel]
        if target.exists():
            existing = target.read_bytes()
            if existing == data:
                report.identical += 1
                continue
            conflicts.add(rel)
            if data < existing:
                target.write_bytes(data)
                report.copied.append(rel)
            else:
                report.identical += 1
            continue
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(data)
        report.copied.append(rel)

    report.conflicts = sorted(conflicts)
    return report


__all__ = [
    "MergeReport",
    "assign_shard",
    "merge_corpus_dirs",
    "mix",
    "run_sharded",
    "shard_options",
]
