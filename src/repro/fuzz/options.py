"""``FuzzOptions`` — the frozen option set behind ``run_campaign``.

The campaign layer used to take an ad-hoc mutable ``CampaignConfig``; this
module gives fuzzing the same facade :class:`repro.api.SynthesisOptions`
gave synthesis: one frozen dataclass whose fields the CLI flags map onto
1:1, with ``make``/``with_`` builders, a JSON-stable :meth:`identity`, and
a payload round-trip so campaign shards can ship their exact option set
across process boundaries.  The legacy ``CampaignConfig`` survives as a
deprecation shim (see :func:`coerce_options`): it converts losslessly,
warns once per process, and — because it predates coverage guidance —
maps onto ``coverage=False`` so legacy callers get byte-identical results.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path
from typing import Dict, Optional, Tuple

#: Default on-disk corpus root, mirrored from :mod:`.corpus`.
DEFAULT_CORPUS = str(Path("tests") / "corpus")


@dataclass(frozen=True)
class FuzzOptions:
    """Everything that selects *what* a fuzz campaign runs.

    Fields
    ------
    flows:
        Flow keys to target (None = every compilable flow).
    profiles:
        Restrict clean-side generation to these grammar profiles
        (empty = every profile the flow's mask allows).
    seeds:
        Program budget per flow.  In coverage-guided mode this is the
        number of programs scheduled, not a literal seed range: after a
        bootstrap pass the scheduler mints fresh seeds from the pool.
    seed_base:
        First base seed (campaigns are pure in their seeds).
    campaign_seed:
        Root of every derived random stream — pool selection, minted
        child seeds, and the shard split are all functions of it.
    jobs:
        Engine worker processes per (shard of the) campaign.
    time_budget_s:
        Stop scheduling new work after this many seconds (0 = none).
    reduce:
        Delta-debug each deduplicated divergence to a 1-minimal
        reproducer.
    mutations:
        Base metamorphic mutants per clean program; the power scheduler
        may add more for high-novelty parents in coverage mode.
    timeout_s / max_cycles:
        Per-cell wall-clock deadline and simulation bound.
    cache_dir:
        Artifact cache directory ("" = caching off).  Shards share it:
        the cache's content addressing makes concurrent reuse safe.
    corpus_dir:
        The triaged corpus compared against (and promoted into).
    batch_size:
        Cells per engine dispatch.
    sim_backend:
        FSMD engine for every cell ("interp", "compiled", "batched").
    input_lanes:
        Argument sets simulated per clean program.
    opt_levels:
        Cross-level mode: extra opt_levels each clean program also runs
        at, divergences triaged as ``opt-diverge``.
    coverage:
        Feedback-driven mode: collect a :class:`~repro.fuzz.coverage.
        CoverageMap` from trace counters and sim state-visit histograms
        and let a novelty-scored seed pool steer generation.  Off, the
        campaign runs the classic fixed-profile plan.
    shards / shard_index:
        Deterministic campaign split.  ``shards > 1`` with
        ``shard_index=None`` orchestrates every shard in subprocesses
        and merges; with an index set, only that shard's slice runs
        (the CI matrix mode).  The slice is a pure function of
        (campaign_seed, shard_index) — never of execution order.
    shard_dir:
        Where ``--update-corpus`` writes this shard's *new* findings
        ("" = straight into ``corpus_dir``); the merge step folds shard
        dirs back into the corpus idempotently.
    """

    flows: Optional[Tuple[str, ...]] = None
    profiles: Tuple[str, ...] = ()
    seeds: int = 100
    seed_base: int = 0
    campaign_seed: int = 0
    jobs: int = 1
    time_budget_s: float = 0.0
    reduce: bool = True
    mutations: int = 2
    timeout_s: float = 20.0
    max_cycles: int = 200_000
    cache_dir: str = ""
    corpus_dir: str = DEFAULT_CORPUS
    batch_size: int = 200
    sim_backend: str = "interp"
    input_lanes: int = 1
    opt_levels: Tuple[int, ...] = ()
    coverage: bool = True
    shards: int = 1
    shard_index: Optional[int] = None
    shard_dir: str = ""

    @classmethod
    def make(cls, base: Optional["FuzzOptions"] = None,
             **kwargs) -> "FuzzOptions":
        """Build options from a base plus keyword overrides, normalizing
        the shapes the CLI and legacy configs hand over: lists become
        tuples, paths become strings, None stays None where it means
        "default"."""
        base = base if base is not None else cls()
        update: Dict[str, object] = {}
        names = {f.name for f in fields(cls)}
        for key, value in kwargs.items():
            if key not in names:
                raise TypeError(f"FuzzOptions has no field {key!r}")
            update[key] = _normalize(key, value)
        return replace(base, **update) if update else base

    def with_(self, **kwargs) -> "FuzzOptions":
        """A copy with field overrides (frozen-friendly)."""
        return FuzzOptions.make(self, **kwargs)

    # -- derived paths ----------------------------------------------------

    @property
    def cache_path(self) -> Optional[Path]:
        return Path(self.cache_dir) if self.cache_dir else None

    @property
    def corpus_path(self) -> Path:
        return Path(self.corpus_dir or DEFAULT_CORPUS)

    @property
    def promote_path(self) -> Path:
        """Where new findings are written: the shard delta dir when set,
        else the corpus itself."""
        return Path(self.shard_dir) if self.shard_dir else self.corpus_path

    # -- serialization ----------------------------------------------------

    def identity(self) -> Dict[str, object]:
        """The canonical JSON-stable content of the options — what the
        report schema records and shard workers receive.  Everything is
        identity here: unlike synthesis, a campaign's *work list* depends
        on every field (jobs and cache_dir steer scheduling pressure only
        through the time budget, but recording them keeps reports
        honest)."""
        data = asdict(self)
        data["flows"] = list(self.flows) if self.flows is not None else None
        data["profiles"] = list(self.profiles)
        data["opt_levels"] = list(self.opt_levels)
        return data

    def to_payload(self) -> Dict[str, object]:
        """A dict that survives pickling/JSON and rebuilds exactly."""
        return self.identity()

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "FuzzOptions":
        names = {f.name for f in fields(cls)}
        return cls.make(**{k: v for k, v in payload.items() if k in names})


def _normalize(key: str, value):
    if value is None:
        return None
    if key in ("cache_dir", "corpus_dir", "shard_dir"):
        return str(value)
    if key in ("flows", "profiles"):
        return tuple(str(v) for v in value)
    if key == "opt_levels":
        return tuple(int(v) for v in value)
    return value


def coerce_options(config) -> "FuzzOptions":
    """Accept either a :class:`FuzzOptions` or a legacy
    ``CampaignConfig``; the latter warns once per process and maps onto
    ``coverage=False`` (the exact pre-redesign behaviour, so shimmed
    callers see the same results)."""
    if isinstance(config, FuzzOptions):
        return config
    from ..api import warn_legacy

    warn_legacy(
        "repro.fuzz.run_campaign(CampaignConfig)",
        "construct a frozen repro.fuzz.FuzzOptions and call "
        "run_campaign(options) instead",
    )
    return FuzzOptions.make(
        flows=tuple(config.flows) if config.flows is not None else None,
        seeds=config.seeds,
        seed_base=config.seed_base,
        jobs=config.jobs,
        time_budget_s=config.time_budget_s,
        reduce=config.reduce,
        mutations=config.mutations,
        timeout_s=config.timeout_s,
        max_cycles=config.max_cycles,
        cache_dir=str(config.cache_dir) if config.cache_dir else "",
        corpus_dir=str(config.corpus_dir),
        batch_size=config.batch_size,
        sim_backend=config.sim_backend,
        input_lanes=config.input_lanes,
        opt_levels=tuple(config.opt_levels),
        coverage=False,
    )


__all__ = ["FuzzOptions", "coerce_options"]
