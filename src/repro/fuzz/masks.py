"""Per-flow feature masks, derived from the linter's rule sets.

The generative frontend must know, per flow, which language features the
flow's historical tool accepted — a program fuzzing Handel-C should use
``par`` and channels but never pointers, while one fuzzing C2Verilog
should do the opposite.  Rather than duplicating each flow's ``FORBIDDEN``
table, the mask is *derived* from ``flows.registry.lint_rules``: the same
:class:`FeatureRule` instances that predict compile rejections tell the
generator what to avoid (or, in boundary mode, what to deliberately
include), and the structural rules (``NoProcessRule``,
``StaticLoopBoundRule``) constrain program shape.  A new flow — or a
changed restriction on an existing one — retargets the fuzzer with no
fuzzer change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from ..analysis.lint.rules import FeatureRule, NoProcessRule, StaticLoopBoundRule
from ..flows import COMPILABLE
from ..flows.registry import lint_rules
from ..lang.semantic import (
    FEATURE_CHANNELS,
    FEATURE_PAR,
    FEATURE_POINTERS,
)

# Features the generator knows how to emit deliberately.  Recursion is
# excluded: a recursive program cannot be validated by the bounded
# interpreter without also being rejected by every flow, so it makes a
# poor differential probe.
GENERATABLE_FEATURES = (FEATURE_POINTERS, FEATURE_CHANNELS, FEATURE_PAR)


@dataclass(frozen=True)
class FeatureMask:
    """What the generator may emit when targeting one flow."""

    flow: str
    forbidden: FrozenSet[str]       # feature names the flow would reject
    allows_processes: bool          # NoProcessRule absent
    requires_static_bounds: bool    # StaticLoopBoundRule present (Cones)

    def allows(self, feature: str) -> bool:
        return feature not in self.forbidden

    @property
    def boundary_features(self) -> Tuple[str, ...]:
        """Forbidden features the generator can deliberately inject to
        probe the accept/reject boundary of this flow."""
        return tuple(
            f for f in GENERATABLE_FEATURES if f in self.forbidden
        )


def feature_mask(flow: str) -> FeatureMask:
    """Build the mask for ``flow`` from its registered lint rules."""
    forbidden = set()
    allows_processes = True
    requires_static_bounds = False
    for rule in lint_rules(flow):
        if isinstance(rule, FeatureRule):
            forbidden.add(rule.feature)
        elif isinstance(rule, NoProcessRule):
            allows_processes = False
        elif isinstance(rule, StaticLoopBoundRule):
            requires_static_bounds = True
    return FeatureMask(
        flow=flow,
        forbidden=frozenset(forbidden),
        allows_processes=allows_processes,
        requires_static_bounds=requires_static_bounds,
    )


def all_masks(flows: List[str] = None) -> Dict[str, FeatureMask]:
    """Masks for the given flows (default: every compilable flow)."""
    selected = list(flows) if flows is not None else list(COMPILABLE)
    return {key: feature_mask(key) for key in selected}


def timing_probe_kinds(flow: str) -> Tuple[str, ...]:
    """Which timing-boundary probe kinds apply to ``flow``, derived from
    its :class:`~repro.analysis.timing.TimingObligations` the same way
    :func:`feature_mask` derives from the lint registry: a changed
    obligation retargets the probe generator with no fuzzer change.
    Kind names match :data:`repro.fuzz.timing.PROBE_RULES`."""
    from ..analysis.timing import obligations_for

    obligations = obligations_for(flow)
    kinds: List[str] = []
    if obligations.rendezvous:
        kinds.extend(("rv-orphan", "rv-self"))
    if obligations.enforces_within:
        kinds.extend(("within-rendezvous", "within-infeasible"))
    if obligations.lockstep_par:
        kinds.extend(("par-shared-cycle", "mem-port"))
    if obligations.pipelined:
        kinds.append("ii-conflict")
    return tuple(kinds)
