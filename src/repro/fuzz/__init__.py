"""Differential fuzzing of the flow matrix.

The fuzzer closes the loop the hand-written workload suite opens: instead
of a dozen curated programs, it generates thousands targeted at each
flow's accepted subset (and deliberately at its boundary), checks every
one against the reference interpreter *and* against semantics-preserving
rewrites of itself, reduces whatever diverges to a 1-minimal reproducer,
and pins each distinct failure in a replayable corpus.

Layers, bottom-up:

* :mod:`.masks` — per-flow feature masks derived from the lint registry;
* :mod:`.grammar` — the generative frontend (profiles × seeds → programs);
* :mod:`.mutate` — the metamorphic layer (commute, reassociate, rotate,
  dead code, statement split);
* :mod:`.signature` — how failures are named and deduplicated;
* :mod:`.reduce` — statement- then token-level delta debugging;
* :mod:`.corpus` — the persistent triaged corpus under ``tests/corpus/``;
* :mod:`.timing` — schedule-boundary probes predicted to trip one TIM
  rule each, cross-checked by :mod:`repro.analysis.timing.harness`;
* :mod:`.options` — the frozen :class:`FuzzOptions` facade;
* :mod:`.coverage` — the deterministic coverage signal and map;
* :mod:`.pool` — the novelty-scored seed pool (power scheduling);
* :mod:`.shard` — deterministic campaign sharding and corpus merging;
* :mod:`.campaign` — the orchestrator behind ``repro fuzz``.

The public entry point is ``run_campaign(FuzzOptions(...))``; the legacy
mutable ``CampaignConfig`` still works through a one-warning deprecation
shim with its classic (coverage-off) behaviour.
"""

from .campaign import (
    CampaignConfig,
    CampaignReport,
    promote,
    run_campaign,
)
from .corpus import Corpus, CorpusEntry, replay_entry, replay_options
from .coverage import CoverageMap, cell_signals
from .grammar import GeneratedProgram, available_profiles, generate_program
from .masks import FeatureMask, all_masks, feature_mask, timing_probe_kinds
from .mutate import MUTATION_NAMES, Mutant, mutants
from .options import FuzzOptions
from .pool import PoolEntry, SeedPool
from .reduce import ReductionResult, is_statement_minimal, reduce_source
from .shard import MergeReport, assign_shard, merge_corpus_dirs
from .signature import KINDS, Divergence, Signature, program_hash
from .timing import (
    PROBE_RULES,
    TimingProbe,
    generate_timing_probe,
    probe_plan,
)

__all__ = [
    "CampaignConfig",
    "CampaignReport",
    "Corpus",
    "CorpusEntry",
    "CoverageMap",
    "Divergence",
    "FeatureMask",
    "FuzzOptions",
    "GeneratedProgram",
    "KINDS",
    "MUTATION_NAMES",
    "MergeReport",
    "Mutant",
    "PROBE_RULES",
    "PoolEntry",
    "ReductionResult",
    "SeedPool",
    "Signature",
    "TimingProbe",
    "all_masks",
    "assign_shard",
    "available_profiles",
    "cell_signals",
    "feature_mask",
    "generate_program",
    "generate_timing_probe",
    "is_statement_minimal",
    "merge_corpus_dirs",
    "mutants",
    "probe_plan",
    "program_hash",
    "promote",
    "reduce_source",
    "replay_entry",
    "replay_options",
    "run_campaign",
    "timing_probe_kinds",
]
