"""Timing-boundary probes: programs built to violate exactly one TIM rule.

The differential fuzzer's grammar targets each flow's *feature* boundary
(what the frontend rejects); this module targets the *schedule* boundary —
programs every frontend accepts but whose timing/resource obligations a
flow's execution model cannot meet.  Each probe carries its predicted rule
id, and the cross-check harness (:mod:`repro.analysis.timing.harness`)
validates three things per probe: the checker rejects it, the diagnostic
lands on a real source location, and the *predicted failure actually
happens* on the compiled artifact (the schedule refuses, the simulation
deadlocks, or the measured occupancy oversubscribes).

Which probe kinds apply to which flow is derived from the flow's
:class:`~repro.analysis.timing.TimingObligations` via
:func:`repro.fuzz.masks.timing_probe_kinds` — the timing analogue of the
feature masks, so a changed obligation retargets the probe plan with no
change here.  Generation is pure in ``(kind, flow, seed)``: the seed only
varies cosmetic surface (identifier names, constants) so every seed of a
kind still violates the same obligation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.lint.diagnostics import (
    RULE_TIM_II_CONFLICT,
    RULE_TIM_PAR_SHARED_CYCLE,
    RULE_TIM_PORT_OVERSUBSCRIBED,
    RULE_TIM_RENDEZVOUS,
    RULE_TIM_UNBOUNDED_IN_WITHIN,
    RULE_TIM_WITHIN_INFEASIBLE,
)
from ..flows import COMPILABLE
from .masks import timing_probe_kinds

#: Probe kind -> the one TIM rule the probe is built to trip.
PROBE_RULES: Dict[str, str] = {
    "rv-orphan": RULE_TIM_RENDEZVOUS,
    "rv-self": RULE_TIM_RENDEZVOUS,
    "within-rendezvous": RULE_TIM_UNBOUNDED_IN_WITHIN,
    "within-infeasible": RULE_TIM_WITHIN_INFEASIBLE,
    "par-shared-cycle": RULE_TIM_PAR_SHARED_CYCLE,
    "mem-port": RULE_TIM_PORT_OVERSUBSCRIBED,
    "ii-conflict": RULE_TIM_II_CONFLICT,
}

_NAME_POOL = ("c", "link", "pipe", "bus")
_VAR_POOL = ("x", "y", "tmp", "val")
_ARR_POOL = ("arr", "buf", "ram", "mem")


@dataclass(frozen=True)
class TimingProbe:
    """One generated boundary program plus its prediction."""

    kind: str                    # key of PROBE_RULES
    flow: str                    # the flow whose obligation it violates
    seed: int
    rule: str                    # predicted TIM rule id
    source: str
    pipeline_ii: Optional[int] = None   # CheckOptions.pipeline_ii to use
    args: Tuple[int, ...] = field(default=(3,))


def _rng(kind: str, flow: str, seed: int) -> random.Random:
    # zlib.crc32, not hash(): str hashing is salted per process and these
    # probes must be byte-identical across workers and sessions.
    import zlib

    return random.Random(zlib.crc32(f"{kind}|{flow}|{seed}".encode()))


def generate_timing_probe(kind: str, flow: str, seed: int) -> TimingProbe:
    """Build the probe for ``(kind, flow, seed)`` — pure in its inputs."""
    if kind not in PROBE_RULES:
        known = ", ".join(sorted(PROBE_RULES))
        raise KeyError(f"unknown probe kind {kind!r}; known kinds: {known}")
    rng = _rng(kind, flow, seed)
    chan = rng.choice(_NAME_POOL)
    var = rng.choice(_VAR_POOL)
    arr = rng.choice(_ARR_POOL)
    k = rng.randint(1, 9)
    pipeline_ii: Optional[int] = None

    if kind == "rv-self":
        source = (
            f"chan<int> {chan};\n"
            f"int main(int a) {{\n"
            f"  send({chan}, a + {k});\n"
            f"  int {var} = recv({chan});\n"
            f"  return {var};\n"
            f"}}\n"
        )
    elif kind == "rv-orphan":
        # Alternate which endpoint is orphaned; both block forever.
        if seed % 2 == 0:
            source = (
                f"chan<int> {chan};\n"
                f"int main(int a) {{\n"
                f"  send({chan}, a + {k});\n"
                f"  return a;\n"
                f"}}\n"
            )
        else:
            source = (
                f"chan<int> {chan};\n"
                f"int main(int a) {{\n"
                f"  int {var} = recv({chan});\n"
                f"  return {var} + {k};\n"
                f"}}\n"
            )
    elif kind == "within-rendezvous":
        source = (
            f"chan<int> {chan};\n"
            f"process void prod() {{ send({chan}, {k}); }}\n"
            f"int main(int a) {{\n"
            f"  int {var};\n"
            f"  within (2) {{\n"
            f"    {var} = recv({chan});\n"
            f"  }}\n"
            f"  return {var} + a;\n"
            f"}}\n"
        )
    elif kind == "within-infeasible":
        delay = rng.randint(3, 6)
        source = (
            f"int main(int a) {{\n"
            f"  int {var};\n"
            f"  within (2) {{\n"
            f"    {var} = a + {k};\n"
            f"    delay({delay});\n"
            f"    {var} = {var} + {k + 1};\n"
            f"  }}\n"
            f"  return {var};\n"
            f"}}\n"
        )
    elif kind == "par-shared-cycle":
        source = (
            f"int {arr}[8];\n"
            f"int main(int i) {{\n"
            f"  int {var};\n"
            f"  par {{\n"
            f"    {arr}[i & 7] = {k};\n"
            f"    {var} = {arr}[(i + 1) & 7];\n"
            f"  }}\n"
            f"  return {var};\n"
            f"}}\n"
        )
    elif kind == "mem-port":
        source = (
            f"int {arr}[8];\n"
            f"int main(int i) {{\n"
            f"  {arr}[i & 7] = {arr}[(i + 1) & 7] + {arr}[(i + 2) & 7];\n"
            f"  return {arr}[i & 7] + {k};\n"
            f"}}\n"
        )
    elif kind == "ii-conflict":
        pipeline_ii = 2
        init = ", ".join(str(rng.randint(1, 9)) for _ in range(8))
        source = (
            f"int {arr}[8] = {{{init}}};\n"
            f"int main(int a) {{\n"
            f"  int acc = a;\n"
            f"  for (int i = 0; i < 8; i = i + 1) {{\n"
            f"    {arr}[i & 7] = {arr}[(i + 1) & 7] + acc;\n"
            f"    acc = acc + {arr}[(i + 2) & 7];\n"
            f"  }}\n"
            f"  return acc;\n"
            f"}}\n"
        )
    else:  # pragma: no cover - guarded above
        raise AssertionError(kind)

    return TimingProbe(
        kind=kind,
        flow=flow,
        seed=seed,
        rule=PROBE_RULES[kind],
        source=source,
        pipeline_ii=pipeline_ii,
        args=(rng.randint(1, 5),),
    )


def probe_plan(
    flows: Optional[Sequence[str]] = None,
    seeds: int = 8,
    seed_base: int = 0,
) -> List[TimingProbe]:
    """Every applicable ``(kind, flow)`` pair x ``seeds`` probes, in
    deterministic order (flow registry order, then kind, then seed).
    With the defaults this yields 27 pairs x 8 = 216 probes."""
    selected = list(flows) if flows is not None else list(COMPILABLE)
    plan: List[TimingProbe] = []
    for flow in selected:
        for kind in timing_probe_kinds(flow):
            for seed in range(seed_base, seed_base + seeds):
                plan.append(generate_timing_probe(kind, flow, seed))
    return plan
