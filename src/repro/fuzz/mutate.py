"""The metamorphic layer: semantics-preserving program mutations.

Each mutation rewrites the AST in a way that provably cannot change the
interpreter's observable output — commuting a wrapped commutative
operator, re-associating under equal intermediate types, rotating a loop,
inserting dead code, splitting a compound assignment through a typed
temporary.  Running original and mutant through the *same* flow must then
produce the same observables; any divergence is a compiler bug **even
without the reference interpreter** (this is what makes the fuzzer useful
on programs the interpreter cannot run, and doubles the differential
surface on ones it can).

Mutations parse the program, transform a copy, and pretty-print it back;
a mutant that fails to re-parse is discarded (never emitted), so every
mutant handed to the campaign is a valid program.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..lang import ast_nodes as ast
from ..lang import parse
from ..lang.pretty import print_program
from ..lang.types import BoolType, IntType, PointerType
from .masks import FeatureMask

# Wrapped two's-complement + - * and the bitwise ops commute; comparison
# for equality does too.  (`-` does not, and && / || short-circuit.)
_COMMUTATIVE = ("+", "*", "&", "|", "^", "==", "!=")
# Associative under a *fixed* wrap width — we additionally require all
# intermediate types to be identical before re-associating.
_ASSOCIATIVE = ("+", "*", "&", "|", "^")

MUTATION_NAMES = (
    "commute",
    "reassociate",
    "rotate-loop",
    "dead-code",
    "split-stmt",
)


@dataclass(frozen=True)
class Mutant:
    """One semantics-preserving rewrite of a program."""

    name: str          # mutation kind, e.g. "commute"
    index: int         # which candidate site was rewritten
    source: str


# -- AST walking helpers ----------------------------------------------------

def _walk_exprs(node, visit):
    """Visit every expression node reachable from ``node`` (a statement,
    function, or program), passing (expr, parent, slot) to ``visit`` where
    ``parent.slot`` (or ``parent[slot]`` for lists) owns the expression."""

    def expr(e, parent, slot):
        if e is None:
            return
        visit(e, parent, slot)
        if isinstance(e, ast.UnaryOp):
            expr(e.operand, e, "operand")
        elif isinstance(e, ast.BinaryOp):
            expr(e.left, e, "left")
            expr(e.right, e, "right")
        elif isinstance(e, ast.Conditional):
            expr(e.cond, e, "cond")
            expr(e.then, e, "then")
            expr(e.otherwise, e, "otherwise")
        elif isinstance(e, ast.ArrayIndex):
            expr(e.base, e, "base")
            expr(e.index, e, "index")
        elif isinstance(e, ast.Call):
            for i, a in enumerate(e.args):
                expr(a, e.args, i)

    def stmt(s):
        if s is None:
            return
        if isinstance(s, ast.Block):
            for child in s.statements:
                stmt(child)
        elif isinstance(s, ast.VarDecl):
            expr(s.init, s, "init")
            for i, e in enumerate(s.array_init or ()):
                expr(e, s.array_init, i)
        elif isinstance(s, ast.Assign):
            expr(s.target, s, "target")
            expr(s.value, s, "value")
        elif isinstance(s, ast.ExprStmt):
            expr(s.expr, s, "expr")
        elif isinstance(s, ast.If):
            expr(s.cond, s, "cond")
            stmt(s.then)
            stmt(s.otherwise)
        elif isinstance(s, ast.While):
            expr(s.cond, s, "cond")
            stmt(s.body)
        elif isinstance(s, ast.DoWhile):
            expr(s.cond, s, "cond")
            stmt(s.body)
        elif isinstance(s, ast.For):
            stmt(s.init)
            expr(s.cond, s, "cond")
            stmt(s.step)
            stmt(s.body)
        elif isinstance(s, ast.Return):
            expr(s.value, s, "value")
        elif isinstance(s, (ast.Par, ast.Seq)):
            for child in getattr(s, "branches", None) or [s.body]:
                stmt(child)
        elif isinstance(s, ast.Within):
            stmt(s.body)
        elif isinstance(s, ast.Send):
            expr(s.value, s, "value")

    if isinstance(node, ast.Program):
        for g in node.globals:
            stmt(g)
        for fn in node.functions:
            stmt(fn.body)
    elif isinstance(node, ast.FunctionDef):
        stmt(node.body)
    else:
        stmt(node)


def _walk_blocks(program: ast.Program):
    """Yield every Block in every function body, outermost first."""
    pending = [fn.body for fn in program.functions]
    while pending:
        block = pending.pop(0)
        if not isinstance(block, ast.Block):
            continue
        yield block
        for s in block.statements:
            for child in _block_children(s):
                pending.append(child)


def _block_children(stmt):
    if isinstance(stmt, ast.Block):
        return [stmt]
    if isinstance(stmt, ast.If):
        return [b for b in (stmt.then, stmt.otherwise) if b is not None]
    if isinstance(stmt, (ast.While, ast.DoWhile)):
        return [stmt.body]
    if isinstance(stmt, ast.For):
        return [stmt.body]
    if isinstance(stmt, ast.Par):
        return list(stmt.branches)
    if isinstance(stmt, ast.Seq):
        return [stmt.body]
    if isinstance(stmt, ast.Within):
        return [stmt.body]
    return []


def _contains(node, kinds) -> bool:
    found = []
    _walk_exprs(node, lambda e, p, s: found.append(e) if isinstance(e, kinds) else None)
    return bool(found)


def _stmt_contains_continue(stmt) -> bool:
    if isinstance(stmt, ast.Continue):
        return True
    # Continue inside a *nested* loop binds to that loop, not this one.
    if isinstance(stmt, (ast.While, ast.DoWhile, ast.For)):
        return False
    for child in _block_children(stmt):
        if any(_stmt_contains_continue(s) for s in child.statements):
            return True
    if isinstance(stmt, ast.Block):
        return any(_stmt_contains_continue(s) for s in stmt.statements)
    return False


def _is_pure(expr) -> bool:
    """No calls, no channel reads: safe to evaluate early or not at all."""
    return not _contains(expr, (ast.Call, ast.Receive))


def _set(parent, slot, value):
    if isinstance(parent, list):
        parent[slot] = value
    else:
        setattr(parent, slot, value)


# -- individual mutations ---------------------------------------------------

def _commute_sites(program):
    sites = []

    def visit(e, parent, slot):
        if isinstance(e, ast.BinaryOp) and e.op in _COMMUTATIVE:
            if any(
                isinstance(sub.type, PointerType) for sub in (e.left, e.right)
            ):
                return  # pointer arithmetic is not symmetric across flows
            if _is_pure(e.left) and _is_pure(e.right):
                sites.append((e, parent, slot))

    _walk_exprs(program, visit)
    return sites


def _apply_commute(site):
    e, _, _ = site
    e.left, e.right = e.right, e.left


def _reassociate_sites(program):
    """(a op (b op c)) <-> ((a op b) op c), only when every participating
    node (operands and both operators) has the same scalar type — then
    wrap-around happens at one width throughout and the ops associate."""
    sites = []

    def same_types(*nodes):
        types = [n.type for n in nodes]
        if any(t is None for t in types):
            return False
        first = types[0]
        if not isinstance(first, IntType):
            return False
        return all(t == first for t in types)

    def visit(e, parent, slot):
        if not (isinstance(e, ast.BinaryOp) and e.op in _ASSOCIATIVE):
            return
        if isinstance(e.right, ast.BinaryOp) and e.right.op == e.op:
            if same_types(e, e.right, e.left, e.right.left, e.right.right) \
                    and _is_pure(e):
                sites.append(("left", e))
        if isinstance(e.left, ast.BinaryOp) and e.left.op == e.op:
            if same_types(e, e.left, e.right, e.left.left, e.left.right) \
                    and _is_pure(e):
                sites.append(("right", e))

    _walk_exprs(program, visit)
    return sites


def _apply_reassociate(site):
    direction, e = site
    if direction == "left":
        # a op (b op c) -> (a op b) op c
        inner = e.right
        e.left = ast.BinaryOp(op=e.op, left=e.left, right=inner.left,
                              type=e.type)
        e.right = inner.right
    else:
        # (a op b) op c -> a op (b op c)
        inner = e.left
        e.right = ast.BinaryOp(op=e.op, left=inner.right, right=e.right,
                               type=e.type)
        e.left = inner.left


def _rotate_sites(program):
    """``for`` loops whose body has no ``continue`` (continue would skip
    the rotated step) can become init + while(cond){body; step}."""
    sites = []
    for block in _walk_blocks(program):
        for i, s in enumerate(block.statements):
            if isinstance(s, ast.For) and s.cond is not None:
                body = s.body
                if isinstance(body, ast.Block) and not any(
                    _stmt_contains_continue(c) for c in body.statements
                ):
                    sites.append((block, i))
    return sites


def _apply_rotate(site):
    block, i = site
    loop = block.statements[i]
    new_body = ast.Block(statements=list(loop.body.statements))
    if loop.step is not None:
        new_body.statements.append(loop.step)
    rotated = ast.Block(statements=[])
    if loop.init is not None:
        rotated.statements.append(loop.init)
    rotated.statements.append(ast.While(cond=loop.cond, body=new_body))
    block.statements[i] = rotated


def _dead_code_sites(program):
    """Positions (block, index) in the *entry* functions where an unused
    declaration can be inserted.  Parameters of the owning function are the
    only names we can safely read at an arbitrary position."""
    sites = []
    for fn in program.functions:
        params = [p.name for p in fn.params
                  if isinstance(p.param_type, (IntType, BoolType))]
        if not isinstance(fn.body, ast.Block):
            continue
        for i in range(len(fn.body.statements) + 1):
            sites.append((fn.body, i, params))
    return sites


_DEAD_COUNTER = "__dead"


def _apply_dead_code(site, rng: random.Random, existing: int):
    block, i, params = site
    name = f"{_DEAD_COUNTER}{existing}"
    if params and rng.random() < 0.7:
        base = ast.Identifier(name=rng.choice(params))
    else:
        base = ast.IntLiteral(value=rng.randint(0, 255))
    expr = ast.BinaryOp(
        op=rng.choice(["+", "^", "|"]),
        left=base,
        right=ast.IntLiteral(value=rng.randint(0, 255)),
    )
    decl = ast.VarDecl(name=name, var_type=IntType(32, True), init=expr)
    block.statements.insert(i, decl)


def _split_sites(program):
    """Assignments ``t = a op b`` where ``a`` is pure and scalar-typed:
    extract ``a`` into a typed temporary declared just before."""
    sites = []
    for block in _walk_blocks(program):
        for i, s in enumerate(block.statements):
            if not (isinstance(s, ast.Assign)
                    and isinstance(s.target, ast.Identifier)
                    and isinstance(s.value, ast.BinaryOp)):
                continue
            left = s.value.left
            if left.type is None:
                continue
            if not isinstance(left.type, (IntType, BoolType)):
                continue
            if not _is_pure(s.value):
                continue  # never move or duplicate calls / channel reads
            sites.append((block, i))
    return sites


def _apply_split(site, existing: int):
    block, i = site
    stmt = block.statements[i]
    left = stmt.value.left
    name = f"__split{existing}"
    decl = ast.VarDecl(name=name, var_type=left.type, init=left)
    stmt.value.left = ast.Identifier(name=name, type=left.type)
    block.statements[i] = ast.Block(statements=[decl, stmt])


# -- driver -----------------------------------------------------------------

def _mutation_catalog():
    return {
        "commute": (_commute_sites, lambda site, rng, n: _apply_commute(site)),
        "reassociate": (
            _reassociate_sites,
            lambda site, rng, n: _apply_reassociate(site),
        ),
        "rotate-loop": (_rotate_sites, lambda site, rng, n: _apply_rotate(site)),
        "dead-code": (_dead_code_sites, _apply_dead_code),
        "split-stmt": (_split_sites, lambda site, rng, n: _apply_split(site, n)),
    }


def mutants(
    source: str,
    seed: int = 0,
    count: int = 3,
    mask: Optional[FeatureMask] = None,
    only: Optional[List[str]] = None,
) -> List[Mutant]:
    """Up to ``count`` distinct valid mutants of ``source``, deterministic
    in ``(source, seed, count, only)``.  ``mask`` suppresses mutations that
    would push the program outside the target flow's subset (rotating a
    counted loop breaks Cones' static-bounds analysis, so it is skipped
    there).  ``only`` restricts the rotation to a subset of
    :data:`MUTATION_NAMES` — the coverage-guided scheduler's lever for
    focusing mutation kinds on a hot parent."""
    try:
        program, _ = parse(source)
    except Exception:
        return []
    rng = random.Random(seed)
    catalog = _mutation_catalog()
    names = list(MUTATION_NAMES)
    if only:
        names = [n for n in names if n in only] or names
    if mask is not None and mask.requires_static_bounds \
            and "rotate-loop" in names:
        names.remove("rotate-loop")
    if not names:
        return []

    out: List[Mutant] = []
    seen = {source}
    attempts = 0
    while len(out) < count and attempts < count * 6:
        attempts += 1
        name = names[(seed + attempts) % len(names)]
        collect, apply = catalog[name]
        # Re-parse for a fresh tree (mutations are destructive).
        fresh, _ = parse(source)
        sites = collect(fresh)
        if not sites:
            continue
        index = rng.randrange(len(sites))
        apply(sites[index], rng, len(out))
        try:
            text = print_program(fresh)
            parse(text)   # validity gate: discard anything that broke
        except Exception:
            continue
        if text in seen:
            continue
        seen.add(text)
        out.append(Mutant(name=name, index=index, source=text))
    return out


__all__ = ["MUTATION_NAMES", "Mutant", "mutants"]
