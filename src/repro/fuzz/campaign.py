"""Campaign orchestration: generate, run, classify, reduce, triage.

One campaign sweeps ``seeds × flows``: for every (flow, seed) pair the
grammar emits a program targeted at that flow's feature mask (every fourth
seed deliberately straddles the boundary with one forbidden feature), the
metamorphic layer derives semantics-preserving mutants, and the whole
batch runs through the shared :class:`MatrixEngine` — same process pool,
same artifact cache, same golden-model comparison as the matrix sweeps.

Classification splits results into the paper-expected (boundary programs
rejected with the predicted rule; clean programs OK) and divergences:

* ``mismatch`` / ``error`` / ``timeout`` — the engine's own unexpected
  verdicts on a lint-clean program;
* ``metamorphic`` — original and mutant both ran on the same flow but
  produced different observables (a bug even without the interpreter);
* ``lint-disagree`` — the linter's predicted verdict and the flow's actual
  accept/reject decision differ, in either direction.

Divergences are deduplicated by coarse signature, optionally reduced to
1-minimal reproducers, and compared against the persistent corpus: only
signatures the corpus has never seen make the campaign fail.

The facade is :func:`run_campaign` over a frozen
:class:`~repro.fuzz.options.FuzzOptions` (legacy ``CampaignConfig``
callers go through a one-warning deprecation shim and keep their exact
pre-redesign behaviour).  With ``coverage=True`` the fixed seed plan
becomes feedback-driven: every executed program's trace counters and sim
state-visit histograms flatten into :class:`~repro.fuzz.coverage.
CoverageMap` buckets, a novelty-scored :class:`~repro.fuzz.pool.SeedPool`
decides which parents to vary (power scheduling: novel parents get more
children and more mutants), and generation explores profile/size space
around the winners.  Boundary probes keep their fixed every-fourth-seed
slots either way — their value is the *predicted* rejection.

Everything downstream of the options is a pure function of
(campaign_seed, seed, flow) — guided scheduling consumes deterministic
derived rng streams, never wall-clock or execution order — so two
campaigns over the same options report identical signatures, and a
sharded campaign merges to the same corpus however its shards ran.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import asdict as dataclass_asdict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.lint import lint
from ..runner.cache import ArtifactCache
from ..runner.cells import (
    CellTask,
    ERROR,
    MISMATCH,
    OK,
    REJECTED,
    TIMEOUT,
)
from ..runner.engine import MatrixEngine
from .corpus import Corpus, entry_from_divergence
from .coverage import CoverageMap, cell_signals
from .grammar import GeneratedProgram, generate_program
from .masks import all_masks
from .mutate import Mutant, mutants
from .options import FuzzOptions, coerce_options
from .pool import PoolEntry, SeedPool
from .reduce import reduce_source
from .shard import assign_shard, mix
from .signature import (
    Divergence,
    KIND_ERROR,
    KIND_LINT_DISAGREE,
    KIND_METAMORPHIC,
    KIND_MISMATCH,
    KIND_OPT_DIVERGE,
    KIND_TIMEOUT,
)

# Every BOUNDARY_STRIDE-th seed probes the reject side of the flow's
# feature mask instead of the accept side.
BOUNDARY_STRIDE = 4

_VERDICT_TO_KIND = {
    MISMATCH: KIND_MISMATCH,
    ERROR: KIND_ERROR,
    TIMEOUT: KIND_TIMEOUT,
}


#: How many programs each coverage-guided wave schedules before pausing
#: to fold feedback into the pool (and to check the time budget).
WAVE_SIZE = 8

#: Minted child seeds live above this floor so they can never collide
#: with a base seed range (campaign seed ranges are human-sized).
MINT_FLOOR = 0x40000000

#: Version tag of :meth:`CampaignReport.to_dict`.
REPORT_SCHEMA = "repro-fuzz-report/1"


@dataclass
class CampaignConfig:
    """Deprecated mutable precursor of :class:`FuzzOptions`.

    Still accepted by :func:`run_campaign` through a one-warning shim
    (:func:`repro.fuzz.options.coerce_options`); it maps onto
    ``coverage=False``, i.e. exactly the classic fixed-profile campaign
    it always described.  New code should construct ``FuzzOptions``.
    """

    flows: Optional[Sequence[str]] = None   # None = every compilable flow
    seeds: int = 100
    seed_base: int = 0
    jobs: int = 1
    time_budget_s: float = 0.0              # 0 = no wall-clock budget
    reduce: bool = True
    mutations: int = 2                      # mutants per clean program
    timeout_s: float = 20.0
    max_cycles: int = 200_000
    cache_dir: Optional[Path] = None
    corpus_dir: Path = Path("tests") / "corpus"
    batch_size: int = 200                   # cells per engine dispatch
    sim_backend: str = "interp"             # FSMD engine for every cell
    # Argument sets simulated per clean program (K seeds per program).
    # Lanes share the program's synthesized artifact; with
    # sim_backend="batched" the engine coalesces them into one lockstep
    # batch cell, which is where campaign throughput comes from.
    input_lanes: int = 1
    # Cross-level mode: each clean program additionally compiles and runs
    # at every listed opt_level, and any divergence from the default-level
    # cell (verdict class, value, observable) is triaged as an
    # "opt-diverge" finding whose rule names the level pair.  Empty = off.
    opt_levels: Tuple[int, ...] = ()


@dataclass
class FlowStats:
    seeds: int = 0
    boundary_seeds: int = 0
    mutants: int = 0
    lanes: int = 0                          # extra per-program input lanes
    opt_cells: int = 0                      # cross-level opt_level variants
    ok: int = 0
    expected_rejections: int = 0
    mutant_rejections: int = 0              # benign: mutant crossed a boundary
    divergences: int = 0


@dataclass
class CampaignReport:
    options: FuzzOptions
    stats: Dict[str, FlowStats] = field(default_factory=dict)
    divergences: List[Divergence] = field(default_factory=list)
    new_signatures: List[str] = field(default_factory=list)
    known_signatures: List[str] = field(default_factory=list)
    cells_run: int = 0
    elapsed_s: float = 0.0
    budget_exhausted: bool = False
    # Coverage-guided runs: the final map, and the distinct-bucket count
    # after each wave (strictly non-decreasing; the CI smoke leg asserts
    # it actually grows).
    coverage: Optional[CoverageMap] = None
    coverage_growth: List[int] = field(default_factory=list)
    # Sharded runs: one summary row per shard, in index order.
    shard_reports: List[Dict[str, object]] = field(default_factory=list)

    @property
    def config(self) -> FuzzOptions:
        """Legacy alias from the ``CampaignConfig`` era."""
        return self.options

    @property
    def failed(self) -> bool:
        return bool(self.new_signatures)

    def summary_lines(self) -> List[str]:
        lines = []
        header = (
            f"{'flow':<15} {'seeds':>6} {'bnd':>5} {'mut':>5} {'ok':>6} "
            f"{'rej':>6} {'div':>5}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for flow in sorted(self.stats):
            s = self.stats[flow]
            lines.append(
                f"{flow:<15} {s.seeds:>6} {s.boundary_seeds:>5} "
                f"{s.mutants:>5} {s.ok:>6} {s.expected_rejections:>6} "
                f"{s.divergences:>5}"
            )
        if self.coverage is not None:
            families = ", ".join(
                f"{family}={count}"
                for family, count in self.coverage.families().items()
            )
            lines.append(
                f"coverage: {self.coverage.distinct()} buckets ({families})"
            )
        for row in self.shard_reports:
            shard_cov = row.get("coverage") or {}
            lines.append(
                f"shard {row['index']}: cells={row['cells_run']}  "
                f"div={row['divergences']}  "
                f"buckets={shard_cov.get('distinct', '-')}  "
                f"elapsed={row['elapsed_s']:.1f}s"
            )
        lines.append(
            f"cells={self.cells_run}  divergences={len(self.divergences)}  "
            f"new={len(self.new_signatures)}  known={len(self.known_signatures)}  "
            f"elapsed={self.elapsed_s:.1f}s"
        )
        return lines

    def to_dict(self) -> Dict[str, object]:
        """The stable report schema (``repro-fuzz-report/1``), mirroring
        the lint/check JSON conventions: options identity, per-flow
        stats, coverage summary, per-shard rows, and the sorted
        signature lists."""
        return {
            "schema": REPORT_SCHEMA,
            "options": self.options.identity(),
            "stats": {
                flow: dataclass_asdict(self.stats[flow])
                for flow in sorted(self.stats)
            },
            "cells_run": self.cells_run,
            "elapsed_s": round(self.elapsed_s, 3),
            "budget_exhausted": self.budget_exhausted,
            "new_signatures": sorted(self.new_signatures),
            "known_signatures": sorted(self.known_signatures),
            "divergences": [d.describe() for d in self.divergences],
            "coverage": (
                self.coverage.summary() if self.coverage is not None else None
            ),
            "coverage_growth": list(self.coverage_growth),
            "shards": list(self.shard_reports),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


@dataclass
class _WorkItem:
    """One generated program plus its mutants, before execution."""

    program: GeneratedProgram
    mutant_list: List[Mutant] = field(default_factory=list)
    statements: int = 8       # generation size (pool entries inherit it)


def plan_items(config) -> List[_WorkItem]:
    """The full deterministic work list for a fixed-profile campaign:
    pure function of (flows, seeds, seed_base, mutations) — plus, for a
    :class:`FuzzOptions` with a shard index, the shard split (each base
    seed belongs to exactly one shard)."""
    masks = all_masks(
        list(config.flows) if config.flows is not None else None
    )
    shards = getattr(config, "shards", 1)
    shard_index = getattr(config, "shard_index", None)
    campaign_seed = getattr(config, "campaign_seed", 0)
    profiles = tuple(getattr(config, "profiles", ()) or ())
    items: List[_WorkItem] = []
    for flow in sorted(masks):
        mask = masks[flow]
        for offset in range(config.seeds):
            seed = config.seed_base + offset
            if (
                shards > 1
                and shard_index is not None
                and assign_shard(seed, campaign_seed, shards) != shard_index
            ):
                continue
            boundary = (
                seed % BOUNDARY_STRIDE == BOUNDARY_STRIDE - 1
                and bool(mask.boundary_features)
            )
            program = generate_program(
                seed, mask, boundary=boundary, profiles=profiles
            )
            item = _WorkItem(program=program)
            if not boundary and config.mutations > 0:
                item.mutant_list = mutants(
                    program.source,
                    seed=seed,
                    count=config.mutations,
                    mask=mask,
                )
            items.append(item)
    return items


def _lane_args(args: Tuple[int, ...], lane: int) -> Tuple[int, ...]:
    """Deterministic per-lane argument variation inside the grammar's
    input domain ([-100, 100]).  Lane 0 is the program's own args."""
    if lane == 0:
        return tuple(args)
    return tuple(
        (value + 37 * lane * (position + 1) + 100) % 201 - 100
        for position, value in enumerate(args)
    )


def _lane_count(item: _WorkItem, input_lanes: int) -> int:
    """Extra argument-set tasks for one item (0 for boundary probes —
    rejections are compile-time, more inputs prove nothing)."""
    if item.program.is_boundary or not item.program.args:
        return 0
    return max(0, input_lanes - 1)


def _opt_count(item: _WorkItem, opt_levels: Tuple[int, ...]) -> int:
    """Extra per-opt_level tasks for one item.  Boundary probes are
    skipped: their point is the rejection, which the cross-level corpus
    replay already pins as level-invariant."""
    if item.program.is_boundary:
        return 0
    return len(opt_levels)


def _opt_rule(level: int) -> str:
    """The signature rule naming one cross-level comparison, default
    level on the left: ``opt1-vs-opt2``."""
    from ..api import DEFAULT_OPT_LEVEL

    return f"opt{DEFAULT_OPT_LEVEL}-vs-opt{level}"


def _parse_opt_rule(rule: str) -> Optional[Tuple[int, int]]:
    """Invert :func:`_opt_rule`; None when the rule is not level-shaped."""
    try:
        left, right = rule.split("-vs-")
        if not (left.startswith("opt") and right.startswith("opt")):
            return None
        return int(left[3:]), int(right[3:])
    except (ValueError, AttributeError):
        return None


def _tasks_for(
    item: _WorkItem,
    sim_backend: str = "interp",
    input_lanes: int = 1,
    opt_levels: Tuple[int, ...] = (),
) -> List[CellTask]:
    program = item.program
    tasks = [
        CellTask(
            workload=program.name,
            source=program.source,
            flow=program.flow,
            args=program.args,
            sim_backend=sim_backend,
        )
    ]
    for lane in range(1, _lane_count(item, input_lanes) + 1):
        tasks.append(
            CellTask(
                workload=f"{program.name}-lane{lane}",
                source=program.source,
                flow=program.flow,
                args=_lane_args(program.args, lane),
                sim_backend=sim_backend,
            )
        )
    if _opt_count(item, opt_levels):
        for level in opt_levels:
            tasks.append(
                CellTask(
                    workload=f"{program.name}-opt{level}",
                    source=program.source,
                    flow=program.flow,
                    args=program.args,
                    options=CellTask.make_options({"opt_level": int(level)}),
                    sim_backend=sim_backend,
                )
            )
    for mutant in item.mutant_list:
        tasks.append(
            CellTask(
                workload=f"{program.name}-mut-{mutant.name}-{mutant.index}",
                source=mutant.source,
                flow=program.flow,
                args=program.args,
                sim_backend=sim_backend,
            )
        )
    return tasks


def _classify_item(
    item: _WorkItem, results, stats: FlowStats, input_lanes: int = 1,
    opt_levels: Tuple[int, ...] = (),
) -> List[Divergence]:
    """Judge one program (and its lanes, opt_level variants, and mutants)
    from its cell results, in :func:`_tasks_for` order: original, extra
    input lanes, cross-level variants, then mutants."""
    program = item.program
    original = results[0]
    lane_count = _lane_count(item, input_lanes)
    opt_count = _opt_count(item, opt_levels)
    lane_results = results[1:1 + lane_count]
    opt_results = results[1 + lane_count:1 + lane_count + opt_count]
    mutant_results = results[1 + lane_count + opt_count:]
    found: List[Divergence] = []

    def divergence(kind: str, **kwargs) -> Divergence:
        base = dict(
            flow=program.flow,
            kind=kind,
            source=program.source,
            args=program.args,
            seed=program.seed,
            profile=program.profile,
        )
        base.update(kwargs)
        return Divergence(**base)

    if program.is_boundary:
        stats.boundary_seeds += 1
        report = lint(program.source, flow=program.flow)
        lint_dirty = not report.is_clean(program.flow)
        if original.verdict == REJECTED and lint_dirty:
            stats.expected_rejections += 1      # the paper's Table 1 working
        elif original.verdict != REJECTED:
            lint_rules = sorted(report.errors(program.flow), key=str)
            rule = lint_rules[0].rule if lint_rules else ""
            found.append(divergence(
                KIND_LINT_DISAGREE,
                rule=rule,
                detail=(
                    f"lint predicts rejection ({rule or 'dirty'}) for "
                    f"forbidden feature '{program.boundary_feature}' but "
                    f"flow verdict was {original.verdict}"
                ),
                extra={"expect": {"verdict": original.verdict}},
            ))
        else:  # rejected but lint was silent
            found.append(divergence(
                KIND_LINT_DISAGREE,
                rule=original.rule,
                detail=(
                    f"flow rejected ({original.rule}) but lint saw nothing "
                    f"wrong for feature '{program.boundary_feature}'"
                ),
                extra={"expect": {"verdict": original.verdict}},
            ))
        stats.divergences += len(found)
        return found

    # Clean-side program: generated to be lint-clean and interpreter-valid.
    if original.verdict == OK:
        stats.ok += 1
    elif original.verdict == REJECTED:
        found.append(divergence(
            KIND_LINT_DISAGREE,
            rule=original.rule,
            detail=(
                f"flow rejected a lint-clean program ({original.rule}): "
                f"{original.note()}"
            ),
            extra={"expect": {"verdict": original.verdict}},
        ))
    else:
        found.append(divergence(
            _VERDICT_TO_KIND[original.verdict],
            rule=original.rule,
            detail=original.note(60),
            extra={"expect": {
                "verdict": original.verdict,
                "value": original.value,
            }},
        ))

    for lane, result in enumerate(lane_results, start=1):
        stats.lanes += 1
        if result.verdict == OK:
            stats.ok += 1
            continue
        if result.verdict == REJECTED:
            # Rejections are input-independent, so a lane can only be
            # rejected if the original was — classified above already.
            continue
        found.append(divergence(
            _VERDICT_TO_KIND.get(result.verdict, KIND_ERROR),
            args=result.args,
            rule=result.rule,
            detail=f"lane {lane}: {result.note(60)}",
            extra={"expect": {
                "verdict": result.verdict,
                "value": result.value,
            }},
        ))

    for level, result in zip(opt_levels, opt_results):
        stats.opt_cells += 1
        rule = _opt_rule(level)
        if result.verdict != original.verdict:
            found.append(divergence(
                KIND_OPT_DIVERGE,
                rule=rule,
                detail=(
                    f"opt_level={level} turned verdict "
                    f"{original.verdict} into {result.verdict}: "
                    f"{result.note(40)}"
                ),
                extra={"expect": {
                    "verdict": result.verdict,
                    "base_verdict": original.verdict,
                }},
            ))
        elif original.verdict == OK and (
            result.observable != original.observable
        ):
            found.append(divergence(
                KIND_OPT_DIVERGE,
                rule=rule,
                detail=(
                    f"opt_level={level} changed observables: "
                    f"value {original.value} vs {result.value}"
                ),
                extra={"expect": {
                    "verdict": result.verdict,
                    "value": result.value,
                    "base_value": original.value,
                }},
            ))

    for mutant, result in zip(item.mutant_list, mutant_results):
        stats.mutants += 1
        if result.verdict == OK:
            continue
        if result.verdict == REJECTED:
            # The rewrite crossed a restriction the original respected
            # (e.g. a split-statement temp in a flow that bounds locals).
            # Expected flow behaviour, not a bug — counted, not reported.
            stats.mutant_rejections += 1
            continue
        if (
            result.verdict == MISMATCH
            and original.verdict in (OK, MISMATCH)
            and original.observable != result.observable
        ):
            found.append(divergence(
                KIND_METAMORPHIC,
                source=mutant.source,
                original_source=program.source,
                mutation=mutant.name,
                detail=(
                    f"{mutant.name} rewrite changed flow output: "
                    f"{original.value} vs {result.value}"
                ),
                extra={"expect": {"verdict": result.verdict}},
            ))
        else:
            found.append(divergence(
                _VERDICT_TO_KIND.get(result.verdict, KIND_ERROR),
                source=mutant.source,
                original_source=program.source,
                mutation=mutant.name,
                rule=result.rule,
                detail=result.note(60),
                extra={"expect": {
                    "verdict": result.verdict,
                    "value": result.value,
                }},
            ))
    stats.divergences += len(found)
    return found


# -- reduction predicates -----------------------------------------------------

def reduction_predicate(
    divergence: Divergence, engine: MatrixEngine, sim_backend: str = "interp"
):
    """A predicate asking "does this candidate still fail with the same
    coarse signature?" — the contract :func:`reduce_source` shrinks under.
    Matches on (flow, kind, rule) only; the program hash is minted after
    reduction finishes."""
    flow, kind, rule = divergence.signature().coarse

    def run(source: str):
        task = CellTask(
            workload="reduce", source=source, flow=flow,
            args=divergence.args, sim_backend=sim_backend,
        )
        return engine.run_cells([task])[0]

    if kind == KIND_LINT_DISAGREE:
        def predicate(source: str) -> bool:
            report = lint(source, flow=flow)
            clean = report.is_clean(flow)
            result = run(source)
            compiled = result.verdict != REJECTED
            if clean == compiled:
                return False
            observed = result.rule if not compiled else (
                min(d.rule for d in report.errors(flow)) if
                report.errors(flow) else ""
            )
            return observed == rule
        return predicate

    if kind == KIND_METAMORPHIC:
        return None         # needs the (original, mutant) pair; not reduced

    if kind == KIND_OPT_DIVERGE:
        levels = _parse_opt_rule(rule)
        if levels is None:
            return None

        def run_at(source: str, level: int):
            task = CellTask(
                workload="reduce", source=source, flow=flow,
                args=divergence.args,
                options=CellTask.make_options({"opt_level": level}),
                sim_backend=sim_backend,
            )
            return engine.run_cells([task])[0]

        def predicate(source: str) -> bool:
            base = run_at(source, levels[0])
            opt = run_at(source, levels[1])
            if base.verdict != opt.verdict:
                return True
            return (
                base.verdict == OK and base.observable != opt.observable
            )
        return predicate

    def predicate(source: str) -> bool:
        result = run(source)
        if _VERDICT_TO_KIND.get(result.verdict) != kind:
            return False
        return not rule or result.rule == rule
    return predicate


def attach_trace(
    divergence: Divergence,
    engine: Optional[MatrixEngine] = None,
    sim_backend: str = "interp",
) -> Divergence:
    """Record the reproducer's pipeline shape on the divergence: the span
    *structure* and counters of a traced re-run, never durations, so the
    corpus entry minted from it is byte-identical across hosts and
    re-runs.  Timeouts are skipped — re-running one only burns the
    deadline again and its partial shape is not stable."""
    from ..trace import counters_of, structure_of

    if divergence.kind == KIND_TIMEOUT:
        return divergence
    engine = engine or MatrixEngine(jobs=1, cache=None, trace=True)
    task = CellTask(
        workload="trace", source=divergence.best_source,
        flow=divergence.flow, args=divergence.args,
        sim_backend=sim_backend,
    )
    result = engine.run_cells([task])[0]
    if result.trace:
        divergence.trace = {
            "structure": structure_of(result.trace),
            "counters": counters_of(result.trace),
        }
    return divergence


def reduce_divergence(
    divergence: Divergence,
    engine: Optional[MatrixEngine] = None,
    sim_backend: str = "interp",
) -> Divergence:
    """Attach a 1-minimal reproducer to ``divergence`` (no-op for kinds
    the reducer cannot re-judge on a single program)."""
    engine = engine or MatrixEngine(jobs=1, cache=None)
    predicate = reduction_predicate(divergence, engine, sim_backend=sim_backend)
    if predicate is None:
        return divergence
    outcome = reduce_source(divergence.source, predicate)
    if outcome.reproduced:
        divergence.reduced_source = outcome.reduced
        divergence.extra["reduction"] = {
            "predicate_calls": outcome.predicate_calls,
            "shrink_ratio": round(outcome.shrink_ratio, 3),
        }
        # The pinned expectation must describe the *reduced* program — its
        # value usually differs from the original's even though the
        # signature (verdict + rule) is the same.
        task = CellTask(
            workload="pin", source=outcome.reduced,
            flow=divergence.flow, args=divergence.args,
            sim_backend=sim_backend,
        )
        result = engine.run_cells([task])[0]
        divergence.extra["expect"] = {
            "verdict": result.verdict,
            "value": result.value,
        }
    return divergence


# -- the driver ---------------------------------------------------------------

def run_campaign(config) -> CampaignReport:
    """Run one fuzz campaign and return its report.

    ``config`` is a frozen :class:`~repro.fuzz.options.FuzzOptions` (a
    legacy ``CampaignConfig`` is accepted through a one-warning shim and
    keeps its classic behaviour).  ``shards > 1`` without a shard index
    orchestrates every shard in subprocesses and merges; a set index
    runs only that shard's deterministic slice.
    """
    options = coerce_options(config)
    if options.shards > 1 and options.shard_index is None:
        from .shard import run_sharded

        return run_sharded(options)
    return _run_single(options)


def _run_single(options: FuzzOptions) -> CampaignReport:
    started = time.monotonic()
    report = CampaignReport(options=options)

    cache = ArtifactCache(options.cache_path) if options.cache_path else None
    engine = MatrixEngine(
        jobs=options.jobs,
        cache=cache,
        timeout_s=options.timeout_s,
        max_cycles=options.max_cycles,
        # Guided mode needs the signal sources on every result: the
        # phase trace (counters) and the sim profile (state visits).
        trace=options.coverage,
        coverage=options.coverage,
    )

    if options.coverage:
        raw = _guided_pass(options, report, engine, started)
    else:
        raw = _fixed_pass(options, report, engine, started)

    _triage(options, report, raw)
    report.elapsed_s = time.monotonic() - started
    return report


def _fixed_pass(
    options: FuzzOptions,
    report: CampaignReport,
    engine: MatrixEngine,
    started: float,
) -> List[Divergence]:
    """The classic fixed-profile plan: every (flow, seed) pair generated
    up front, batched through the engine.  This is the exact
    pre-coverage campaign — the deprecation shim's "same results"
    promise rests on this path staying byte-for-byte deterministic."""
    items = plan_items(options)
    for item in items:
        report.stats.setdefault(item.program.flow, FlowStats()).seeds += 1

    raw: List[Divergence] = []
    batch: List[_WorkItem] = []

    def flush(batch_items: List[_WorkItem]) -> None:
        results, spans = _run_items(options, engine, batch_items)
        report.cells_run += len(results)
        for entry, lo, hi in spans:
            stats = report.stats[entry.program.flow]
            raw.extend(_classify_item(
                entry, results[lo:hi], stats, options.input_lanes,
                tuple(options.opt_levels),
            ))

    for item in items:
        batch.append(item)
        if sum(
            1 + _lane_count(b, options.input_lanes)
            + _opt_count(b, tuple(options.opt_levels)) + len(b.mutant_list)
            for b in batch
        ) >= options.batch_size:
            flush(batch)
            batch = []
            if (
                options.time_budget_s > 0
                and time.monotonic() - started > options.time_budget_s
            ):
                report.budget_exhausted = True
                break
    if batch and not report.budget_exhausted:
        flush(batch)
    return raw


def _run_items(
    options: FuzzOptions,
    engine: MatrixEngine,
    items: List[_WorkItem],
) -> Tuple[List, List[Tuple[_WorkItem, int, int]]]:
    """Expand items into cell tasks, run them, and return (results,
    per-item result spans)."""
    tasks: List[CellTask] = []
    spans: List[Tuple[_WorkItem, int, int]] = []
    for item in items:
        item_tasks = _tasks_for(
            item, options.sim_backend, options.input_lanes,
            tuple(options.opt_levels),
        )
        spans.append((item, len(tasks), len(tasks) + len(item_tasks)))
        tasks.extend(item_tasks)
    return engine.run_cells(tasks), spans


def _guided_pass(
    options: FuzzOptions,
    report: CampaignReport,
    engine: MatrixEngine,
    started: float,
) -> List[Divergence]:
    """The coverage-guided schedule.

    Per flow, the ``seeds`` budget is spent in waves of
    :data:`WAVE_SIZE` programs.  Boundary slots (every fourth base seed)
    always run the fixed lint-predicted probe.  Other slots run the base
    seed directly until the pool has parents, then draw an
    energy-weighted parent and generate a *variation*: a freshly minted
    seed (a pure hash of campaign seed, shard, flow, and slot), the
    parent's profile most of the time, and a nudged statement count.
    After each wave the new results' buckets feed the map, novelty
    credits the pool, and the distinct count is appended to
    ``coverage_growth``.
    """
    masks = all_masks(
        list(options.flows) if options.flows is not None else None
    )
    coverage = CoverageMap()
    report.coverage = coverage
    shard_idx = options.shard_index if options.shard_index is not None else 0
    raw: List[Divergence] = []
    out_of_time = False

    for flow in sorted(masks):
        if out_of_time:
            break
        mask = masks[flow]
        pool = SeedPool()
        rng = random.Random(mix("pool", options.campaign_seed, shard_idx, flow))
        stats = report.stats.setdefault(flow, FlowStats())
        slots = [
            options.seed_base + offset
            for offset in range(options.seeds)
            if options.shards <= 1 or assign_shard(
                options.seed_base + offset, options.campaign_seed,
                options.shards,
            ) == shard_idx
        ]

        position = 0
        while position < len(slots) and not out_of_time:
            wave = slots[position:position + WAVE_SIZE]
            position += len(wave)
            items: List[_WorkItem] = []
            for base_seed in wave:
                boundary = (
                    base_seed % BOUNDARY_STRIDE == BOUNDARY_STRIDE - 1
                    and bool(mask.boundary_features)
                )
                if boundary:
                    program = generate_program(base_seed, mask, boundary=True)
                    items.append(_WorkItem(program=program))
                    continue
                parent = pool.select(rng)
                extra_mutants = 0
                statements = 8
                if parent is None:
                    program = generate_program(
                        base_seed, mask, profiles=options.profiles
                    )
                else:
                    child_seed = MINT_FLOOR + mix(
                        "mint", options.campaign_seed, shard_idx, flow,
                        base_seed,
                    ) % MINT_FLOOR
                    statements = min(20, max(
                        4, parent.statements + rng.choice((-3, -2, 2, 3, 5))
                    ))
                    profile = parent.profile if rng.random() < 0.7 else ""
                    program = generate_program(
                        child_seed, mask, statements=statements,
                        profile=profile, profiles=options.profiles,
                    )
                    parent.children += 1
                    extra_mutants = parent.mutation_bonus()
                item = _WorkItem(program=program, statements=statements)
                if options.mutations > 0:
                    item.mutant_list = mutants(
                        program.source,
                        seed=program.seed,
                        count=options.mutations + extra_mutants,
                        mask=mask,
                    )
                items.append(item)

            results, spans = _run_items(options, engine, items)
            report.cells_run += len(results)
            for item, lo, hi in spans:
                stats.seeds += 1
                raw.extend(_classify_item(
                    item, results[lo:hi], stats, options.input_lanes,
                    tuple(options.opt_levels),
                ))
                signals: List[str] = []
                for result in results[lo:hi]:
                    signals.extend(cell_signals(result))
                novelty = coverage.add(signals)
                program = item.program
                if not program.is_boundary:
                    pool.add(PoolEntry(
                        key=f"{flow}:{program.profile}:{program.seed}",
                        flow=flow,
                        profile=program.profile,
                        seed=program.seed,
                        statements=item.statements,
                        new_buckets=novelty,
                    ))
            report.coverage_growth.append(coverage.distinct())
            if (
                options.time_budget_s > 0
                and time.monotonic() - started > options.time_budget_s
            ):
                report.budget_exhausted = True
                out_of_time = True
    return raw


def _triage(
    options: FuzzOptions,
    report: CampaignReport,
    raw: List[Divergence],
) -> None:
    """Deduplicate, reduce, trace, and compare against the corpus —
    shared tail of both passes."""
    # Deduplicate by coarse signature before (expensive) reduction: one
    # reproducer per underlying bug.
    unique: Dict[Tuple[str, str, str], Divergence] = {}
    for divergence in raw:
        unique.setdefault(divergence.signature().coarse, divergence)

    reducer_engine = MatrixEngine(
        jobs=1, cache=None,
        timeout_s=options.timeout_s, max_cycles=options.max_cycles,
    )
    trace_engine = MatrixEngine(
        jobs=1, cache=None, trace=True,
        timeout_s=options.timeout_s, max_cycles=options.max_cycles,
    )
    for divergence in unique.values():
        if options.reduce:
            reduce_divergence(divergence, reducer_engine,
                              sim_backend=options.sim_backend)
        attach_trace(divergence, trace_engine,
                     sim_backend=options.sim_backend)
        # Record the execution options the finding was made under, so a
        # corpus entry minted from it replays the same frozen set.
        divergence.options = {"sim_backend": options.sim_backend}
        report.divergences.append(divergence)

    corpus = Corpus(options.corpus_path)
    known_coarse = corpus.known_coarse()
    for divergence in report.divergences:
        sig = divergence.signature()
        if sig in corpus or sig.coarse in known_coarse:
            report.known_signatures.append(sig.id)
        else:
            report.new_signatures.append(sig.id)
    report.new_signatures.sort()
    report.known_signatures.sort()


def promote(
    report: CampaignReport,
    corpus_dir: Path,
    limit: int = 0,
    only: Optional[Set[str]] = None,
) -> List[str]:
    """Write the report's divergences into the corpus; returns the new
    entry paths (relative to ``corpus_dir``).  ``only`` restricts
    promotion to the given signature ids — the shard-delta mode, where a
    shard writes just its *new* findings into its own directory for the
    merge step to fold in."""
    corpus = Corpus(corpus_dir)
    written: List[str] = []
    for divergence in report.divergences:
        if only is not None and divergence.signature().id not in only:
            continue
        entry = corpus.add(divergence)
        if entry is not None:
            written.append(str(entry.path(corpus.root).relative_to(corpus.root)))
            if limit and len(written) >= limit:
                break
    return written


def entry_for(divergence: Divergence):
    """Convenience re-export used by the CLI and tests."""
    return entry_from_divergence(divergence)
