"""The triaged failure corpus: persistent, deduplicated, replayable.

Every divergence a campaign keeps lives as one JSON file under
``tests/corpus/<flow>/<kind>[--<rule>]--<hash>.json``.  The filename *is*
the signature (minus the flow, which the directory carries), so
deduplication is a file-existence check and the corpus diffs cleanly in
review.  Entry content is fully deterministic — no timestamps, no host
names — so re-running a campaign on the same seeds produces byte-identical
files.

Each entry records enough to re-judge the finding from scratch:
the reduced program, its inputs, the expected flow verdict (or, for
metamorphic findings, the pre-mutation program whose behaviour the mutant
must match).  ``replay_entry`` re-runs that check; the pytest replay suite
and the campaign's "is this new?" filter both go through it.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..runner.cells import CellTask, REJECTED
from ..runner.engine import MatrixEngine
from .signature import (
    Divergence,
    KIND_LINT_DISAGREE,
    KIND_METAMORPHIC,
    KIND_OPT_DIVERGE,
    Signature,
    program_hash,
)

DEFAULT_CORPUS_DIR = Path("tests") / "corpus"


@dataclass
class CorpusEntry:
    """One triaged finding, as stored on disk."""

    flow: str
    kind: str
    rule: str
    program_hash: str
    source: str
    args: List[int] = field(default_factory=list)
    detail: str = ""
    seed: int = -1
    profile: str = ""
    mutation: str = ""
    original_source: str = ""     # metamorphic findings: pre-mutation program
    expect: Dict[str, object] = field(default_factory=dict)
    # The reproducer's pipeline shape: span structure + counters, no
    # durations (entries must stay deterministic across hosts).
    trace: Dict[str, object] = field(default_factory=dict)
    # The exact execution options the finding was made under (sim_backend,
    # opt_level, ...).  Replays rebuild a frozen SynthesisOptions from
    # this instead of re-deriving one ad hoc; entries predating the field
    # load as {} and replay under the historical defaults.
    options: Dict[str, object] = field(default_factory=dict)

    @property
    def signature(self) -> Signature:
        return Signature(self.flow, self.kind, self.rule, self.program_hash)

    @property
    def filename(self) -> str:
        parts = [self.kind]
        if self.rule:
            parts.append(self.rule)
        parts.append(self.program_hash)
        return "--".join(parts) + ".json"

    def path(self, corpus_dir: Path) -> Path:
        return Path(corpus_dir) / self.flow / self.filename

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CorpusEntry":
        data = json.loads(text)
        known = cls.__dataclass_fields__
        return cls(**{k: v for k, v in data.items() if k in known})


def entry_from_divergence(divergence: Divergence) -> CorpusEntry:
    """Freeze a (preferably reduced) divergence into a corpus entry."""
    sig = divergence.signature()
    expect = dict(divergence.extra.get("expect", {}))
    return CorpusEntry(
        flow=divergence.flow,
        kind=divergence.kind,
        rule=divergence.rule,
        program_hash=sig.program_hash,
        source=divergence.best_source,
        args=list(divergence.args),
        detail=divergence.detail,
        seed=divergence.seed,
        profile=divergence.profile,
        mutation=divergence.mutation,
        original_source=divergence.original_source,
        expect=expect,
        trace=dict(divergence.trace),
        options=dict(divergence.options),
    )


class Corpus:
    """The on-disk corpus, loaded once and queried by signature."""

    def __init__(self, root: Path = DEFAULT_CORPUS_DIR):
        self.root = Path(root)
        self.entries: List[CorpusEntry] = []
        self._by_id: Dict[str, CorpusEntry] = {}
        self._load()

    def _load(self) -> None:
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*/*.json")):
            try:
                entry = CorpusEntry.from_json(path.read_text())
            except (json.JSONDecodeError, TypeError):
                continue
            self.entries.append(entry)
            self._by_id[entry.signature.id] = entry

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, signature: Signature) -> bool:
        return signature.id in self._by_id

    def known_coarse(self) -> set:
        """Coarse (flow, kind, rule) triples already represented; a new
        finding matching one is the same bug hit through a different
        program, so campaigns report it as known rather than new."""
        return {e.signature.coarse for e in self.entries}

    def add(self, divergence: Divergence) -> Optional[CorpusEntry]:
        """Persist one divergence; returns None when its exact signature
        is already on disk."""
        entry = entry_from_divergence(divergence)
        if entry.signature.id in self._by_id:
            return None
        path = entry.path(self.root)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(entry.to_json())
        self.entries.append(entry)
        self._by_id[entry.signature.id] = entry
        return entry


# -- replay -------------------------------------------------------------------

def replay_options(
    entry: CorpusEntry,
    sim_backend: Optional[str] = None,
    opt_level: Optional[int] = None,
):
    """The frozen :class:`repro.api.SynthesisOptions` an entry replays
    under: the options recorded when the finding was made, with explicit
    caller overrides winning.  Entries without recorded options (written
    before the field existed) fall back to the historical defaults, so
    the whole corpus replays through one code path."""
    from ..api import DEFAULT_OPT_LEVEL, SynthesisOptions

    recorded = dict(entry.options)
    backend = sim_backend if sim_backend is not None else str(
        recorded.get("sim_backend", "interp")
    )
    level = opt_level if opt_level is not None else int(
        recorded.get("opt_level", DEFAULT_OPT_LEVEL)
    )
    return SynthesisOptions(
        flow=entry.flow,
        sim_backend=backend,
        opt_level=level,
    )


def _flow_result(engine: MatrixEngine, entry: CorpusEntry, source: str,
                 sim_backend: Optional[str] = None,
                 opt_level: Optional[int] = None):
    task = CellTask.from_options(
        workload=f"corpus-{entry.program_hash}",
        source=source,
        options=replay_options(entry, sim_backend, opt_level),
        args=tuple(entry.args),
    )
    return engine.run_cells([task])[0]


def replay_entry(
    entry: CorpusEntry,
    engine: Optional[MatrixEngine] = None,
    sim_backend: Optional[str] = None,
    opt_level: Optional[int] = None,
) -> Tuple[bool, str]:
    """Re-run one corpus entry's recorded check.

    Returns ``(True, detail)`` when the pinned behaviour still holds and
    ``(False, why)`` when it changed — either the bug was fixed (delete or
    refresh the entry deliberately) or behaviour drifted (investigate).

    ``sim_backend``/``opt_level`` override the entry's recorded options
    (None = recorded, or the historical defaults for entries that predate
    option recording); the cross-level replay suite uses ``opt_level``
    to assert the corpus reproduces at every optimization level.
    """
    engine = engine or MatrixEngine(jobs=1, cache=None)

    if entry.kind == KIND_METAMORPHIC:
        original = _flow_result(engine, entry, entry.original_source,
                                sim_backend, opt_level)
        mutant = _flow_result(engine, entry, entry.source, sim_backend,
                              opt_level)
        if REJECTED in (original.verdict, mutant.verdict):
            return False, (
                f"flow now rejects one side (original={original.verdict}, "
                f"mutant={mutant.verdict})"
            )
        if original.observable == mutant.observable:
            return False, "original and mutant now agree — divergence gone"
        return True, (
            f"{entry.mutation} mutant still diverges: "
            f"{original.value} vs {mutant.value}"
        )

    if entry.kind == KIND_LINT_DISAGREE:
        from ..analysis.lint import lint

        report = lint(entry.source, flow=entry.flow)
        clean = report.is_clean(entry.flow)
        result = _flow_result(engine, entry, entry.source, sim_backend,
                              opt_level)
        compiled = result.verdict != REJECTED
        if clean != compiled:
            return True, (
                f"lint ({'clean' if clean else 'dirty'}) still disagrees "
                f"with compile ({result.verdict})"
            )
        return False, "lint and compile verdicts now agree"

    if entry.kind == KIND_OPT_DIVERGE:
        from .campaign import _parse_opt_rule

        levels = _parse_opt_rule(entry.rule)
        if levels is None:
            return False, f"malformed opt-diverge rule {entry.rule!r}"
        base = _flow_result(engine, entry, entry.source, sim_backend,
                            levels[0])
        opt = _flow_result(engine, entry, entry.source, sim_backend,
                           levels[1])
        if base.verdict != opt.verdict:
            return True, (
                f"levels still disagree on verdict: "
                f"opt{levels[0]}={base.verdict}, opt{levels[1]}={opt.verdict}"
            )
        if base.verdict == "ok" and base.observable != opt.observable:
            return True, (
                f"levels still disagree on observables: "
                f"{base.value} vs {opt.value}"
            )
        return False, "opt levels now agree — divergence gone"

    # Engine-verdict kinds (mismatch / error / timeout): the pinned verdict
    # must persist.
    result = _flow_result(engine, entry, entry.source, sim_backend, opt_level)
    expected_verdict = str(entry.expect.get("verdict", entry.kind))
    if result.verdict != expected_verdict:
        return False, (
            f"verdict changed: recorded {expected_verdict}, "
            f"got {result.verdict}"
        )
    expected_value = entry.expect.get("value", "__unset__")
    if expected_value != "__unset__" and result.value != expected_value:
        return False, (
            f"value changed: recorded {expected_value}, got {result.value}"
        )
    return True, f"verdict {result.verdict} reproduced"


def verify_hashes(corpus: Corpus) -> List[str]:
    """Entries whose stored hash no longer matches their stored source —
    a hand-edited entry that forgot to be renamed."""
    stale = []
    for entry in corpus.entries:
        if program_hash(entry.source) != entry.program_hash:
            stale.append(entry.signature.id)
    return stale
