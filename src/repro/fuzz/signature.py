"""Divergence signatures: how failures are named, compared, and deduplicated.

A fuzz campaign can hit the same underlying bug thousands of times.  The
corpus stays useful only if findings collapse: two failures are *the same*
when they have the same flow, the same divergence kind, the same rule id
(for rejection-shaped disagreements), and — after reduction — the same
token-normalized program hash.  The hash reuses the artifact cache's
source normalization, so layout-only differences between two reproducers
never create duplicate corpus entries.

During reduction the program text is still changing, so the *reduction
predicate* matches on the *coarse* signature (flow, kind, rule) only; the
full signature with the program hash is minted from the final reduced
source.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields
from typing import Dict, Optional, Tuple

from ..runner.cache import normalized_source

# Divergence kinds, in decreasing order of severity.
KIND_MISMATCH = "mismatch"        # flow ran but disagrees with the interpreter
KIND_METAMORPHIC = "metamorphic"  # mutant disagrees with original on same flow
KIND_OPT_DIVERGE = "opt-diverge"  # same program, different opt_level, differs
KIND_ERROR = "error"              # flow crashed (not a FlowError rejection)
KIND_TIMEOUT = "timeout"          # flow blew the per-cell deadline
KIND_LINT_DISAGREE = "lint-disagree"  # linter and compiler verdicts differ

KINDS = (KIND_MISMATCH, KIND_METAMORPHIC, KIND_OPT_DIVERGE, KIND_ERROR,
         KIND_TIMEOUT, KIND_LINT_DISAGREE)


def program_hash(source: str) -> str:
    """Token-normalized content hash: whitespace and comments don't count."""
    return hashlib.sha256(normalized_source(source).encode()).hexdigest()[:12]


@dataclass(frozen=True)
class Signature:
    """The identity of one deduplicated finding."""

    flow: str
    kind: str
    rule: str
    program_hash: str

    @property
    def id(self) -> str:
        parts = [self.flow, self.kind]
        if self.rule:
            parts.append(self.rule)
        parts.append(self.program_hash)
        return "--".join(parts)

    @property
    def coarse(self) -> Tuple[str, str, str]:
        """The reduction-stable part: what the predicate re-checks while
        the program shrinks."""
        return (self.flow, self.kind, self.rule)


@dataclass
class Divergence:
    """One observed failure, before reduction and deduplication."""

    flow: str
    kind: str
    source: str                       # the program that failed
    args: Tuple[int, ...] = ()
    rule: str = ""                    # rejection/lint rule id when relevant
    detail: str = ""                  # one human-readable line
    seed: int = -1
    profile: str = ""
    mutation: str = ""                # metamorphic: which rewrite
    original_source: str = ""         # metamorphic: the pre-mutation program
    reduced_source: Optional[str] = None
    extra: Dict[str, object] = field(default_factory=dict)
    #: Deterministic phase trace of the reproducer — span *structure* and
    #: counters only, never durations, so corpus entries stay byte-stable.
    trace: Dict[str, object] = field(default_factory=dict)
    #: The execution options the finding was made under (sim backend,
    #: opt level, ...), recorded so replays reconstruct the exact frozen
    #: option set instead of re-deriving one ad hoc.
    options: Dict[str, object] = field(default_factory=dict)

    @property
    def best_source(self) -> str:
        return self.reduced_source or self.source

    def signature(self) -> Signature:
        return Signature(
            flow=self.flow,
            kind=self.kind,
            rule=self.rule,
            program_hash=program_hash(self.best_source),
        )

    def to_dict(self) -> Dict[str, object]:
        """Plain data for the shard boundary (JSON through a process
        pool); ``from_dict`` round-trips it exactly."""
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["args"] = list(self.args)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Divergence":
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        kwargs["args"] = tuple(kwargs.get("args", ()))
        return cls(**kwargs)

    def describe(self) -> str:
        sig = self.signature()
        text = f"[{sig.id}] seed={self.seed}"
        if self.mutation:
            text += f" mutation={self.mutation}"
        if self.detail:
            text += f"  {self.detail}"
        return text
