"""Synthesis-as-a-service: the async HTTP serving tier.

``repro serve`` (or :func:`repro.serve.run`) boots a stdlib-only asyncio
HTTP/JSON server exposing ``synthesize``/``check``/``lint``.  Requests
validate into the frozen :class:`repro.api.SynthesisOptions`, key by the
same content address the matrix cache uses, and dedup three ways — warm
artifact hits, in-flight coalescing, and a bounded worker pool reusing
the runner's process-pool + deadline machinery.  See
:mod:`repro.serve.server` for the architecture and ``docs/serving.md``
for the API.
"""

from .dedup import InflightTable
from .loadgen import (
    HttpClient,
    LoadReport,
    fetch_stats,
    run_load,
    zipfian_schedule,
)
from .pool import CompilePool
from .protocol import (
    AnalysisRequest,
    ServeLimits,
    SynthesizeRequest,
    ValidationError,
    parse_analysis,
    parse_synthesize,
    result_body,
)
from .ratelimit import RateLimiter, TokenBucket
from .server import ServeConfig, SynthesisServer, amain, run
from .stats import LatencyHistogram, ServeStats

__all__ = [
    "AnalysisRequest",
    "CompilePool",
    "HttpClient",
    "InflightTable",
    "LatencyHistogram",
    "LoadReport",
    "RateLimiter",
    "ServeConfig",
    "ServeLimits",
    "ServeStats",
    "SynthesisServer",
    "SynthesizeRequest",
    "TokenBucket",
    "ValidationError",
    "amain",
    "fetch_stats",
    "parse_analysis",
    "parse_synthesize",
    "result_body",
    "run",
    "run_load",
    "zipfian_schedule",
]
