"""Request/response schema of the synthesis service.

One validated request becomes exactly one :class:`repro.api.SynthesisOptions`
plus a source buffer and simulation arguments — the same frozen option set
every other entry point uses, so a served synthesis is content-addressed by
the same ``identity()`` as a CLI or matrix cell and shares its artifacts.

Validation is strict and happens **before** any dispatch: a request that
names an unknown flow, an out-of-range ``opt_level``, or an oversized
source is answered with a 4xx JSON error body and never reaches a worker
process.  :class:`ValidationError` carries the HTTP status, a stable
machine-readable ``code``, and the offending field.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..api import SynthesisOptions

#: Stable error codes: clients branch on these, not on message text.
BAD_JSON = "bad_json"
BAD_REQUEST = "bad_request"
UNKNOWN_FLOW = "unknown_flow"
BAD_FIELD = "bad_field"
SOURCE_TOO_LARGE = "source_too_large"
RATE_LIMITED = "rate_limited"
OVERLOADED = "overloaded"
NOT_FOUND = "not_found"
METHOD_NOT_ALLOWED = "method_not_allowed"
INTERNAL = "internal_error"
DRAINING = "draining"

SIM_BACKENDS = ("interp", "compiled", "batched")
OPT_LEVELS = (0, 1, 2, 3)

_IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class ValidationError(Exception):
    """A request the server refuses before dispatch (always a 4xx)."""

    def __init__(self, code: str, message: str,
                 field_name: str = "", status: int = 400):
        super().__init__(message)
        self.code = code
        self.message = message
        self.field = field_name
        self.status = status

    def body(self) -> Dict[str, object]:
        error: Dict[str, object] = {"code": self.code, "message": self.message}
        if self.field:
            error["field"] = self.field
        return {"error": error}


@dataclass(frozen=True)
class ServeLimits:
    """Validation bounds; capacity knobs live in the server config."""

    max_source_bytes: int = 64 * 1024
    max_args: int = 16
    max_flow_options: int = 16
    max_flows: int = 32


@dataclass(frozen=True)
class SynthesizeRequest:
    """A validated ``POST /synthesize`` body."""

    source: str
    options: SynthesisOptions
    args: Tuple[int, ...] = ()


@dataclass(frozen=True)
class AnalysisRequest:
    """A validated ``POST /lint`` or ``POST /check`` body."""

    source: str
    flows: Optional[Tuple[str, ...]] = None
    function: str = "main"
    # check-only knobs (ignored by lint), already range-checked.
    check_options: Tuple[Tuple[str, object], ...] = field(default=())


def _require_object(data: object) -> Dict[str, object]:
    if not isinstance(data, dict):
        raise ValidationError(
            BAD_REQUEST, "request body must be a JSON object"
        )
    return data


def _string_field(data: Dict[str, object], name: str, default: str,
                  required: bool = False) -> str:
    value = data.get(name, default)
    if required and not isinstance(value, str):
        raise ValidationError(
            BAD_FIELD, f"{name!r} is required and must be a string", name
        )
    if not isinstance(value, str):
        raise ValidationError(BAD_FIELD, f"{name!r} must be a string", name)
    return value


def _check_source(data: Dict[str, object], limits: ServeLimits) -> str:
    source = data.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ValidationError(
            BAD_FIELD, "'source' is required and must be a non-empty string",
            "source",
        )
    size = len(source.encode("utf-8", errors="replace"))
    if size > limits.max_source_bytes:
        raise ValidationError(
            SOURCE_TOO_LARGE,
            f"source is {size} bytes; this server accepts at most "
            f"{limits.max_source_bytes}",
            "source",
            status=413,
        )
    return source


def _check_flow(name: str, field_name: str = "flow") -> str:
    from ..flows import COMPILABLE

    if name not in COMPILABLE:
        raise ValidationError(
            UNKNOWN_FLOW,
            f"unknown flow {name!r}; compilable flows: "
            + ", ".join(sorted(COMPILABLE)),
            field_name,
        )
    return name


def _check_function(data: Dict[str, object]) -> str:
    function = _string_field(data, "function", "main")
    if not _IDENTIFIER.match(function):
        raise ValidationError(
            BAD_FIELD, f"'function' must be a C identifier, got {function!r}",
            "function",
        )
    return function


def parse_synthesize(data: object, limits: ServeLimits) -> SynthesizeRequest:
    """Validate a ``/synthesize`` body into source + options + args."""
    body = _require_object(data)
    source = _check_source(body, limits)
    flow = _check_flow(_string_field(body, "flow", "c2verilog"))
    function = _check_function(body)

    opt_level = body.get("opt_level", None)
    if opt_level is not None and (
        isinstance(opt_level, bool) or not isinstance(opt_level, int)
        or opt_level not in OPT_LEVELS
    ):
        raise ValidationError(
            BAD_FIELD,
            f"'opt_level' must be one of {list(OPT_LEVELS)}, got {opt_level!r}",
            "opt_level",
        )

    sim_backend = _string_field(body, "sim_backend", "interp")
    if sim_backend not in SIM_BACKENDS:
        raise ValidationError(
            BAD_FIELD,
            f"'sim_backend' must be one of {list(SIM_BACKENDS)}, "
            f"got {sim_backend!r}",
            "sim_backend",
        )

    check = body.get("check", False)
    if not isinstance(check, bool):
        raise ValidationError(
            BAD_FIELD, "'check' must be a boolean", "check"
        )

    raw_args = body.get("args", [])
    if not isinstance(raw_args, list) or len(raw_args) > limits.max_args:
        raise ValidationError(
            BAD_FIELD,
            f"'args' must be a list of at most {limits.max_args} integers",
            "args",
        )
    args = []
    for item in raw_args:
        if isinstance(item, bool) or not isinstance(item, int):
            raise ValidationError(
                BAD_FIELD, f"'args' entries must be integers, got {item!r}",
                "args",
            )
        args.append(item)

    raw_options = body.get("options", {})
    if not isinstance(raw_options, dict) or len(raw_options) > limits.max_flow_options:
        raise ValidationError(
            BAD_FIELD,
            f"'options' must be an object with at most "
            f"{limits.max_flow_options} entries",
            "options",
        )
    from ..api import _FIELD_KWARGS

    for key, value in raw_options.items():
        if not isinstance(key, str) or not _IDENTIFIER.match(key):
            raise ValidationError(
                BAD_FIELD, f"'options' keys must be identifiers, got {key!r}",
                "options",
            )
        if key in _FIELD_KWARGS or key == "trace":
            raise ValidationError(
                BAD_FIELD,
                f"{key!r} is a top-level request field, not a flow option",
                "options",
            )
        if isinstance(value, bool) or isinstance(value, (int, float, str)):
            continue
        raise ValidationError(
            BAD_FIELD,
            f"'options' values must be scalars, got {type(value).__name__}"
            f" for {key!r}",
            "options",
        )

    field_kwargs: Dict[str, object] = {
        "flow": flow,
        "function": function,
        "sim_backend": sim_backend,
        "check": check,
    }
    if opt_level is not None:
        field_kwargs["opt_level"] = opt_level
    options = SynthesisOptions.make(
        SynthesisOptions(**field_kwargs), **raw_options
    )
    return SynthesizeRequest(
        source=source, options=options, args=tuple(args)
    )


def parse_analysis(data: object, limits: ServeLimits,
                   kind: str) -> AnalysisRequest:
    """Validate a ``/lint`` or ``/check`` body (``kind`` picks the extras)."""
    body = _require_object(data)
    source = _check_source(body, limits)
    function = _check_function(body)

    flows: Optional[Tuple[str, ...]] = None
    raw_flows = body.get("flows")
    if raw_flows is not None:
        if not isinstance(raw_flows, list) or not raw_flows \
                or len(raw_flows) > limits.max_flows:
            raise ValidationError(
                BAD_FIELD,
                f"'flows' must be a non-empty list of at most "
                f"{limits.max_flows} flow keys",
                "flows",
            )
        flows = tuple(
            _check_flow(str(name), field_name="flows") for name in raw_flows
        )

    check_options = []
    if kind == "check":
        for name, kind_check, describe in (
            ("pipeline_ii", lambda v: isinstance(v, int)
                and not isinstance(v, bool) and v >= 1, "an integer >= 1"),
            ("clock_budget_ns", lambda v: isinstance(v, (int, float))
                and not isinstance(v, bool) and v > 0, "a positive number"),
            ("memory_ports", lambda v: isinstance(v, int)
                and not isinstance(v, bool) and v >= 1, "an integer >= 1"),
        ):
            value = body.get(name)
            if value is None:
                continue
            if not kind_check(value):
                raise ValidationError(
                    BAD_FIELD, f"{name!r} must be {describe}, got {value!r}",
                    name,
                )
            check_options.append((name, value))
    return AnalysisRequest(
        source=source, flows=flows, function=function,
        check_options=tuple(check_options),
    )


def result_body(result, served_by: str, key: str) -> Dict[str, object]:
    """A ``CellResult`` as the ``/synthesize`` response body.

    ``served_by`` records which dedup tier answered: ``"cache"`` (warm
    artifact), ``"coalesced"`` (joined an identical in-flight compile),
    or ``"compile"`` (a fresh worker dispatch)."""
    return {
        "verdict": result.verdict,
        "value": result.value,
        "cycles": result.cycles,
        "clock_ns": result.clock_ns,
        "latency_ns": result.latency_ns,
        "area_ge": result.area_ge,
        "rtl_hash": result.rtl_hash,
        "rule": result.rule,
        "diagnostics": list(result.diagnostics),
        "served_by": served_by,
        "key": key,
    }


__all__ = [
    "AnalysisRequest",
    "ServeLimits",
    "SynthesizeRequest",
    "ValidationError",
    "parse_analysis",
    "parse_synthesize",
    "result_body",
]
