"""Async load generation against a running synthesis server.

Two pieces, both stdlib-only and deterministic in a seed:

* :func:`zipfian_schedule` — a request stream over distinct
  (source, flow) pairs where pair *rank* r is drawn with probability
  proportional to ``1 / r**s``.  This is the workload shape the serving
  tier is built for (C2HLSC-style: many near-duplicate kernels hammered
  against a few flows), and ``s`` is the duplicate-heaviness dial —
  ``s=0`` is uniform, ``s>=1.2`` is heavily duplicate.
* :func:`run_load` — N worker coroutines with persistent keep-alive
  connections draining one shared schedule, timing every request.

The report carries raw per-request latencies plus the server's own
``/stats`` snapshot, so callers can assert on both sides (client-observed
p99 and server-side hit/coalesce counters).
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class LoadReport:
    """What one :func:`run_load` run observed, client-side + server-side."""

    sent: int = 0
    wall_s: float = 0.0
    status_counts: Dict[int, int] = field(default_factory=dict)
    latencies_s: List[float] = field(default_factory=list)
    served_by: Dict[str, int] = field(default_factory=dict)
    transport_errors: int = 0
    server_stats: Optional[Dict[str, object]] = None

    @property
    def rps(self) -> float:
        return self.sent / self.wall_s if self.wall_s > 0 else 0.0

    def percentile_ms(self, p: float) -> float:
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(len(ordered) - 1,
                    max(0, int(round(p / 100.0 * (len(ordered) - 1)))))
        return ordered[index] * 1e3

    def count_5xx(self) -> int:
        return sum(n for status, n in self.status_counts.items()
                   if status >= 500)

    def ok_ratio(self) -> float:
        ok = self.status_counts.get(200, 0)
        return ok / self.sent if self.sent else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "sent": self.sent,
            "wall_s": round(self.wall_s, 4),
            "rps": round(self.rps, 2),
            "p50_ms": round(self.percentile_ms(50), 3),
            "p99_ms": round(self.percentile_ms(99), 3),
            "status_counts": {str(k): v
                              for k, v in sorted(self.status_counts.items())},
            "served_by": dict(sorted(self.served_by.items())),
            "transport_errors": self.transport_errors,
        }


def zipfian_schedule(
    distinct: Sequence[Dict[str, object]],
    n: int,
    s: float = 1.2,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """``n`` request bodies drawn zipfian over ``distinct`` payloads.

    Rank order is the given order: ``distinct[0]`` is the hottest key.
    Deterministic in ``seed`` so benchmark and baseline replay the exact
    same stream."""
    if not distinct:
        return []
    weights = [1.0 / (rank + 1) ** s for rank in range(len(distinct))]
    rng = random.Random(seed)
    return [distinct[index]
            for index in rng.choices(range(len(distinct)), weights, k=n)]


class HttpClient:
    """A minimal persistent HTTP/1.1 JSON client (one connection)."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        #: Response headers of the most recent request (lower-cased names).
        self.last_headers: Dict[str, str] = {}

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._reader = self._writer = None

    async def request(
        self, method: str, path: str,
        payload: Optional[Dict[str, object]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, object]]:
        """One request; reconnects once on a dead keep-alive connection."""
        for attempt in (0, 1):
            if self._writer is None:
                await self._connect()
            try:
                return await self._roundtrip(method, path, payload, headers)
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                await self.close()
                if attempt:
                    raise
        raise ConnectionError("unreachable")

    async def _roundtrip(self, method, path, payload, headers):
        assert self._reader is not None and self._writer is not None
        body = json.dumps(payload).encode() if payload is not None else b""
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        self._writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + body)
        await self._writer.drain()

        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("latin-1").split(" ", 2)
        status = int(parts[1])
        response_headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            response_headers[name.strip().lower()] = value.strip()
        self.last_headers = response_headers
        length = int(response_headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        if response_headers.get("connection", "").lower() == "close":
            await self.close()
        data = json.loads(raw.decode()) if raw else {}
        return status, data


async def fetch_stats(host: str, port: int) -> Dict[str, object]:
    client = HttpClient(host, port)
    try:
        _status, data = await client.request("GET", "/stats")
        return data
    finally:
        await client.close()


async def run_load(
    host: str,
    port: int,
    schedule: Sequence[Dict[str, object]],
    concurrency: int = 8,
    path: str = "/synthesize",
    client_id: str = "loadgen",
    fetch_server_stats: bool = True,
) -> LoadReport:
    """Drive ``schedule`` through ``concurrency`` persistent connections."""
    report = LoadReport()
    queue: "asyncio.Queue[Dict[str, object]]" = asyncio.Queue()
    for payload in schedule:
        queue.put_nowait(payload)
    report.sent = len(schedule)

    async def worker(index: int) -> None:
        client = HttpClient(host, port)
        headers = {"X-Client-Id": f"{client_id}-{index}"}
        try:
            while True:
                try:
                    payload = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                t0 = perf_counter()
                try:
                    status, data = await client.request(
                        "POST", path, payload, headers
                    )
                except (ConnectionError, OSError,
                        asyncio.IncompleteReadError):
                    report.transport_errors += 1
                    continue
                report.latencies_s.append(perf_counter() - t0)
                report.status_counts[status] = (
                    report.status_counts.get(status, 0) + 1
                )
                tier = data.get("served_by") if isinstance(data, dict) else None
                if isinstance(tier, str):
                    report.served_by[tier] = report.served_by.get(tier, 0) + 1
        finally:
            await client.close()

    t0 = perf_counter()
    await asyncio.gather(*(worker(i) for i in range(max(1, concurrency))))
    report.wall_s = perf_counter() - t0
    if fetch_server_stats:
        report.server_stats = await fetch_stats(host, port)
    return report


__all__ = [
    "HttpClient",
    "LoadReport",
    "fetch_stats",
    "run_load",
    "zipfian_schedule",
]
