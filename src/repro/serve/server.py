"""``repro.serve`` — synthesis-as-a-service over asyncio HTTP/JSON.

The serving layer turns the frozen ``SynthesisOptions -> identity()``
contract into multi-tenant throughput.  Every ``POST /synthesize`` request
is validated into one option set, keyed by the same content address the
matrix runner caches under, and answered by the cheapest of three tiers:

1. **warm hit** — the artifact cache already holds the key; respond
   without touching a worker (microseconds);
2. **coalesce** — an identical request is compiling right now; await its
   shared future instead of dispatching a duplicate (one compile serves N
   clients);
3. **miss** — dispatch to a bounded process pool running the runner's own
   cell worker (SIGALRM deadline, FlowError classification, crash
   isolation), then store the artifact for every later request.

Capacity is explicit everywhere: a full queue answers ``503`` with
``Retry-After`` instead of buffering, per-client token buckets answer
``429``, and ``SIGTERM`` drains — stop accepting, finish in-flight work,
shut the pool down, exit 0.

The HTTP surface is deliberately tiny (HTTP/1.1 keep-alive, JSON bodies,
no TLS, stdlib only) — put a real proxy in front for the internet.
"""

from __future__ import annotations

import asyncio
import json
import signal
from collections import OrderedDict
from dataclasses import dataclass
from time import monotonic, perf_counter
from typing import Callable, Dict, Optional, Tuple

from ..runner.cache import (
    ArtifactCache,
    DEFAULT_CACHE_DIR,
    cell_key,
    environment_salt,
    normalized_source,
)
from ..runner.cells import CellResult, CellTask
from ..runner.engine import execute_cell
from ..trace import TraceContext
from .dedup import InflightTable
from .pool import CompilePool
from .protocol import (
    BAD_JSON,
    DRAINING,
    INTERNAL,
    METHOD_NOT_ALLOWED,
    NOT_FOUND,
    OVERLOADED,
    RATE_LIMITED,
    ServeLimits,
    ValidationError,
    parse_analysis,
    parse_synthesize,
    result_body,
)
from .ratelimit import RateLimiter
from .stats import ServeStats

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_ENDPOINTS = ("/synthesize", "/check", "/lint", "/stats", "/healthz")


@dataclass
class ServeConfig:
    """Everything that sizes and addresses one server instance."""

    host: str = "127.0.0.1"
    port: int = 8787              # 0 = pick a free port (tests, CI)
    jobs: int = 2                 # compile worker processes
    queue_limit: int = 16         # payloads allowed to wait beyond jobs
    rate: float = 0.0             # per-client requests/second; 0 = unlimited
    burst: float = 20.0           # per-client bucket capacity
    timeout_s: float = 20.0       # per-compile SIGALRM deadline in workers
    max_cycles: int = 2_000_000   # simulation bound per request
    max_source_bytes: int = 64 * 1024
    max_body_bytes: int = 1 << 20
    cache_dir: Optional[str] = None   # None = DEFAULT_CACHE_DIR
    no_cache: bool = False            # disable the warm tier entirely
    trace_out: Optional[str] = None   # write a Chrome trace on drain
    drain_grace_s: float = 10.0       # max wait for in-flight work on drain
    analysis_memo: int = 256          # lint/check LRU entries

    def limits(self) -> ServeLimits:
        return ServeLimits(max_source_bytes=self.max_source_bytes)


class _HttpError(Exception):
    """A transport-level refusal (malformed request, oversized body)."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


class SynthesisServer:
    """One serving instance: listener + dedup tiers + bounded pool."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        worker: Callable[[Dict[str, object]], Dict[str, object]] = execute_cell,
    ):
        self.config = config if config is not None else ServeConfig()
        self.stats = ServeStats()
        self.inflight = InflightTable()
        self.pool = CompilePool(
            jobs=self.config.jobs,
            queue_limit=self.config.queue_limit,
            worker=worker,
        )
        self.limiter = RateLimiter(self.config.rate, self.config.burst)
        self.cache: Optional[ArtifactCache] = None
        if not self.config.no_cache:
            root = self.config.cache_dir or DEFAULT_CACHE_DIR
            self.cache = ArtifactCache(root)
        self.trace: Optional[TraceContext] = (
            TraceContext("serve") if self.config.trace_out else None
        )
        self._salt = environment_salt()
        self._limits = self.config.limits()
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self._active = 0
        self._connections: set = set()
        self._started_at = monotonic()
        self._memo: "OrderedDict[tuple, Dict[str, object]]" = OrderedDict()
        self.host = self.config.host
        self.port = self.config.port

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._client, self.config.host, self.config.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self._started_at = monotonic()

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish in-flight requests
        (up to ``drain_grace_s``), stop the pool, flush the trace."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_grace_s
        while self._active and loop.time() < deadline:
            await asyncio.sleep(0.02)
        # Idle keep-alive connections are parked in readline(); close them
        # so their handler coroutines finish instead of leaking into loop
        # shutdown.
        for writer in list(self._connections):
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass
        while self._connections and loop.time() < deadline:
            await asyncio.sleep(0.02)
        self.inflight.abort_all(RuntimeError("server draining"))
        self.pool.shutdown(wait=True)
        if self.trace is not None and self.config.trace_out:
            self.trace.write_chrome(self.config.trace_out)

    @property
    def draining(self) -> bool:
        return self._draining

    def stats_body(self) -> Dict[str, object]:
        return self.stats.to_dict(
            queue_depth=self.pool.queue_depth,
            inflight_keys=len(self.inflight),
            uptime_s=monotonic() - self._started_at,
        )

    # -- HTTP transport ---------------------------------------------------

    async def _client(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        peer = writer.get_extra_info("peername")
        peer_ip = peer[0] if isinstance(peer, tuple) else str(peer)
        self._connections.add(writer)
        try:
            while True:
                try:
                    parsed = await self._read_request(reader)
                except _HttpError as refusal:
                    await self._respond(
                        writer, refusal.status,
                        {"error": {"code": refusal.code,
                                   "message": refusal.message}},
                        keep_alive=False,
                    )
                    break
                if parsed is None:
                    break
                method, path, headers, body = parsed
                status, payload, extra = await self._route(
                    method, path, headers, body, peer_ip
                )
                keep = (
                    headers.get("connection", "").lower() != "close"
                    and not self._draining
                )
                await self._respond(writer, status, payload,
                                    keep_alive=keep, extra=extra)
                if not keep:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, target, _version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            raise _HttpError(400, BAD_JSON, "malformed request line")
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if b":" not in line:
                raise _HttpError(400, BAD_JSON, "malformed header line")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, BAD_JSON, "bad Content-Length")
        if length < 0 or length > self.config.max_body_bytes:
            raise _HttpError(
                413, "body_too_large",
                f"request body over {self.config.max_body_bytes} bytes",
            )
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method.upper(), path, headers, body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Dict[str, object], keep_alive: bool,
                       extra: Optional[Dict[str, str]] = None) -> None:
        self.stats.count_response(status)
        body = json.dumps(payload).encode()
        reason = _REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + body)
        await writer.drain()

    # -- routing ----------------------------------------------------------

    async def _route(
        self, method: str, path: str, headers: Dict[str, str],
        body: bytes, peer_ip: str,
    ) -> Tuple[int, Dict[str, object], Optional[Dict[str, str]]]:
        self.stats.started += 1
        self._active += 1
        t0 = perf_counter()
        endpoint = path.lstrip("/") or "root"
        try:
            status, payload, extra = await self._dispatch(
                method, path, headers, body, peer_ip
            )
        except ValidationError as refusal:
            self.stats.invalid += 1
            status, payload, extra = refusal.status, refusal.body(), None
        except Exception as failure:  # never kill the connection loop
            status, payload, extra = 500, {
                "error": {"code": INTERNAL, "message": repr(failure)}
            }, None
        finally:
            self._active -= 1
        elapsed = perf_counter() - t0
        self.stats.observe(endpoint, elapsed)
        if self.trace is not None:
            self.trace.leaf(endpoint, elapsed, cat="request", status=status)
        return status, payload, extra

    async def _dispatch(
        self, method: str, path: str, headers: Dict[str, str],
        body: bytes, peer_ip: str,
    ) -> Tuple[int, Dict[str, object], Optional[Dict[str, str]]]:
        if path == "/healthz":
            if method != "GET":
                return self._method_not_allowed()
            return 200, {
                "status": "draining" if self._draining else "ok",
                "queue_depth": self.pool.queue_depth,
            }, None
        if path == "/stats":
            if method != "GET":
                return self._method_not_allowed()
            return 200, self.stats_body(), None
        if path not in _ENDPOINTS:
            return 404, {
                "error": {"code": NOT_FOUND,
                          "message": f"no such endpoint: {path}",
                          "endpoints": list(_ENDPOINTS)}
            }, None
        if method != "POST":
            return self._method_not_allowed()
        if self._draining:
            return 503, {
                "error": {"code": DRAINING, "message": "server is draining"}
            }, {"Retry-After": "1"}

        client = headers.get("x-client-id") or peer_ip
        allowed, retry_after = self.limiter.allow(client)
        if not allowed:
            self.stats.rate_limited += 1
            wait = max(1, int(retry_after + 0.999))
            return 429, {
                "error": {"code": RATE_LIMITED,
                          "message": f"client {client!r} is over its "
                                     f"request budget",
                          "retry_after_s": wait}
            }, {"Retry-After": str(wait)}

        try:
            data = json.loads(body.decode("utf-8")) if body else None
        except (ValueError, UnicodeDecodeError):
            raise ValidationError(BAD_JSON, "request body is not valid JSON")

        if path == "/synthesize":
            return await self._synthesize(data)
        return await self._analyze(path.lstrip("/"), data)

    def _method_not_allowed(self):
        return 405, {
            "error": {"code": METHOD_NOT_ALLOWED,
                      "message": "use POST for RPC endpoints, GET for"
                                 " /stats and /healthz"}
        }, {"Allow": "GET, POST"}

    # -- /synthesize: the three dedup tiers -------------------------------

    async def _synthesize(
        self, data: object
    ) -> Tuple[int, Dict[str, object], Optional[Dict[str, str]]]:
        request = parse_synthesize(data, self._limits)
        task = CellTask.from_options(
            "serve", request.source, request.options, args=request.args
        )
        key = cell_key(task, salt=self._salt)

        # Tier 1: warm artifact.
        if self.cache is not None:
            hit = self.cache.load(key)
            if hit is not None:
                self.stats.hits += 1
                return 200, result_body(hit, "cache", key), None

        # Tier 2: identical compile already in flight.
        shared = self.inflight.follow(key)
        if shared is not None:
            self.stats.coalesced += 1
            # shield: a disconnecting follower must not cancel the owner's
            # future out from under every other follower.
            result_dict = await asyncio.shield(shared)
            result = CellResult.from_dict(result_dict)
            return 200, result_body(result, "coalesced", key), None

        # Tier 3: fresh dispatch — but only if the queue has room.
        if self.pool.saturated:
            self.stats.shed += 1
            wait = self._retry_after()
            return 503, {
                "error": {"code": OVERLOADED,
                          "message": f"compile queue is full "
                                     f"({self.pool.inflight} in flight)",
                          "retry_after_s": wait}
            }, {"Retry-After": str(wait)}

        future = self.inflight.register(key)
        self.stats.compiles += 1
        payload = self._payload(task, key)
        try:
            result_dict = await self.pool.run(payload)
        except BaseException as failure:
            self.inflight.fail(key, failure)
            raise
        result = CellResult.from_dict(result_dict)
        if self.cache is not None and self.cache.store(key, result):
            self.stats.stored += 1
        self.inflight.resolve(key, result_dict)
        return 200, result_body(result, "compile", key), None

    def _payload(self, task: CellTask, key: str) -> Dict[str, object]:
        return {
            "workload": task.workload,
            "source": task.source,
            "flow": task.flow,
            "function": task.function,
            "args": list(task.args),
            "options": [list(pair) for pair in task.options],
            "sim_backend": task.sim_backend,
            "check": task.check,
            "expected": None,
            "timeout_s": self.config.timeout_s,
            "max_cycles": self.config.max_cycles,
            "cache_key": key,
            "trace": False,
        }

    def _retry_after(self) -> int:
        compile_hist = self.stats.latency.get("synthesize")
        mean = compile_hist.mean_s if compile_hist is not None else 0.5
        estimate = (self.pool.queue_depth + 1) * max(mean, 0.05) / self.pool.jobs
        return min(30, max(1, int(estimate + 0.999)))

    # -- /lint and /check -------------------------------------------------

    async def _analyze(
        self, kind: str, data: object
    ) -> Tuple[int, Dict[str, object], Optional[Dict[str, str]]]:
        request = parse_analysis(data, self._limits, kind)
        import hashlib

        digest = hashlib.sha256(
            normalized_source(request.source).encode()
        ).hexdigest()
        memo_key = (kind, digest, request.flows, request.function,
                    request.check_options)
        memoized = self._memo.get(memo_key)
        if memoized is not None:
            self._memo.move_to_end(memo_key)
            self.stats.analysis_memo_hits += 1
            return 200, dict(memoized, served_by="memo"), None

        inflight_key = f"{kind}:{digest}:{hash(memo_key) & 0xFFFFFFFF:x}"
        shared = self.inflight.follow(inflight_key)
        if shared is not None:
            self.stats.coalesced += 1
            report = await asyncio.shield(shared)
            return 200, dict(report, served_by="coalesced"), None

        future = self.inflight.register(inflight_key)
        self.stats.analysis_runs += 1
        loop = asyncio.get_running_loop()
        try:
            report = await loop.run_in_executor(
                None, _run_analysis, kind, request
            )
        except BaseException as failure:
            self.inflight.fail(inflight_key, failure)
            raise
        self.inflight.resolve(inflight_key, report)
        self._memo[memo_key] = report
        while len(self._memo) > self.config.analysis_memo:
            self._memo.popitem(last=False)
        return 200, dict(report, served_by="fresh"), None


def _run_analysis(kind: str, request) -> Dict[str, object]:
    """Thread-pool body for /lint and /check (pure CPU, no shared state)."""
    flows = list(request.flows) if request.flows is not None else None
    if kind == "check":
        from ..analysis.timing import CheckOptions, check

        options = CheckOptions(**dict(request.check_options))
        report = check(request.source, flows=flows,
                       function=request.function, options=options)
    else:
        from ..analysis.lint import lint

        report = lint(request.source, flows=flows, function=request.function)
    return report.to_dict()


# -- process entry ---------------------------------------------------------


async def amain(config: ServeConfig) -> int:
    """Run a server until SIGTERM/SIGINT, then drain; the CLI entry."""
    server = SynthesisServer(config)
    await server.start()
    cache_note = "off" if server.cache is None else str(server.cache.root)
    print(
        f"repro-serve: listening on http://{server.host}:{server.port}"
        f" (jobs={config.jobs}, queue={config.queue_limit},"
        f" cache={cache_note})",
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signame in ("SIGTERM", "SIGINT"):
        signum = getattr(signal, signame, None)
        if signum is None:
            continue
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # non-POSIX event loops
            pass
    await stop.wait()
    print("repro-serve: draining...", flush=True)
    await server.drain()
    summary = server.stats_body()
    print(
        "repro-serve: drained cleanly "
        + json.dumps({"requests": summary["requests"],
                      "dedup": summary["dedup"],
                      "rejected": summary["rejected"]}),
        flush=True,
    )
    return 0


def run(config: Optional[ServeConfig] = None) -> int:
    return asyncio.run(amain(config if config is not None else ServeConfig()))


__all__ = ["ServeConfig", "SynthesisServer", "amain", "run"]
