"""The bounded compile pool behind the server.

A thin asyncio front on the matrix runner's worker machinery: payloads are
the same dicts :func:`repro.runner.execute_cell` consumes (so workers keep
the SIGALRM per-cell deadline, FlowError classification, and crash
isolation the sweeps already proved), executed on a fork-preferring
``ProcessPoolExecutor``.

Capacity is explicit: at most ``jobs`` payloads run and at most
``queue_limit`` more wait.  :meth:`CompilePool.saturated` is the
backpressure signal — the server answers 503 + Retry-After instead of
queueing unboundedly.  A worker death breaks the whole executor, so the
pool is rebuilt on :class:`BrokenProcessPool` and the payload that killed
it is answered with the runner's standard crash result rather than taking
the server down.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict

from ..runner.engine import _crash_result, _pool_context, execute_cell


class CompilePool:
    """Bounded async dispatch onto a process pool of cell workers."""

    def __init__(
        self,
        jobs: int = 2,
        queue_limit: int = 8,
        worker: Callable[[Dict[str, object]], Dict[str, object]] = execute_cell,
    ):
        self.jobs = max(1, int(jobs))
        self.queue_limit = max(0, int(queue_limit))
        self.worker = worker
        self._inflight = 0
        self._closed = False
        self._context = _pool_context()
        self._executor = self._make_executor()

    def _make_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs, mp_context=self._context
        )

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def queue_depth(self) -> int:
        """Payloads accepted but not yet running (0 while spare workers)."""
        return max(0, self._inflight - self.jobs)

    @property
    def saturated(self) -> bool:
        """True when accepting one more payload would exceed the bound."""
        return self._closed or self._inflight >= self.jobs + self.queue_limit

    async def run(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Execute one payload; always returns a result dict (a worker
        crash becomes the runner's ``error`` verdict, like the sweeps)."""
        if self._closed:
            raise RuntimeError("pool is shut down")
        self._inflight += 1
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                self._executor, self.worker, payload
            )
        except BrokenProcessPool:
            if not self._closed:
                # The dead worker poisoned the whole executor; replace it
                # so the *next* request compiles normally.
                self._executor.shutdown(wait=False)
                self._executor = self._make_executor()
            crashed = _crash_result(payload)
            assert isinstance(crashed, dict)
            return crashed
        finally:
            self._inflight -= 1

    def shutdown(self, wait: bool = True) -> None:
        self._closed = True
        self._executor.shutdown(wait=wait)


__all__ = ["CompilePool"]
