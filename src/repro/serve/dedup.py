"""In-flight request coalescing.

The artifact cache already dedups across *time* (a warm key never
recompiles); this table dedups across *concurrency*: every identical
request that arrives while the first is still compiling awaits the same
``asyncio.Future`` instead of dispatching its own worker.  The owner — the
coroutine that registered the key — is the only one that talks to the
pool; everyone else is a follower.

Single-threaded by design: all mutation happens on the event-loop thread,
so membership checks and registration are atomic between ``await`` points
and no lock is needed.  Followers wait behind :func:`asyncio.shield` in
the server so one disconnecting client cannot cancel the shared compile.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional


class InflightTable:
    """Key -> shared future for compiles currently in the pool."""

    def __init__(self):
        self._futures: Dict[str, asyncio.Future] = {}

    def follow(self, key: str) -> Optional[asyncio.Future]:
        """The in-flight future for ``key``, or None when nobody owns it."""
        return self._futures.get(key)

    def register(self, key: str) -> asyncio.Future:
        """Claim ownership of ``key``; the caller must later resolve it
        via :meth:`resolve` or :meth:`fail` (both pop the entry)."""
        if key in self._futures:
            raise RuntimeError(f"key already in flight: {key}")
        future = asyncio.get_running_loop().create_future()
        self._futures[key] = future
        return future

    def resolve(self, key: str, result: object) -> None:
        future = self._futures.pop(key, None)
        if future is not None and not future.done():
            future.set_result(result)

    def fail(self, key: str, error: BaseException) -> None:
        future = self._futures.pop(key, None)
        if future is not None and not future.done():
            future.set_exception(error)

    def __len__(self) -> int:
        return len(self._futures)

    def abort_all(self, error: BaseException) -> None:
        """Drain-time cleanup: fail every open future (no new owners can
        register once the listener is closed)."""
        for key in list(self._futures):
            self.fail(key, error)


__all__ = ["InflightTable"]
