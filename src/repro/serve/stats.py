"""Serving metrics: dedup counters and per-endpoint latency histograms.

Everything here is plain data updated from the event-loop thread, so no
locks are needed; the ``/stats`` endpoint renders :meth:`ServeStats.to_dict`
directly.  Latencies go into fixed geometric buckets (1.25x steps from
50 µs to ~80 s) rather than a reservoir: constant memory at any request
rate, and p50/p99 read out by cumulative interpolation, which is accurate
to the bucket width (±12%) — plenty for capacity planning.
"""

from __future__ import annotations

from typing import Dict, List, Optional

_GROWTH = 1.25
_FLOOR_S = 50e-6
_BUCKETS = 70  # _FLOOR_S * 1.25**69 ≈ 240 s, past any sane deadline


def _bucket_bounds() -> List[float]:
    bounds = []
    upper = _FLOOR_S
    for _ in range(_BUCKETS):
        bounds.append(upper)
        upper *= _GROWTH
    return bounds


class LatencyHistogram:
    """Constant-memory latency distribution with percentile readout."""

    BOUNDS = _bucket_bounds()

    __slots__ = ("counts", "count", "total_s", "max_s")

    def __init__(self):
        self.counts = [0] * (_BUCKETS + 1)  # +1 overflow bucket
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        seconds = max(seconds, 0.0)
        self.count += 1
        self.total_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds
        lo, hi = 0, _BUCKETS
        while lo < hi:
            mid = (lo + hi) // 2
            if seconds <= self.BOUNDS[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1

    def percentile(self, p: float) -> float:
        """The latency (seconds) at percentile ``p`` in [0, 100]."""
        if self.count == 0:
            return 0.0
        target = self.count * min(max(p, 0.0), 100.0) / 100.0
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= target and count:
                if index >= _BUCKETS:
                    return self.max_s
                # Upper bound of the bucket: a conservative estimate.
                return min(self.BOUNDS[index], self.max_s or self.BOUNDS[index])
        return self.max_s

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "mean_ms": round(self.mean_s * 1e3, 3),
            "p50_ms": round(self.percentile(50) * 1e3, 3),
            "p90_ms": round(self.percentile(90) * 1e3, 3),
            "p99_ms": round(self.percentile(99) * 1e3, 3),
            "max_ms": round(self.max_s * 1e3, 3),
        }


class ServeStats:
    """Counters for every way a request can be answered.

    The dedup invariant the tests assert lives here: for ``/synthesize``,
    ``hits + coalesced + compiles == 2xx responses``, and ``compiles`` is
    the number of *underlying* pool dispatches — N identical concurrent
    requests bump it exactly once.
    """

    def __init__(self):
        self.started = 0          # requests that reached routing
        self.responses: Dict[int, int] = {}  # HTTP status -> count
        self.hits = 0             # answered from the artifact cache
        self.coalesced = 0        # joined an identical in-flight compile
        self.compiles = 0         # fresh pool dispatches (the misses)
        self.stored = 0           # results written back to the cache
        self.rate_limited = 0     # 429s
        self.shed = 0             # 503s from a saturated queue
        self.invalid = 0          # 4xx validation refusals
        self.analysis_memo_hits = 0   # lint/check answered from the memo
        self.analysis_runs = 0        # lint/check actually computed
        self.latency: Dict[str, LatencyHistogram] = {}

    def observe(self, endpoint: str, seconds: float) -> None:
        histogram = self.latency.get(endpoint)
        if histogram is None:
            histogram = self.latency[endpoint] = LatencyHistogram()
        histogram.observe(seconds)

    def count_response(self, status: int) -> None:
        self.responses[status] = self.responses.get(status, 0) + 1

    def warm_ratio(self) -> float:
        """Fraction of answered synthesize requests that skipped a compile."""
        answered = self.hits + self.coalesced + self.compiles
        if not answered:
            return 0.0
        return (self.hits + self.coalesced) / answered

    def to_dict(self, queue_depth: int = 0,
                inflight_keys: int = 0,
                uptime_s: Optional[float] = None) -> Dict[str, object]:
        data: Dict[str, object] = {
            "requests": self.started,
            "responses": {str(k): v for k, v in sorted(self.responses.items())},
            "dedup": {
                "hits": self.hits,
                "coalesced": self.coalesced,
                "compiles": self.compiles,
                "stored": self.stored,
                "warm_ratio": round(self.warm_ratio(), 4),
            },
            "rejected": {
                "invalid": self.invalid,
                "rate_limited": self.rate_limited,
                "shed": self.shed,
            },
            "analysis": {
                "memo_hits": self.analysis_memo_hits,
                "runs": self.analysis_runs,
            },
            "queue_depth": queue_depth,
            "inflight_keys": inflight_keys,
            "latency": {
                endpoint: histogram.to_dict()
                for endpoint, histogram in sorted(self.latency.items())
            },
        }
        if uptime_s is not None:
            data["uptime_s"] = round(uptime_s, 3)
        return data


__all__ = ["LatencyHistogram", "ServeStats"]
