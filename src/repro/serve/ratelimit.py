"""Per-client token-bucket rate limiting.

Each client (the ``X-Client-Id`` header when present, else the peer
address) gets a bucket holding up to ``burst`` tokens refilled at ``rate``
tokens per second; a request spends one token or is refused with the time
until the next token becomes available (the 429's ``Retry-After``).

Buckets live in an LRU dict capped at ``max_clients`` so an open server
cannot be grown without bound by spoofed client ids: the least-recently
seen bucket is evicted first, which for an attacker just means a fresh
(full) bucket — eviction never *tightens* anyone's limit, it only forgets
debt, the safe direction.
"""

from __future__ import annotations

from collections import OrderedDict
from time import monotonic
from typing import Callable, Tuple


class TokenBucket:
    """One client's budget: ``burst`` capacity, ``rate`` tokens/second."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def take(self, now: float) -> Tuple[bool, float]:
        """Spend one token; returns ``(allowed, retry_after_seconds)``."""
        elapsed = max(now - self.updated, 0.0)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        needed = (1.0 - self.tokens) / self.rate if self.rate > 0 else 60.0
        return False, needed


class RateLimiter:
    """LRU map of client id -> :class:`TokenBucket`.

    ``rate <= 0`` disables limiting entirely (every request allowed),
    which is the load-benchmark configuration.  ``clock`` is injectable
    so tests can step time deterministically.
    """

    def __init__(self, rate: float, burst: float,
                 max_clients: int = 4096,
                 clock: Callable[[], float] = monotonic):
        self.rate = float(rate)
        self.burst = max(float(burst), 1.0)
        self.max_clients = max_clients
        self.clock = clock
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def allow(self, client: str) -> Tuple[bool, float]:
        """``(allowed, retry_after_seconds)`` for one request by ``client``."""
        if not self.enabled:
            return True, 0.0
        now = self.clock()
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, now)
            self._buckets[client] = bucket
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(client)
        return bucket.take(now)

    def __len__(self) -> int:
        return len(self._buckets)


__all__ = ["RateLimiter", "TokenBucket"]
