"""Shared benchmark utilities.

Every benchmark regenerates one of the paper's exhibits (Table 1 or an
experiment from DESIGN.md/EXPERIMENTS.md) and writes the resulting table
or series to ``benchmarks/results/<name>.txt`` so the numbers survive the
pytest run.  The ``benchmark`` fixture times each experiment's core
computation.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_report():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save
