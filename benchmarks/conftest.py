"""Shared benchmark utilities.

Every benchmark regenerates one of the paper's exhibits (Table 1 or an
experiment from DESIGN.md/EXPERIMENTS.md) and writes the resulting table
or series to ``benchmarks/results/<name>.txt`` so the numbers survive the
pytest run.  The ``benchmark`` fixture times each experiment's core
computation.

Matrix-shaped benchmarks (T2, E13) go through the same
:class:`repro.runner.MatrixEngine` as ``repro sweep``: the ``sweep_runner``
fixture hands out engines, and ``suite_results`` is one shared parallel
sweep of the full workload × flow matrix as structured ``CellResult``s.
"""

import json
import pathlib
import time

import pytest

from repro.runner import ArtifactCache, MatrixEngine, suite_tasks

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Machine-readable report schema shared by every ``BENCH_*.json``.
BENCH_SCHEMA = "repro-bench/1"


@pytest.fixture(scope="session")
def save_report():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save


@pytest.fixture(scope="session")
def save_bench():
    """Write ``BENCH_<name>.json``: one flat ``metrics`` dict under a
    stable schema tag, so CI and dashboards diff numbers across runs
    without scraping the human-readable tables."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, metrics: dict, config: dict = None) -> pathlib.Path:
        payload = {
            "schema": BENCH_SCHEMA,
            "bench": name,
            "created_unix": int(time.time()),
            "metrics": metrics,
        }
        if config:
            payload["config"] = config
        path = RESULTS_DIR / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path

    return _save


@pytest.fixture(scope="session")
def sweep_runner(tmp_path_factory):
    """Factory for matrix engines; ``cached=True`` engines share one
    session-local artifact cache directory (never the user's real one)."""
    cache_root = tmp_path_factory.mktemp("matrix-cache")

    def _make(jobs: int = 1, cached: bool = False) -> MatrixEngine:
        cache = ArtifactCache(cache_root) if cached else None
        return MatrixEngine(jobs=jobs, cache=cache)

    return _make


@pytest.fixture(scope="session")
def suite_results(sweep_runner):
    """One parallel sweep of the full workload × flow matrix, shared by
    every benchmark that consumes per-cell results."""
    return sweep_runner(jobs=4).run_cells(suite_tasks())
