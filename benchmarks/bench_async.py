"""E7 — asynchronous dataflow (CASH) vs synchronous FSMDs.

Paper claim: CASH "is unique because it generates asynchronous hardware.
It identifies instruction-level parallelism in ANSI C and generates
asynchronous dataflow circuits."

Regenerated table: per workload, the synchronous design's latency (cycles ×
estimated clock) against the asynchronous design's completion time and its
measured operator-level concurrency.  Expected shape: the asynchronous
circuit tracks each operator's true delay (winning on unbalanced,
control-ish code where the clock is set by a worst-case path), while the
synchronous design amortizes better on long regular loops; CASH pays area
for spatial computation either way.
"""

import pytest

from repro.flows import compile_flow
from repro.report import format_table
from repro.workloads import WORKLOADS

CANDIDATES = [
    w for w in WORKLOADS if w.category in ("regular", "control", "memory")
]


def run_matrix():
    rows = []
    wins = 0
    for w in CANDIDATES:
        sync = compile_flow(w.source, flow="c2verilog")
        sync_run = sync.run(args=w.args)
        cash = compile_flow(w.source, flow="cash")
        cash_run = cash.run(args=w.args)
        assert sync_run.value == cash_run.value
        if cash_run.time_ns < sync_run.time_ns:
            wins += 1
        rows.append([
            w.name, w.category,
            sync_run.cycles, f"{sync_run.time_ns:.0f}",
            f"{cash_run.time_ns:.0f}",
            f"{sync_run.time_ns / max(cash_run.time_ns, 1e-9):.2f}x",
            f"{cash_run.stats['average_parallelism']:.2f}",
            f"{cash.cost().area_ge:.0f}",
            f"{sync.cost().area_ge:.0f}",
        ])
    return rows, wins


def test_async_vs_sync(benchmark, save_report):
    rows, wins = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    text = format_table(
        ["workload", "category", "sync cyc", "sync ns", "async ns",
         "async speedup", "avg parallelism", "async area", "sync area"],
        rows,
        title="E7: CASH asynchronous dataflow vs C2Verilog synchronous FSMD",
    )
    save_report("e7_async", text)
    # The asynchronous circuit wins on most workloads (no worst-case clock).
    assert wins >= len(rows) // 2
    # Spatial computation costs area: CASH is bigger than the shared
    # datapath on the majority of kernels.
    bigger = sum(1 for r in rows if float(r[7]) > float(r[8]))
    assert bigger >= len(rows) // 3
    # Measured concurrency exceeds 1 where the code is parallel at all.
    parallelism = [float(r[6]) for r in rows]
    assert max(parallelism) > 1.5
