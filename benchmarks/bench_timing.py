"""E17 — time-sensitive checker: runtime, matrix agreement, probe kill rate.

The TIM tier's claim is stronger than the linter's (E13): it predicts not
just *feature* rejections but *schedule* failures — within budgets no
schedule can meet, rendezvous shapes that deadlock, lockstep ``par``
cycles a single-port RAM cannot serve, II requests below a loop's MII
floor.  This benchmark regenerates the three numbers that back the claim:

* checker wall-time per workload over every compilable flow (the cost of
  the pre-flight, next to the compile time it can save);
* cross-validated agreement over the full workload x flow matrix — the
  checker's verdict must match what the flows actually did on every cell,
  with each rule prediction validated against the compiled artifact;
* the timing-boundary probe kill rate — every generated probe (>= 200,
  spanning all seven TIM families over 27 kind x flow pairs) must be
  rejected with its predicted rule id at a real source location, and the
  predicted failure must reproduce on the artifact.
"""

import time
from collections import Counter

from repro.analysis.timing import check
from repro.analysis.timing.harness import cross_validate_matrix, validate_probe
from repro.flows import COMPILABLE
from repro.fuzz.timing import probe_plan
from repro.report import format_table
from repro.workloads import WORKLOADS


def run_checker_suite(cells):
    rows = []
    total_check_ms = 0.0
    total_compile_ms = 0.0
    for w in WORKLOADS:
        start = time.perf_counter()
        report = check(w.source, flows=list(COMPILABLE))
        check_ms = (time.perf_counter() - start) * 1000.0
        total_check_ms += check_ms
        compile_ms = sum(
            cells[(w.name, key)].wall_s * 1000.0 for key in COMPILABLE
        )
        total_compile_ms += compile_ms
        tim = sum(
            1 for d in report.diagnostics if d.rule.startswith("TIM")
        )
        rows.append([
            w.name, w.category,
            len(report.errors()), len(report.warnings()), tim,
            f"{check_ms:.1f}", f"{compile_ms:.1f}",
        ])
    return rows, (total_check_ms, total_compile_ms)


def run_probe_sweep():
    plan = probe_plan()
    outcomes = [validate_probe(p) for p in plan]
    per_rule = Counter()
    killed_per_rule = Counter()
    for probe, outcome in zip(plan, outcomes):
        per_rule[probe.rule] += 1
        killed_per_rule[probe.rule] += 1 if outcome.ok else 0
    rows = [
        [rule, per_rule[rule], killed_per_rule[rule],
         f"{100.0 * killed_per_rule[rule] / per_rule[rule]:.0f}%"]
        for rule in sorted(per_rule)
    ]
    killed = sum(killed_per_rule.values())
    return rows, (len(plan), killed)


def test_checker_matrix_agreement(benchmark, save_report, suite_results):
    cells = {(r.workload, r.flow): r for r in suite_results}
    verdicts = {key: cell.verdict for key, cell in cells.items()}
    rows, (check_ms, compile_ms) = benchmark.pedantic(
        run_checker_suite, args=(cells,), rounds=1, iterations=1
    )
    validation = cross_validate_matrix(verdicts)
    text = format_table(
        ["workload", "category", "errors", "warnings", "TIM",
         "check ms", "compile ms"],
        rows,
        title="E17: time-sensitive checker vs the matrix"
              f" ({validation.agreements}/{validation.cells} verdicts agree,"
              f" {check_ms:.0f} ms check vs {compile_ms:.0f} ms compile)",
    )
    save_report("e17_timing_checker", text)
    assert validation.cells == len(verdicts)
    assert validation.agreements == validation.cells  # 100% agreement
    assert not validation.false_accepts()
    assert check_ms < compile_ms


def test_probe_kill_rate(save_report):
    rows, (total, killed) = run_probe_sweep()
    text = format_table(
        ["rule", "probes", "killed", "rate"],
        rows,
        title=f"E17: timing-boundary probe kill rate ({killed}/{total})",
    )
    save_report("e17_timing_probes", text)
    assert total >= 200
    assert killed == total  # every probe rejected, located, and reproduced
