"""E12 (extension) — recovering the bit widths C threw away.

Paper claim (opening argument): "Bit vectors are natural in hardware, yet
C only supports four sizes.  That C has types that match what the
processor directly manipulates ... is troubling when synthesizing hardware
from C."

The value-range narrowing pass (``repro.ir.passes.narrow``) measures the
cost of C's word-sized types: every workload is synthesized with and
without width recovery, and the table reports bits saved and the area
delta.  Kernels whose values are genuinely narrow (masked nibbles, small
counters, CRC bytes) shed real multiplier/register area; kernels already
written with sized types (``uint8``) or dominated by full-width data see
little change — exactly the gap a bit-vector-native language never opens.
"""

import pytest

from repro.analysis.pointer import plan_pointers
from repro.binding import estimate_cost
from repro.ir import build_function
from repro.ir.passes import inline_program, narrow_widths, optimize
from repro.lang import parse
from repro.report import format_table
from repro.scheduling import ResourceSet, list_schedule_function
from repro.workloads import WORKLOADS

CANDIDATES = [w for w in WORKLOADS if w.category in ("regular", "control", "memory")]

NIBBLE_KERNEL = """
int main(int x) {
    int acc = 0;
    for (int i = 0; i < 16; i++) {
        int lo = (x >> i) & 15;
        int hi = ((x >> i) >> 4) & 15;
        acc += lo * hi;
    }
    return acc;
}
"""


def _cost(source, narrow):
    program, info = parse(source)
    inlined, _ = inline_program(program, info)
    fn = inlined.function("main")
    cdfg = build_function(fn, info, plan_pointers(fn))
    optimize(cdfg)
    report = None
    if narrow:
        report = narrow_widths(cdfg)
    schedule = list_schedule_function(cdfg, ResourceSet.typical(), clock_ns=5.0)
    return estimate_cost(schedule), report


def run_all():
    rows = []
    savings = {}
    for name, source in [("nibble16", NIBBLE_KERNEL)] + [
        (w.name, w.source) for w in CANDIDATES
    ]:
        wide, _ = _cost(source, narrow=False)
        slim, report = _cost(source, narrow=True)
        saving = 1.0 - slim.total_area_ge / wide.total_area_ge
        savings[name] = saving
        rows.append([
            name,
            report.vregs_narrowed + report.registers_narrowed,
            report.bits_saved,
            f"{wide.total_area_ge:.0f}",
            f"{slim.total_area_ge:.0f}",
            f"{100 * saving:.1f}%",
        ])
    return rows, savings


def test_bitwidth_recovery(benchmark, save_report):
    rows, savings = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = format_table(
        ["workload", "values narrowed", "bits saved", "area (32-bit)",
         "area (narrowed)", "saving"],
        rows,
        title="E12: value-range bit-width recovery vs C's word-sized types",
    )
    save_report("e12_bitwidth", text)
    # The nibble kernel's 4x4 multiplies collapse the quadratic term.
    assert savings["nibble16"] > 0.15
    # Narrowing never increases area on any workload.
    assert all(s >= -0.02 for s in savings.values())
    # Somewhere in the real suite the recovery is material too.
    assert max(s for name, s in savings.items() if name != "nibble16") > 0.05
