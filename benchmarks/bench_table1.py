"""T1 — regenerate the paper's Table 1 from the implemented flow registry.

Paper exhibit: Table 1, "C-like languages/compilers (chronological order)",
eleven rows from Cones (1988) to CASH (2002), each with a one-line
characterization.  Here every row is backed by a runnable flow (Ocapi by a
structural construction API), so the table is generated, not transcribed.
"""

from repro.flows import table1_rows
from repro.report import format_table


def test_table1(benchmark, save_report):
    rows = benchmark(table1_rows)
    assert len(rows) == 11
    assert [r["language"] for r in rows][:3] == [
        "Cones", "HardwareC", "Transmogrifier C"
    ]
    text = format_table(
        ["language", "year", "note", "concurrency", "timing", "artifact"],
        [
            [r["language"], r["year"], r["note"], r["concurrency"],
             r["timing"], r["artifact"]]
            for r in rows
        ],
        title="Table 1: C-like languages/compilers (chronological order)",
    )
    save_report("table1", text)
