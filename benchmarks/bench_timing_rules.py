"""E4 — implicit timing rules vs scheduled timing, and the recoding tax.

Paper claim: "While simple to understand, such rules can require recoding
to meet timing.  Handel-C may require assignment statements to be fused and
loops may need to be unrolled in Transmogrifier C."

Regenerated tables:

* the same kernels written as many small assignments vs fused expressions,
  compiled by Handel-C (one cycle per assignment), Transmogrifier C (one
  cycle per iteration, chained logic), and Bach C (compiler-scheduled):
  the implicit-rule flows move a lot between the two codings, the
  scheduled flow barely moves — the recoding burden is the rule's, not the
  program's;
* Transmogrifier cycles as a function of unroll factor: the loop-unrolling
  recoding buys cycles at the price of clock period and area.
"""

import pytest

from repro.flows import compile_flow, get_flow, run_flow
from repro.report import format_table
from repro.workloads import RECODING_PAIRS, get, unrolled_program

FLOWS = ("handelc", "transmogrifier", "bachc")


def run_pairs():
    rows = []
    for pair in RECODING_PAIRS:
        for flow in FLOWS:
            stepped = run_flow(pair.stepped, args=pair.args, flow=flow)
            fused = run_flow(pair.fused, args=pair.args, flow=flow)
            assert stepped.value == fused.value
            stepped_clock = compile_flow(pair.stepped, flow=flow).cost().clock_ns
            fused_clock = compile_flow(pair.fused, flow=flow).cost().clock_ns
            rows.append([
                pair.name, flow,
                stepped.cycles, fused.cycles,
                f"{stepped.cycles / max(fused.cycles, 1):.2f}x",
                f"{stepped_clock:.1f}", f"{fused_clock:.1f}",
            ])
    return rows


def test_recoding_pairs(benchmark, save_report):
    rows = benchmark.pedantic(run_pairs, rounds=1, iterations=1)
    text = format_table(
        ["kernel", "flow", "stepped cyc", "fused cyc", "cycle gain",
         "stepped clk(ns)", "fused clk(ns)"],
        rows,
        title="E4a: assignment fusion — cycles vs clock across timing models",
    )
    save_report("e4a_recoding_pairs", text)
    # Handel-C must reward fusion strongly; Bach C must be insensitive.
    handelc_gains = [
        float(r[4][:-1]) for r in rows if r[1] == "handelc"
    ]
    bachc_gains = [float(r[4][:-1]) for r in rows if r[1] == "bachc"]
    assert min(handelc_gains) >= 1.5
    assert max(bachc_gains) <= 1.35


def test_transmogrifier_unrolling(benchmark, save_report):
    w = get("dot16")

    def sweep():
        rows = []
        base = run_flow(w.source, args=w.args, flow="transmogrifier")
        base_cost = compile_flow(w.source, flow="transmogrifier").cost()
        rows.append([1, base.cycles, f"{base_cost.clock_ns:.1f}",
                     f"{base.cycles * base_cost.clock_ns:.0f}",
                     f"{base_cost.area_ge:.0f}"])
        for factor in (2, 4, 8):
            program, info, count = unrolled_program(w.source, factor)
            assert count == 1
            design = get_flow("transmogrifier").compile(program, info, "main")
            run = design.run(args=w.args)
            assert run.value == base.value
            cost = design.cost()
            rows.append([factor, run.cycles, f"{cost.clock_ns:.1f}",
                         f"{run.cycles * cost.clock_ns:.0f}",
                         f"{cost.area_ge:.0f}"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["unroll", "cycles", "clock(ns)", "latency(ns)", "area(GE)"],
        rows,
        title="E4b: Transmogrifier C — unrolling dot16 to meet timing",
    )
    save_report("e4b_transmogrifier_unroll", text)
    cycles = [int(r[1]) for r in rows]
    clocks = [float(r[2]) for r in rows]
    assert cycles[-1] < cycles[0]      # unrolling cuts cycles...
    assert clocks[-1] >= clocks[0]     # ...but stretches the clock
