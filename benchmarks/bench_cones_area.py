"""E6 — the cost of flattening everything into combinational logic.

Paper claim: Cones "flattens each function, including loops and
conditionals, into a single two-level network" — which is only viable for
small, bounded computations: the network's operator count grows with the
total unrolled work, while an FSMD reuses one datapath across cycles.

Regenerated series: Cones operator count / area / critical path vs. the
problem size N, against the (near-flat) FSMD datapath area, plus the same
comparison across real workloads.
"""

import pytest

from repro.flows import FlowError, compile_flow
from repro.report import format_table
from repro.workloads import WORKLOADS

TEMPLATE = """
int data[{n}];
int main(int x) {{
    int s = 0;
    for (int i = 0; i < {n}; i++) {{
        data[i] = (x + i) * 3;
        s += data[i] ^ i;
    }}
    return s;
}}
"""

SIZES = (2, 4, 8, 16, 32)


def sweep_sizes():
    rows = []
    for n in SIZES:
        source = TEMPLATE.format(n=n)
        cones = compile_flow(source, flow="cones")
        fsmd = compile_flow(source, flow="c2verilog")
        cones_cost = cones.cost()
        fsmd_cost = fsmd.cost()
        rows.append([
            n,
            cones.netlist.op_count,
            f"{cones_cost.area_ge:.0f}",
            f"{cones_cost.critical_path_ns:.1f}",
            f"{fsmd_cost.area_ge:.0f}",
            f"{cones_cost.area_ge / fsmd_cost.area_ge:.2f}x",
        ])
    return rows


def test_cones_area_explosion(benchmark, save_report):
    rows = benchmark.pedantic(sweep_sizes, rounds=1, iterations=1)
    text = format_table(
        ["N", "cones ops", "cones area(GE)", "cones path(ns)",
         "fsmd area(GE)", "area ratio"],
        rows,
        title="E6a: combinational flattening vs FSMD, loop bound N",
    )
    save_report("e6a_cones_growth", text)
    ops = [int(r[1]) for r in rows]
    cones_area = [float(r[2]) for r in rows]
    fsmd_area = [float(r[4]) for r in rows]
    # Cones grows superlinearly (per-element mux trees on top of the
    # unrolled work); the FSMD datapath stays within a small factor.
    assert ops[-1] > ops[0] * (SIZES[-1] // SIZES[0])
    assert cones_area[-1] > cones_area[0] * 10
    assert fsmd_area[-1] < fsmd_area[0] * 4


def test_cones_vs_fsmd_on_workloads(benchmark, save_report):
    candidates = [w for w in WORKLOADS if w.static_bounds]

    def run_all():
        rows = []
        for w in candidates:
            try:
                cones = compile_flow(w.source, flow="cones")
            except FlowError:
                continue
            fsmd = compile_flow(w.source, flow="c2verilog")
            cones_cost = cones.cost()
            fsmd_cost = fsmd.cost()
            fsmd_run = fsmd.run(args=w.args)
            rows.append([
                w.name,
                cones.netlist.op_count,
                f"{cones_cost.area_ge:.0f}",
                f"{cones_cost.critical_path_ns:.1f}",
                f"{fsmd_cost.area_ge:.0f}",
                fsmd_run.cycles,
                f"{cones_cost.area_ge / fsmd_cost.area_ge:.2f}x",
            ])
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert len(rows) >= 5
    text = format_table(
        ["workload", "cones ops", "cones area", "cones path(ns)",
         "fsmd area", "fsmd cycles", "area ratio"],
        rows,
        title="E6b: Cones vs C2Verilog FSMD on statically bounded workloads",
    )
    save_report("e6b_cones_workloads", text)
    ratios = [float(r[6][:-1]) for r in rows]
    assert max(ratios) > 3.0  # somewhere, flattening really hurts
