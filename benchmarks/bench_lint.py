"""E13 — linter throughput and agreement with the compilers.

The linter's value proposition is predicting a flow's rejection without
paying for the compile.  This benchmark measures both halves of that claim
over the full workload suite x every compilable flow:

* wall-time of ``lint()`` against the wall-time the matrix runner spent
  actually compiling and simulating each cell (the cost the pre-flight
  saves on rejected pairs), and
* exact agreement — clean => the runner's verdict is ``ok``, errors =>
  ``rejected`` — which must be 100% for the pre-flight to be trustworthy.

The compile side comes from the shared ``suite_results`` sweep, so the
linter is validated against the same structured ``CellResult``s that
``repro sweep`` and the differential tests consume.
"""

import time

from repro.analysis.lint import lint
from repro.flows import COMPILABLE
from repro.report import format_table
from repro.runner import OK, REJECTED
from repro.workloads import WORKLOADS


def run_lint_suite(cells):
    rows = []
    total_lint_ms = 0.0
    total_compile_ms = 0.0
    agree = 0
    pairs = 0
    for w in WORKLOADS:
        start = time.perf_counter()
        report = lint(w.source, flows=list(COMPILABLE))
        lint_ms = (time.perf_counter() - start) * 1000.0
        total_lint_ms += lint_ms

        rejected_by_lint = 0
        rejected_by_compile = 0
        matched = 0
        compile_ms = 0.0
        for key in COMPILABLE:
            pairs += 1
            cell = cells[(w.name, key)]
            compile_ms += cell.wall_s * 1000.0
            clean = report.is_clean(key)
            rejected_by_lint += 0 if clean else 1
            rejected_by_compile += 1 if cell.verdict == REJECTED else 0
            if clean == (cell.verdict == OK):
                matched += 1
                agree += 1
        total_compile_ms += compile_ms

        rows.append([
            w.name, w.category,
            rejected_by_lint, rejected_by_compile,
            f"{matched}/{len(COMPILABLE)}",
            f"{lint_ms:.1f}", f"{compile_ms:.1f}",
            f"{compile_ms / max(lint_ms, 1e-9):.1f}x",
        ])
    summary = (pairs, agree, total_lint_ms, total_compile_ms)
    return rows, summary


def test_lint_throughput(benchmark, save_report, suite_results):
    cells = {(r.workload, r.flow): r for r in suite_results}
    rows, (pairs, agree, lint_ms, compile_ms) = benchmark.pedantic(
        run_lint_suite, args=(cells,), rounds=1, iterations=1
    )
    text = format_table(
        ["workload", "category", "lint rejects", "compile rejects",
         "agree", "lint ms", "compile ms", "speedup"],
        rows,
        title="E13: lint pre-flight vs full compile"
              f" ({agree}/{pairs} verdicts agree,"
              f" {lint_ms:.0f} ms lint vs {compile_ms:.0f} ms compile)",
    )
    save_report("e13_lint", text)
    assert agree == pairs  # the pre-flight never disagrees with a compiler
    assert lint_ms < compile_ms  # and it is cheaper than compiling everything
