"""E13 — linter throughput and agreement with the compilers.

The linter's value proposition is predicting a flow's rejection without
paying for the compile.  This benchmark measures both halves of that claim
over the full workload suite x every compilable flow:

* wall-time of ``lint()`` against wall-time of actually attempting the
  compile (the cost the pre-flight saves on rejected pairs), and
* exact agreement — clean => compiles, errors => rejected — which must be
  100% for the pre-flight to be trustworthy.
"""

import time

from repro.analysis.lint import lint
from repro.flows import COMPILABLE, FlowError, REGISTRY, UnsupportedFeature
from repro.report import format_table
from repro.workloads import WORKLOADS


def run_lint_suite():
    rows = []
    total_lint_ms = 0.0
    total_compile_ms = 0.0
    agree = 0
    pairs = 0
    for w in WORKLOADS:
        start = time.perf_counter()
        report = lint(w.source, flows=list(COMPILABLE))
        lint_ms = (time.perf_counter() - start) * 1000.0
        total_lint_ms += lint_ms

        rejected_by_lint = 0
        rejected_by_compile = 0
        matched = 0
        start = time.perf_counter()
        for key in COMPILABLE:
            pairs += 1
            clean = report.is_clean(key)
            try:
                REGISTRY[key].compile_source(w.source)
                compiled = True
            except (UnsupportedFeature, FlowError):
                compiled = False
            rejected_by_lint += 0 if clean else 1
            rejected_by_compile += 0 if compiled else 1
            if clean == compiled:
                matched += 1
                agree += 1
        compile_ms = (time.perf_counter() - start) * 1000.0
        total_compile_ms += compile_ms

        rows.append([
            w.name, w.category,
            rejected_by_lint, rejected_by_compile,
            f"{matched}/{len(COMPILABLE)}",
            f"{lint_ms:.1f}", f"{compile_ms:.1f}",
            f"{compile_ms / max(lint_ms, 1e-9):.1f}x",
        ])
    summary = (pairs, agree, total_lint_ms, total_compile_ms)
    return rows, summary


def test_lint_throughput(benchmark, save_report):
    rows, (pairs, agree, lint_ms, compile_ms) = benchmark.pedantic(
        run_lint_suite, rounds=1, iterations=1
    )
    text = format_table(
        ["workload", "category", "lint rejects", "compile rejects",
         "agree", "lint ms", "compile ms", "speedup"],
        rows,
        title="E13: lint pre-flight vs full compile"
              f" ({agree}/{pairs} verdicts agree,"
              f" {lint_ms:.0f} ms lint vs {compile_ms:.0f} ms compile)",
    )
    save_report("e13_lint", text)
    assert agree == pairs  # the pre-flight never disagrees with a compiler
    assert lint_ms < compile_ms  # and it is cheaper than compiling everything
