"""E21 — coverage-guided sharded fuzzing vs the fixed-profile baseline.

Two claims from the campaign-engine redesign, measured:

* **Guidance pays.** At an equal per-flow seed budget, the
  coverage-guided scheduler (novelty-scored seed pool, power scheduling,
  minted child seeds) opens at least 1.5x as many distinct coverage
  buckets as the classic fixed-profile sweep it replaced.  The baseline
  is reconstructed here exactly as ``_fixed_pass`` generates it, with
  coverage measured externally so both sides share one bucket currency.
* **Sharding is free determinism, and parallel speedup where the host
  has cores.** A 4-shard campaign covers the same seed space as the
  single-shard run, its per-shard corpus deltas merge byte-identically
  regardless of merge order, and on a >=4-core host the sharded run
  sustains at least 3x the single-shard cell throughput.  On smaller
  hosts the throughput ratio is still recorded, just not asserted.
"""

import os

from repro.fuzz import (
    CoverageMap,
    FuzzOptions,
    cell_signals,
    feature_mask,
    generate_program,
    merge_corpus_dirs,
    mutants,
    promote,
    run_campaign,
)
from repro.report import format_table
from repro.runner import MatrixEngine
from repro.runner.cells import CellTask

GUIDANCE_FLOWS = ("cyber", "cash")
SEEDS = 40                 # per flow, both arms
MIN_COVERAGE_RATIO = 1.5   # guided distinct buckets / fixed distinct buckets
SHARDS = 4
MIN_SHARD_SPEEDUP = 3.0    # asserted only when the host has >= SHARDS cores


def _fixed_baseline(tmp_path):
    """The pre-redesign campaign body: fixed profiles, fixed mutant
    count, no feedback — with coverage measured on the side."""
    engine = MatrixEngine(jobs=1, cache=None, trace=True, coverage=True)
    coverage = CoverageMap()
    cells = 0
    for flow in GUIDANCE_FLOWS:
        mask = feature_mask(flow)
        for seed in range(SEEDS):
            program = generate_program(seed, mask, boundary=(seed % 4 == 3))
            tasks = [CellTask(
                workload=f"fixed-{flow}-{seed}",
                source=program.source, flow=flow,
            )]
            for mutant in mutants(program.source, seed=seed, count=1,
                                  mask=mask):
                tasks.append(CellTask(
                    workload=f"fixed-{flow}-{seed}-{mutant.name}",
                    source=mutant.source, flow=flow,
                ))
            for result in engine.run_cells(tasks):
                coverage.add(cell_signals(result))
                cells += 1
    return coverage, cells


def _guided_run(tmp_path):
    return run_campaign(FuzzOptions(
        flows=GUIDANCE_FLOWS, seeds=SEEDS, reduce=False, mutations=1,
        corpus_dir=str(tmp_path / "guided-corpus"), coverage=True,
    ))


def test_guided_coverage_beats_fixed(benchmark, save_report, save_bench,
                                     tmp_path):
    fixed_cov, fixed_cells = _fixed_baseline(tmp_path)
    report = benchmark.pedantic(
        _guided_run, args=(tmp_path,), rounds=1, iterations=1
    )
    guided = report.coverage.distinct()
    fixed = fixed_cov.distinct()
    ratio = guided / max(1, fixed)

    rows = [
        ["fixed", fixed_cells, fixed, f"{fixed / fixed_cells:.2f}"],
        ["guided", report.cells_run, guided,
         f"{guided / report.cells_run:.2f}"],
    ]
    text = format_table(
        ["arm", "cells", "distinct buckets", "buckets/cell"],
        rows,
        title=f"E21a: coverage yield at {SEEDS} seeds x "
              f"{len(GUIDANCE_FLOWS)} flows (guided/fixed = {ratio:.2f}x)",
    )
    save_report("e21a_fuzz_coverage", text)
    save_bench("e21a_fuzz_coverage", {
        "fixed_cells": fixed_cells,
        "fixed_distinct": fixed,
        "guided_cells": report.cells_run,
        "guided_distinct": guided,
        "ratio": round(ratio, 3),
        "guided_growth": report.coverage_growth,
    }, config={"flows": list(GUIDANCE_FLOWS), "seeds": SEEDS})

    assert ratio >= MIN_COVERAGE_RATIO, (
        f"guided coverage ratio {ratio:.2f}x below {MIN_COVERAGE_RATIO}x"
    )
    # Guidance never trades correctness signal away: the guided run still
    # walks every boundary probe into a predicted rejection.
    for flow, stats in report.stats.items():
        assert stats.expected_rejections == stats.boundary_seeds


def _campaign_options(tmp_path, tag, **overrides):
    base = dict(
        flows=("cash",), seeds=SEEDS, reduce=False, mutations=1,
        corpus_dir=str(tmp_path / f"{tag}-corpus"), coverage=True,
    )
    base.update(overrides)
    return FuzzOptions.make(**base)


def test_sharded_throughput_and_merge(benchmark, save_report, save_bench,
                                      tmp_path):
    single = run_campaign(_campaign_options(tmp_path, "single"))
    sharded = benchmark.pedantic(
        run_campaign,
        args=(_campaign_options(tmp_path, "sharded", shards=SHARDS),),
        rounds=1, iterations=1,
    )

    single_rate = single.cells_run / max(1e-9, single.elapsed_s)
    sharded_rate = sharded.cells_run / max(1e-9, sharded.elapsed_s)
    speedup = sharded_rate / max(1e-9, single_rate)
    cores = os.cpu_count() or 1

    # Same seed space either way, covered exactly once.
    assert sharded.stats["cash"].seeds == single.stats["cash"].seeds
    assert len(sharded.shard_reports) == SHARDS

    # Per-shard corpus deltas merge byte-identically in any order.
    deltas = []
    for index in range(SHARDS):
        options = _campaign_options(
            tmp_path, f"slice{index}", shards=SHARDS, shard_index=index,
            shard_dir=str(tmp_path / f"delta{index}"),
        )
        slice_report = run_campaign(options)
        promote(slice_report, options.promote_path,
                only=set(slice_report.new_signatures))
        deltas.append(options.promote_path)

    def corpus_bytes(root):
        return {
            p.relative_to(root).as_posix(): p.read_bytes()
            for p in sorted(root.glob("*/*.json"))
        }

    forward, backward = tmp_path / "merge-fwd", tmp_path / "merge-bwd"
    merge_corpus_dirs(deltas, forward)
    merge_corpus_dirs(list(reversed(deltas)), backward)
    merged = corpus_bytes(forward)
    assert merged == corpus_bytes(backward), (
        "merged corpus depends on shard merge order"
    )
    assert merged, "expected cash divergences to land in the deltas"

    rows = [
        ["single", 1, single.cells_run, f"{single.elapsed_s:.2f}",
         f"{single_rate:.1f}"],
        ["sharded", SHARDS, sharded.cells_run, f"{sharded.elapsed_s:.2f}",
         f"{sharded_rate:.1f}"],
    ]
    text = format_table(
        ["arm", "shards", "cells", "elapsed s", "cells/s"],
        rows,
        title=f"E21b: shard throughput on {cores} core(s) "
              f"(speedup {speedup:.2f}x, merged {len(merged)} entries)",
    )
    save_report("e21b_fuzz_shards", text)
    save_bench("e21b_fuzz_shards", {
        "cores": cores,
        "single_cells_per_s": round(single_rate, 2),
        "sharded_cells_per_s": round(sharded_rate, 2),
        "speedup": round(speedup, 3),
        "merged_entries": len(merged),
    }, config={"flows": ["cash"], "seeds": SEEDS, "shards": SHARDS})

    if cores >= SHARDS:
        assert speedup >= MIN_SHARD_SPEEDUP, (
            f"{SHARDS}-shard speedup {speedup:.2f}x below "
            f"{MIN_SHARD_SPEEDUP}x on a {cores}-core host"
        )
