"""E14 — differential fuzzing yield: divergences per 1000 seeds per flow.

A fixed-seed campaign (the same seed range every run, so the numbers are
reproducible) sweeps every compilable flow with the generative frontend
plus the metamorphic layer, and counts raw divergences before coarse
deduplication.  The shape assertions pin the subsystem's current truth:

* the three known divergence families (Cash and Cones pruning
  unreferenced globals from their observable surface, Handel-C
  sign-extending unsigned sub-32-bit registers) keep firing;
* no flow outside those families diverges — a fourth family appearing
  here means either a new flow bug or a fuzzer regression, and the
  nightly campaign will have flagged it as a NEW signature first;
* every boundary probe is rejected and lint-predicted (Table 1's
  restrictions, exercised generatively instead of by hand).
"""

from repro.fuzz import FuzzOptions, run_campaign
from repro.report import format_table

SEEDS = 100        # per flow; raw rates below are scaled to per-1000
KNOWN_DIVERGENT = {"cash", "cones", "handelc"}


def run_fuzz_campaign(tmp_path):
    options = FuzzOptions(
        seeds=SEEDS, jobs=4, reduce=False, mutations=2,
        corpus_dir=str(tmp_path / "empty-corpus"), coverage=False,
    )
    return run_campaign(options)


def test_fuzz_yield(benchmark, save_report, tmp_path):
    report = benchmark.pedantic(
        run_fuzz_campaign, args=(tmp_path,), rounds=1, iterations=1
    )
    rows = []
    for flow in sorted(report.stats):
        s = report.stats[flow]
        per_1k = s.divergences * 1000.0 / max(1, s.seeds)
        rows.append([
            flow, s.seeds, s.boundary_seeds, s.mutants,
            s.ok, s.expected_rejections, s.divergences, f"{per_1k:.0f}",
        ])
    distinct = {d.signature().coarse for d in report.divergences}
    text = format_table(
        ["flow", "seeds", "boundary", "mutants", "ok",
         "expected rej", "raw div", "div/1k seeds"],
        rows,
        title="E14: differential fuzz yield"
              f" ({report.cells_run} cells,"
              f" {len(distinct)} distinct coarse signatures,"
              f" {report.elapsed_s:.1f}s)",
    )
    save_report("e14_fuzz", text)

    # Shape: divergences only in the three triaged families.
    divergent_flows = {flow for flow, s in report.stats.items()
                       if s.divergences}
    assert divergent_flows <= KNOWN_DIVERGENT
    # Every boundary probe was rejected, and the linter predicted it.
    for flow, s in report.stats.items():
        assert s.expected_rejections == s.boundary_seeds, (
            f"{flow}: {s.boundary_seeds} boundary probes but only "
            f"{s.expected_rejections} predicted rejections"
        )
