"""E10 — the price and payoff of pointer analysis.

Paper claim: C's pointer semantics "demands compilers with aggressive
optimization to perform costly pointer analysis", and C2Verilog's breadth
("it can translate pointers, recursion, ...") is what made it
comprehensive.

Regenerated table: pointer-rich kernels compiled with the Andersen
analysis enabled and disabled —

* analysis ON: points-to sets resolve most pointers to single arrays, so
  dereferences hit small private memories;
* analysis OFF: every address-taken object collapses into the unified
  memory, and every access serializes through its one port.

Columns report the analysis's own cost (constraints, iterations) next to
what it buys (cycles, memories).
"""

import time

import pytest

from repro.analysis.pointer import plan_pointers
from repro.flows import compile_flow
from repro.ir.passes import inline_program
from repro.lang import parse
from repro.report import format_table
from repro.workloads import get

KERNELS = {
    "ptr_sum": get("ptr_sum").source,
    "ptr_swap": get("ptr_swap").source,
    "two_walkers": """
int evens[16] = {2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 32};
int odds[16] = {1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25, 27, 29, 31};
int main() {
    int *p = &evens[0];
    int *q = &odds[0];
    int s = 0;
    for (int i = 0; i < 16; i++) {
        s += *p + *q;   // two independent read streams
        p = p + 1;
        q = q + 1;
    }
    return s;
}
""",
    "aliased": """
int a[8];
int b[8];
int main(int w) {
    int *p = w > 0 ? &a[0] : &b[0];
    for (int i = 0; i < 8; i++) {
        *(p + i) = i * 5;
    }
    return a[7] + b[7];
}
""",
}

ARGS = {"ptr_sum": (), "ptr_swap": (42, 7, 19), "two_walkers": (), "aliased": (1,)}


def run_all():
    rows = []
    for name, source in KERNELS.items():
        args = ARGS[name]
        program, info = parse(source)
        inlined, _ = inline_program(program, info)
        started = time.perf_counter()
        plan = plan_pointers(inlined.function("main"))
        analysis_us = (time.perf_counter() - started) * 1e6

        # A generous ALU datapath so the *memory ports* are the binding
        # constraint — the axis this experiment isolates.
        from repro.scheduling import ResourceSet

        datapath = ResourceSet(alu=6, multiplier=2, shifter=2, divider=1)
        analyzed = compile_flow(source, flow="c2verilog",
                                pointer_analysis=True, resources=datapath)
        naive = compile_flow(source, flow="c2verilog",
                             pointer_analysis=False, resources=datapath)
        analyzed_run = analyzed.run(args=args)
        naive_run = naive.run(args=args)
        assert analyzed_run.value == naive_run.value
        rows.append([
            name, plan.mode,
            plan.stats.pointer_count, plan.stats.constraint_count,
            plan.stats.iterations, f"{analysis_us:.0f}",
            plan.stats.resolved_count,
            analyzed_run.cycles, naive_run.cycles,
            f"{naive_run.cycles / max(analyzed_run.cycles, 1):.2f}x",
        ])
    return rows


def test_pointer_analysis(benchmark, save_report):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = format_table(
        ["kernel", "mode", "#ptrs", "#constraints", "iters", "cost(us)",
         "resolved", "cycles (analyzed)", "cycles (naive)", "payoff"],
        rows,
        title="E10: Andersen pointer analysis — cost and cycle payoff",
    )
    save_report("e10_pointers", text)
    payoffs = {r[0]: float(r[9][:-1]) for r in rows}
    # Resolvable pointers buy real cycles back...
    assert payoffs["two_walkers"] > 1.1
    assert payoffs["ptr_sum"] >= 1.0
    # ...while genuinely aliased pointers stay in the unified memory
    # whether or not we analyze (the analysis is honest about its limits).
    modes = {r[0]: r[1] for r in rows}
    assert modes["aliased"] in ("unified", "mixed")
    assert modes["two_walkers"] == "resolved"
