"""E8 — C's flat memory model vs hardware's many small memories.

Paper claim: "C's memory model is an undifferentiated array of bytes, yet
many small, varied memories are most effective in hardware."

Regenerated table: memory-bound kernels synthesized twice — once with each
array in its own single-ported RAM (partitioned), once with everything laid
out in one unified RAM (C's model, faithfully).  The cycle-count ratio is
the cost of taking C's memory semantics literally; it grows with the
number of arrays a loop touches per iteration.
"""

import pytest

from repro.analysis import compare_memory_models
from repro.report import format_table

KERNELS = {
    "stream2": """
int a[32];
int b[32];
int main() {
    for (int i = 0; i < 32; i++) { b[i] = a[i] * 3 + 1; }
    return b[31];
}
""",
    "stream3": """
int a[24];
int b[24];
int c[24];
int main() {
    for (int i = 0; i < 24; i++) { c[i] = a[i] * b[i] + a[i]; }
    return c[23];
}
""",
    "stream4": """
int a[16];
int b[16];
int c[16];
int d[16];
int main() {
    for (int i = 0; i < 16; i++) { d[i] = (a[i] + b[i]) * (c[i] + 1); }
    return d[15];
}
""",
    "gather": """
int index[16] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};
int table[16] = {10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25};
int out[16];
int main() {
    for (int i = 0; i < 16; i++) { out[i] = table[index[i] & 15]; }
    return out[15];
}
""",
    "single": """
int a[32];
int main() {
    int s = 0;
    for (int i = 0; i < 32; i++) { a[i] = i; s += a[i]; }
    return s;
}
""",
}


def run_all():
    results = []
    for name, source in KERNELS.items():
        comparison = compare_memory_models(source)
        results.append((name, comparison))
    return results


def test_memory_models(benchmark, save_report):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [name, c.partitioned_memories, c.monolithic_words,
         c.partitioned_cycles, c.monolithic_cycles, f"{c.slowdown:.2f}x"]
        for name, c in results
    ]
    text = format_table(
        ["kernel", "#memories", "unified words", "partitioned cyc",
         "monolithic cyc", "slowdown"],
        rows,
        title="E8: partitioned per-array memories vs C's unified memory",
    )
    save_report("e8_memory_model", text)
    by_name = dict(results)
    # More arrays touched per iteration -> worse serialization.
    assert by_name["stream4"].slowdown >= by_name["stream2"].slowdown
    assert by_name["stream3"].slowdown > 1.1
    assert by_name["stream4"].slowdown > 1.2
    # A single array has little to lose: the flat model is nearly free.
    assert by_name["single"].slowdown < by_name["stream4"].slowdown
