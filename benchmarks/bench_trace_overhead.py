"""E16 — tracing overhead: off must be free, on must be cheap.

The trace subsystem's contract (docs/observability.md) is that an
untraced synthesis pays only the guarded no-op path: one ``ensure_trace``
per entry point plus one shared :data:`~repro.trace.NO_TRACE` call per
instrumentation point — no span objects, no string formatting, no
allocation.  This experiment pins both sides of that contract:

* **disabled** — the no-op path is microbenchmarked directly (a timing
  diff between two identical pipelines would drown a sub-percent effect
  in scheduler noise); its measured per-call cost times the number of
  instrumentation points a traced run of the same program records must
  stay under ``OFF_BUDGET`` of the untraced pipeline's wall time;
* **enabled** — a fully traced synthesize+run+cost+emit, min-over-reps
  against the untraced equivalent, must stay under ``ON_BUDGET``.

The quick variant is the CI configuration; its table is uploaded as the
``e16_trace_overhead_quick`` artifact by the bench-trace-overhead job.
"""

import time

from repro.api import SynthesisOptions, synthesize
from repro.report import format_table
from repro.trace import NO_TRACE, ensure_trace

OFF_BUDGET = 0.03    # disabled instrumentation: <3% of pipeline wall time
ON_BUDGET = 0.15     # full tracing: <15% end-to-end

KERNEL = """
int main(int n) {
    int i;
    int acc = 1;
    for (i = 0; i < n; i = i + 1) {
        acc = (acc + i * i + (acc >> 3)) % 9973;
    }
    return acc;
}
"""

FLOW = "c2verilog"


def _pipeline(trace: bool, n: int) -> None:
    result = synthesize(KERNEL, SynthesisOptions(flow=FLOW, trace=trace))
    result.run(args=(n,))
    result.cost()
    result.verilog()


def _timed(fn, reps: int) -> float:
    """Minimum wall time over ``reps`` calls — the standard noise filter."""
    best = None
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best_candidate = time.perf_counter() - start
        best = best_candidate if best is None else min(best, best_candidate)
    return best


def _null_path_cost_s(calls: int = 200_000) -> float:
    """Per-instrumentation-point cost of the disabled path: an
    ``ensure_trace(None)`` resolve, a guarded ``enabled`` check, one
    shared no-op span, and a no-op counter call."""
    span = NO_TRACE.span
    count = NO_TRACE.count
    start = time.perf_counter()
    for _ in range(calls):
        t = ensure_trace(None)
        if t.enabled:
            count(ops=1)
        with span("x", cat="phase"):
            pass
    return (time.perf_counter() - start) / calls


def _instrumentation_points(n: int) -> int:
    """How many guarded call sites one traced run of the kernel visits;
    measured, not guessed, so the disabled-path bound tracks the real
    pipeline as instrumentation is added."""
    result = synthesize(KERNEL, SynthesisOptions(flow=FLOW, trace=True))
    result.run(args=(n,))
    result.cost()
    result.verilog()
    spans = result.trace.span_count()
    counters = sum(1 for _, s in result.trace.spans() if s.args)
    # Each span is at least one guarded site; counters are separate calls.
    return spans + counters


def _measure(n: int, reps: int):
    untraced_s = _timed(lambda: _pipeline(False, n), reps)
    traced_s = _timed(lambda: _pipeline(True, n), reps)
    null_call_s = _null_path_cost_s()
    points = _instrumentation_points(n)
    off_overhead = (null_call_s * points) / untraced_s
    on_overhead = traced_s / untraced_s - 1.0
    rows = [
        ["untraced pipeline", f"{untraced_s * 1e3:.2f} ms", "-"],
        ["traced pipeline", f"{traced_s * 1e3:.2f} ms",
         f"{max(on_overhead, 0.0) * 100:.1f}%"],
        ["null path / call", f"{null_call_s * 1e9:.0f} ns",
         f"x{points} sites"],
        ["disabled instrumentation", f"{null_call_s * points * 1e6:.1f} us",
         f"{off_overhead * 100:.3f}%"],
    ]
    return rows, off_overhead, on_overhead


def _check_and_render(rows, off_overhead, on_overhead, title):
    text = format_table(["measurement", "time", "overhead"], rows, title=title)
    assert off_overhead < OFF_BUDGET, (
        f"disabled tracing costs {off_overhead * 100:.2f}% of the pipeline "
        f"(budget {OFF_BUDGET * 100:.0f}%)"
    )
    assert on_overhead < ON_BUDGET, (
        f"enabled tracing costs {on_overhead * 100:.1f}% end-to-end "
        f"(budget {ON_BUDGET * 100:.0f}%)"
    )
    return text


def test_trace_overhead(benchmark, save_report):
    rows, off, on = benchmark.pedantic(
        _measure, args=(20_000, 5), rounds=1, iterations=1
    )
    text = _check_and_render(
        rows, off, on,
        f"E16: tracing overhead (n=20000, budgets "
        f"{OFF_BUDGET * 100:.0f}% off / {ON_BUDGET * 100:.0f}% on)",
    )
    save_report("e16_trace_overhead", text)


def test_trace_overhead_quick(benchmark, save_report):
    """CI-sized variant: shorter kernel, fewer reps, same budgets."""
    rows, off, on = benchmark.pedantic(
        _measure, args=(4_000, 3), rounds=1, iterations=1
    )
    text = _check_and_render(
        rows, off, on,
        f"E16 (quick): tracing overhead (n=4000, budgets "
        f"{OFF_BUDGET * 100:.0f}% off / {ON_BUDGET * 100:.0f}% on)",
    )
    save_report("e16_trace_overhead_quick", text)
