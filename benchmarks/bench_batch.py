"""E18 — batched lockstep engine throughput over the scalar backends.

The batched engine (:mod:`repro.sim.batched`) amortizes one closure
specialization across N lockstep lanes; its payoff is *campaign*
throughput, where thousands of tiny simulations share one compiled
design.  This experiment pins two things:

* **bit identity first** — every timed batch is compared lane-for-lane
  (value, cycles, globals, error text) against the scalar compiled
  backend before its timing enters the table; a speedup obtained by
  diverging is a bug, not a result;
* **the floor** — a fuzz campaign at 256 input lanes per program must
  run at least 10x more cells per second batched than compiled (the
  acceptance criterion for the subsystem), and at least 3x in the
  CI-sized quick configuration at 64 lanes.

The kernel table shows how the per-lane win scales with the batch
width N ∈ {1, 16, 256}: a batch of one is pure overhead accounting,
and wide batches approach the vectorized steady state.
"""

import time

from repro.flows import compile_flow
from repro.fuzz import CampaignConfig, run_campaign
from repro.lang import InterpError
from repro.report import format_table
from repro.sim import HAVE_NUMPY

BATCH_WIDTHS = (1, 16, 256)
CAMPAIGN_LANES = 256
CAMPAIGN_FLOOR = 10.0      # the subsystem's acceptance criterion
QUICK_LANES = 64
QUICK_FLOOR = 3.0

# A short, branchy kernel with memory traffic — the fuzz-campaign
# regime, where scalar runs are dominated by per-run fixed costs.
KERNEL = """
int tab[16] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};
int main(int n, int k) {
    int i;
    int acc = 0;
    for (i = 0; i < n; i = i + 1) {
        if ((i + k) % 3 == 0) {
            acc = acc + tab[(i + k) & 15];
        } else {
            acc = acc - (tab[i & 15] >> 1);
        }
        tab[(i * k) & 15] = acc & 1023;
    }
    return acc;
}
"""


def _lane_args(width):
    return [((lane % 37) + 3, (lane % 11) + 1) for lane in range(width)]


def _scalar_outcome(design, args):
    try:
        r = design.run(args=args, sim_backend="compiled")
        return (r.value, r.cycles, sorted(r.globals.items()))
    except InterpError as failure:
        return (type(failure).__name__, str(failure))


def _batch_outcome(lane):
    if not lane.ok:
        return (lane.error_kind, lane.error)
    r = lane.result
    return (r.value, r.cycles, sorted(r.globals.items()))


def _kernel_row(design, width):
    arg_sets = _lane_args(width)
    # Warm both paths once so neither pays one-time specialization.
    design.run(args=arg_sets[0], sim_backend="compiled")
    design.run_batch(arg_sets[:1], sim_backend="batched")

    start = time.perf_counter()
    scalar = [_scalar_outcome(design, args) for args in arg_sets]
    scalar_s = time.perf_counter() - start

    start = time.perf_counter()
    lanes = design.run_batch(arg_sets, sim_backend="batched")
    batch_s = time.perf_counter() - start

    for i, (lane, reference) in enumerate(zip(lanes, scalar)):
        assert _batch_outcome(lane) == reference, (
            f"N={width} lane {i}: batched diverged from compiled"
        )
    speedup = scalar_s / batch_s if batch_s > 0 else float("inf")
    return [
        width, f"{scalar_s * 1e3:.2f}", f"{batch_s * 1e3:.2f}",
        f"{width / scalar_s:.0f}", f"{width / batch_s:.0f}",
        f"{speedup:.1f}x",
    ], speedup


def _kernel_table():
    design = compile_flow(KERNEL, flow="c2verilog")
    rows = []
    speedups = {}
    for width in BATCH_WIDTHS:
        row, speedup = _kernel_row(design, width)
        rows.append(row)
        speedups[width] = speedup
    return rows, speedups


def _campaign_throughput(tmp_path, backend, lanes):
    config = CampaignConfig(
        flows=["c2verilog"], seeds=8, jobs=1, reduce=False, mutations=1,
        corpus_dir=tmp_path / f"corpus-{backend}-{lanes}",
        sim_backend=backend, input_lanes=lanes,
    )
    report = run_campaign(config)
    assert not report.divergences, (
        f"campaign under {backend} found divergences — backend bug"
    )
    return report.cells_run, report.cells_run / report.elapsed_s


def _render(rows, title):
    return format_table(
        ["lanes", "compiled ms", "batched ms", "compiled runs/s",
         "batched runs/s", "speedup"],
        rows,
        title=title,
    )


def test_batch_campaign_speedup(benchmark, save_report, tmp_path):
    """Full E18: the 10x acceptance floor at 256 input lanes."""
    rows, kernel_speedups = _kernel_table()

    def _campaigns():
        cells, compiled_cps = _campaign_throughput(
            tmp_path, "compiled", CAMPAIGN_LANES)
        _, batched_cps = _campaign_throughput(
            tmp_path, "batched", CAMPAIGN_LANES)
        return cells, compiled_cps, batched_cps

    cells, compiled_cps, batched_cps = benchmark.pedantic(
        _campaigns, rounds=1, iterations=1)
    campaign_speedup = batched_cps / compiled_cps
    text = _render(
        rows,
        f"E18: batched lockstep engine (numpy={'yes' if HAVE_NUMPY else 'no'};"
        f" campaign {cells} cells at {CAMPAIGN_LANES} lanes:"
        f" {compiled_cps:.0f} -> {batched_cps:.0f} cells/s,"
        f" {campaign_speedup:.1f}x, floor {CAMPAIGN_FLOOR:.0f}x)",
    )
    save_report("e18_batch", text)
    assert campaign_speedup >= CAMPAIGN_FLOOR, (
        f"campaign speedup {campaign_speedup:.2f}x is below the "
        f"{CAMPAIGN_FLOOR:.0f}x acceptance floor"
    )
    # The kernel table is the scaling picture, not the acceptance floor:
    # these lanes run long enough to amortize scalar fixed costs, so the
    # win is structurally smaller than in the tiny-program campaign.
    assert kernel_speedups[max(BATCH_WIDTHS)] >= 2.0


def test_batch_campaign_speedup_quick(benchmark, save_report, tmp_path):
    """CI-sized variant: 64 lanes, a 3x floor.  Uploaded as the PR
    artifact by the bench-batch workflow job."""
    rows, kernel_speedups = _kernel_table()

    def _campaigns():
        cells, compiled_cps = _campaign_throughput(
            tmp_path, "compiled", QUICK_LANES)
        _, batched_cps = _campaign_throughput(
            tmp_path, "batched", QUICK_LANES)
        return cells, compiled_cps, batched_cps

    cells, compiled_cps, batched_cps = benchmark.pedantic(
        _campaigns, rounds=1, iterations=1)
    campaign_speedup = batched_cps / compiled_cps
    text = _render(
        rows,
        f"E18 (quick): batched lockstep engine"
        f" (numpy={'yes' if HAVE_NUMPY else 'no'};"
        f" campaign {cells} cells at {QUICK_LANES} lanes:"
        f" {compiled_cps:.0f} -> {batched_cps:.0f} cells/s,"
        f" {campaign_speedup:.1f}x, floor {QUICK_FLOOR:.0f}x)",
    )
    save_report("e18_batch_quick", text)
    assert campaign_speedup >= QUICK_FLOOR, (
        f"campaign speedup {campaign_speedup:.2f}x is below the "
        f"{QUICK_FLOOR:.0f}x quick floor"
    )
