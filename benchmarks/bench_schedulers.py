"""E9 — scheduler ablation: ASAP vs force-directed vs resource-constrained
list scheduling.

DESIGN.md calls scheduling "pluggable" as a deliberate design decision;
this ablation justifies it with the classic results:

* ASAP minimizes latency but needs peak-parallelism hardware;
* force-directed scheduling meets the same latency with flatter
  functional-unit usage (Paulin & Knight's claim);
* list scheduling under explicit resource limits trades latency for area;
* the latency/resource curve saturates — beyond a few units, more hardware
  buys nothing (the block's dependences bound the win).
"""

import pytest

from repro.ir import build_function
from repro.ir.passes import inline_program, optimize
from repro.lang import parse
from repro.report import format_table
from repro.scheduling import (
    ResourceSet,
    force_directed_schedule,
    list_schedule_block,
    peak_usage,
    unit_asap,
)
from repro.workloads import dataflow_source

# Wide synthetic dataflow blocks: enough parallelism for the knobs to bite.
SEEDS = (11, 23, 47)


def blocks():
    out = []
    for seed in SEEDS:
        source = dataflow_source(seed, statements=16, depth=4)
        program, info = parse(source)
        inlined, _ = inline_program(program, info)
        cdfg = build_function(inlined.function("main"), info)
        optimize(cdfg)
        out.append((seed, max(cdfg.reachable_blocks(), key=lambda b: len(b.ops))))
    return out


def ablate():
    rows = []
    fds_never_worse = True
    for seed, block in blocks():
        asap = unit_asap(block)
        fds = force_directed_schedule(block, length=asap.n_steps)
        asap_peak = peak_usage(asap)
        fds_peak = peak_usage(fds)
        total_asap = sum(asap_peak.values())
        total_fds = sum(fds_peak.values())
        if total_fds > total_asap:
            fds_never_worse = False
        for name, resources in (
            ("1 of each", ResourceSet.minimal()),
            ("typical", ResourceSet.typical()),
            ("unlimited", ResourceSet.unlimited()),
        ):
            listed = list_schedule_block(block, resources, clock_ns=5.0)
            rows.append([
                f"seed{seed}", len(block.ops), f"list/{name}", listed.n_steps,
                "-",
            ])
        rows.append([
            f"seed{seed}", len(block.ops), "asap (unit)", asap.n_steps,
            total_asap,
        ])
        rows.append([
            f"seed{seed}", len(block.ops), "force-directed", fds.n_steps,
            total_fds,
        ])
    return rows, fds_never_worse


def test_scheduler_ablation(benchmark, save_report):
    rows, fds_never_worse = benchmark.pedantic(ablate, rounds=1, iterations=1)
    text = format_table(
        ["block", "ops", "scheduler", "steps", "peak FUs"],
        rows,
        title="E9: scheduler ablation on wide dataflow blocks",
    )
    save_report("e9_schedulers", text)
    assert fds_never_worse, "FDS must not need more FUs than ASAP at equal latency"
    # Resource limits must show the latency/area trade: minimal >= unlimited.
    by_block = {}
    for row in rows:
        by_block.setdefault(row[0], {})[row[2]] = row[3]
    for block, entry in by_block.items():
        assert entry["list/1 of each"] >= entry["list/unlimited"]


def test_resource_sweep_saturates(benchmark, save_report):
    source = dataflow_source(31, statements=18, depth=4)
    program, info = parse(source)
    inlined, _ = inline_program(program, info)
    cdfg = build_function(inlined.function("main"), info)
    optimize(cdfg)
    block = max(cdfg.reachable_blocks(), key=lambda b: len(b.ops))

    def sweep():
        rows = []
        for units in (1, 2, 3, 4, 6, 8):
            resources = ResourceSet(alu=units, shifter=units,
                                    multiplier=units, divider=1)
            schedule = list_schedule_block(block, resources, clock_ns=5.0)
            rows.append([units, schedule.n_steps])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["FUs per class", "steps"],
        rows,
        title="E9b: latency vs functional units (one dataflow block)",
    )
    save_report("e9b_resource_sweep", text)
    steps = [r[1] for r in rows]
    assert steps[0] >= steps[-1]
    # Saturation: the last doubling buys (almost) nothing.
    assert steps[-1] >= steps[-2] - 1
