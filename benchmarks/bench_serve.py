"""E20: the serving tier's dedup under a zipfian duplicate-heavy load.

The serving layer exists because real synthesis request streams are
duplicate-heavy: a few hot kernels hammered repeatedly (design-space
sweeps, CI re-runs, classroom submissions), with a long cold tail.  This
benchmark replays exactly that shape — a zipfian schedule over a small
distinct corpus — against two implementations of "answer N synthesis
requests":

* **server** — ``repro.serve`` with all three dedup tiers live (warm
  artifact cache, in-flight coalescing, bounded compile pool), driven
  over real sockets by the async load generator.
* **serial baseline** — the no-dedup strawman: every request compiles
  from scratch via :func:`execute_cell`, one after another, the way a
  shell loop around ``repro synthesize --no-cache`` would.

Acceptance (ISSUE 9): server throughput >= 5x the serial baseline, with
p50/p99 and hit/coalesce rates recorded in ``BENCH_serve.json``.
"""

import asyncio
import os
from time import perf_counter

from repro.report import format_table
from repro.runner import cell_key, environment_salt, execute_cell
from repro.runner.cells import CellTask
from repro.serve import (
    ServeConfig,
    ServeLimits,
    SynthesisServer,
    parse_synthesize,
    run_load,
    zipfian_schedule,
)

# Non-trivial kernels: each parses, schedules, binds, and simulates a
# few thousand FSMD cycles, so a cold compile costs real milliseconds —
# the regime the dedup tiers are built for.
SOURCES = [
    "int main() { int s = 0; for (int i = 0; i < 96; i = i + 1)"
    " { for (int j = 0; j < 8; j = j + 1) { s = s + i * j + %d; } }"
    " return s; }" % n
    for n in (1, 2, 3, 5)
]
FLOWS = ("handelc", "c2verilog")

DISTINCT = [
    {"source": source, "flow": flow, "args": []}
    for source in SOURCES
    for flow in FLOWS
]

N_REQUESTS = int(os.environ.get("REPRO_BENCH_SERVE_N", "240"))
CONCURRENCY = int(os.environ.get("REPRO_BENCH_SERVE_CONCURRENCY", "8"))
ZIPF_S = 1.2
BASELINE_PREFIX = min(32, N_REQUESTS)


def serial_no_dedup_rps(schedule):
    """Requests/sec of the strawman: compile every request, serially.

    Timed over a prefix of the same stream the server sees (the zipfian
    draw is deterministic, so both sides replay identical requests) and
    reported as a rate, which extrapolates to the full stream because
    the baseline by construction does the same work for every request."""
    limits = ServeLimits()
    salt = environment_salt()
    t0 = perf_counter()
    for body in schedule[:BASELINE_PREFIX]:
        request = parse_synthesize(body, limits)
        task = CellTask.from_options(
            "bench", request.source, request.options, args=request.args
        )
        result = execute_cell({
            "workload": task.workload,
            "source": task.source,
            "flow": task.flow,
            "function": task.function,
            "args": list(task.args),
            "options": [list(pair) for pair in task.options],
            "sim_backend": task.sim_backend,
            "check": task.check,
            "expected": None,
            "timeout_s": 20.0,
            "max_cycles": 2_000_000,
            "cache_key": cell_key(task, salt=salt),
            "trace": False,
        })
        assert result["verdict"] == "ok", result
    elapsed = perf_counter() - t0
    return BASELINE_PREFIX / elapsed


async def timed_server_run(schedule, cache_dir):
    config = ServeConfig(
        port=0, jobs=2, queue_limit=64, cache_dir=cache_dir,
        drain_grace_s=15.0,
    )
    server = SynthesisServer(config)
    await server.start()
    try:
        report = await run_load(
            server.host, server.port, schedule,
            concurrency=CONCURRENCY, client_id="bench",
        )
    finally:
        await server.drain()
    return report


def test_serve_zipfian_dedup_speedup(benchmark, save_report, save_bench,
                                     tmp_path):
    schedule = zipfian_schedule(DISTINCT, n=N_REQUESTS, s=ZIPF_S, seed=7)

    report = benchmark.pedantic(
        lambda: asyncio.run(
            timed_server_run(schedule, tmp_path / "serve-cache")
        ),
        rounds=1, iterations=1,
    )
    baseline_rps = serial_no_dedup_rps(schedule)
    speedup = report.rps / baseline_rps if baseline_rps else 0.0

    dedup = report.server_stats["dedup"]
    warm = dedup["hits"] + dedup["coalesced"]
    answered = warm + dedup["compiles"]

    rows = [
        ["server (3-tier dedup)", N_REQUESTS, f"{report.rps:.1f}",
         f"{report.percentile_ms(50):.2f}", f"{report.percentile_ms(99):.2f}",
         f"{warm / answered:.2%}"],
        ["serial no-dedup", BASELINE_PREFIX, f"{baseline_rps:.1f}",
         "-", "-", "0.00%"],
    ]
    text = format_table(
        ["mode", "requests", "req/s", "p50 ms", "p99 ms", "warm ratio"],
        rows,
        title=(
            f"E20: zipfian(s={ZIPF_S}) load, {len(DISTINCT)} distinct x "
            f"{N_REQUESTS} requests, {CONCURRENCY} clients — "
            f"{speedup:.1f}x over serial no-dedup"
        ),
    )
    save_report("e20_serve", text)
    save_bench(
        "serve",
        metrics={
            "rps": round(report.rps, 2),
            "p50_ms": round(report.percentile_ms(50), 3),
            "p99_ms": round(report.percentile_ms(99), 3),
            "baseline_rps": round(baseline_rps, 2),
            "speedup": round(speedup, 2),
            "hits": dedup["hits"],
            "coalesced": dedup["coalesced"],
            "compiles": dedup["compiles"],
            "warm_ratio": round(warm / answered, 4),
            "count_5xx": report.count_5xx(),
            "transport_errors": report.transport_errors,
        },
        config={
            "requests": N_REQUESTS,
            "distinct": len(DISTINCT),
            "zipf_s": ZIPF_S,
            "concurrency": CONCURRENCY,
            "baseline_requests": BASELINE_PREFIX,
            "flows": list(FLOWS),
        },
    )

    # Correctness of the run itself.
    assert report.transport_errors == 0
    assert report.count_5xx() == 0, report.status_counts
    assert answered == N_REQUESTS
    # Every distinct key compiles at most once; the zipfian tail may not
    # draw every key, so <= rather than ==.
    assert dedup["compiles"] <= len(DISTINCT)
    assert warm / answered > 0.5

    # The headline acceptance bar: dedup buys >= 5x over serial no-dedup.
    assert speedup >= 5.0, (
        f"server {report.rps:.1f} req/s vs baseline {baseline_rps:.1f} "
        f"req/s = {speedup:.2f}x (< 5x)"
    )
