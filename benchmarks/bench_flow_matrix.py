"""T2 — the cross-flow synthesis matrix: every workload through every flow.

This is the comparison the survey implies but never runs: the same
programs, one frontend, eleven language semantics.  For each accepting
(workload, flow) pair the table reports cycles, estimated clock, latency,
and area; rejections print the historical reason.  Functional equivalence
against the golden model is asserted for every cell.

The matrix runs three times through the ``repro sweep`` engine — serial
cold, parallel cold, and cache-warm — and the per-mode wall times are
recorded alongside the table.  The three runs must agree cell for cell
(``CellResult.identity()``); the timings are reported, not asserted,
because CI hosts may expose a single core.
"""

import time

from repro.flows import COMPILABLE
from repro.report import format_cell_results, format_table, summarize_cells
from repro.runner import OK, REJECTED, suite_tasks


def _timed(engine, tasks):
    start = time.perf_counter()
    results = engine.run_cells(tasks)
    return results, time.perf_counter() - start


def test_flow_matrix(sweep_runner, save_report):
    tasks = suite_tasks()

    serial, cold_s = _timed(sweep_runner(jobs=1), tasks)
    parallel, par_s = _timed(sweep_runner(jobs=4), tasks)
    primed, prime_s = _timed(sweep_runner(jobs=4, cached=True), tasks)
    warm, warm_s = _timed(sweep_runner(jobs=4, cached=True), tasks)

    # The determinism contract: all four modes agree on every cell.
    baseline = [r.identity() for r in serial]
    for other in (parallel, primed, warm):
        assert [r.identity() for r in other] == baseline
    assert all(r.cached for r in warm)

    summary = summarize_cells(serial)
    assert summary["unexpected"] == 0, \
        "every accepted compilation must match golden"

    ok = [r for r in serial if r.verdict == OK]
    rejections = [r for r in serial if r.verdict == REJECTED]

    # Coverage: most cells compile; every flow accepts something.
    assert len(ok) >= 120
    assert {r.flow for r in ok} == set(COMPILABLE)
    # Rejections follow Table 1's feature boundaries, not randomness.
    rejecting_flows = {r.flow for r in rejections}
    assert "cones" in rejecting_flows          # dynamic bounds/pointers
    assert "transmogrifier" in rejecting_flows # channels/par/pointers

    text = format_cell_results(
        ok, title="T2: workload x flow synthesis matrix"
    )
    text += "\n\n" + format_table(
        ["workload", "flow", "rejection (historical restriction)"],
        [[r.workload, r.flow, r.note(60)] for r in rejections],
        title="T2 rejections",
    )
    text += "\n\n" + format_table(
        ["mode", "wall(s)", "vs serial cold"],
        [
            ["serial cold", f"{cold_s:.2f}", "1.0x"],
            ["parallel cold (4 jobs)", f"{par_s:.2f}",
             f"{cold_s / par_s:.1f}x"],
            ["parallel cold + cache store", f"{prime_s:.2f}",
             f"{cold_s / prime_s:.1f}x"],
            ["cache warm", f"{warm_s:.2f}", f"{cold_s / warm_s:.1f}x"],
        ],
        title=f"T2 runner modes ({summary['cells']} cells)",
    )
    save_report("t2_flow_matrix", text)
