"""T2 — the cross-flow synthesis matrix: every workload through every flow.

This is the comparison the survey implies but never runs: the same
programs, one frontend, eleven language semantics.  For each accepting
(workload, flow) pair the table reports cycles, estimated clock, latency,
and area; rejections print the historical reason.  Functional equivalence
against the golden model is asserted for every cell.
"""

import pytest

from repro.flows import COMPILABLE, FlowError, REGISTRY, UnsupportedFeature
from repro.interp import run_program
from repro.lang import parse
from repro.report import format_table
from repro.workloads import WORKLOADS


def run_matrix():
    rows = []
    rejections = []
    mismatches = 0
    for workload in WORKLOADS:
        program, info = parse(workload.source)
        golden = run_program(program, info, "main", workload.args)
        for key in COMPILABLE:
            try:
                design = REGISTRY[key].compile(program, info, "main")
                result = design.run(args=workload.args)
            except (UnsupportedFeature, FlowError) as rejection:
                rejections.append([workload.name, key,
                                   str(rejection).split("] ", 1)[-1][:60]])
                continue
            if result.value != golden.value:
                mismatches += 1
            cost = design.cost()
            latency = (
                result.cycles * cost.clock_ns
                if cost.clock_ns > 0 else result.time_ns
            )
            rows.append([
                workload.name, key, result.value, result.cycles,
                f"{cost.clock_ns:.1f}", f"{latency:.0f}",
                f"{cost.area_ge:.0f}",
            ])
    return rows, rejections, mismatches


def test_flow_matrix(benchmark, save_report):
    rows, rejections, mismatches = benchmark.pedantic(
        run_matrix, rounds=1, iterations=1
    )
    assert mismatches == 0, "every accepted compilation must match golden"
    text = format_table(
        ["workload", "flow", "value", "cycles", "clock(ns)", "latency(ns)",
         "area(GE)"],
        rows,
        title="T2: workload x flow synthesis matrix",
    )
    text += "\n\n" + format_table(
        ["workload", "flow", "rejection (historical restriction)"],
        rejections,
        title="T2 rejections",
    )
    save_report("t2_flow_matrix", text)
    # Coverage: most cells compile; every flow accepts something.
    assert len(rows) >= 120
    flows_seen = {r[1] for r in rows}
    assert flows_seen == set(COMPILABLE)
    # Rejections follow Table 1's feature boundaries, not randomness.
    rejecting_flows = {r[1] for r in rejections}
    assert "cones" in rejecting_flows          # dynamic bounds/pointers
    assert "transmogrifier" in rejecting_flows # channels/par/pointers
