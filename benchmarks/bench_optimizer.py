"""E11 (ablation) — what the classic middle-end buys an HLS compiler.

The paper notes that C's efficiency promises "demand compilers with
aggressive optimization".  DESIGN.md decision: every scheduled flow runs
the fold/CSE/DCE/CFG-simplify pipeline before scheduling.  This ablation
measures what that pipeline is worth, per workload: operation count,
cycle count, and estimated area with the optimizer on vs off.
"""

import pytest

from repro.analysis.pointer import plan_pointers
from repro.binding import estimate_cost
from repro.ir import build_function
from repro.ir.passes import inline_program, optimize
from repro.lang import parse
from repro.report import format_table
from repro.rtl.fsmd import FSMDSystem, fsmd_from_schedule
from repro.scheduling import ResourceSet, list_schedule_function
from repro.sim import simulate
from repro.lang.types import ArrayType
from repro.workloads import WORKLOADS

CANDIDATES = [w for w in WORKLOADS if w.category in ("regular", "memory", "control")]


def synthesize(workload, optimized):
    program, info = parse(workload.source)
    inlined, _ = inline_program(program, info)
    fn = inlined.function("main")
    cdfg = build_function(fn, info, plan_pointers(fn))
    if optimized:
        optimize(cdfg)
    schedule = list_schedule_function(cdfg, ResourceSet.typical(), clock_ns=5.0)
    fsmd = fsmd_from_schedule(schedule)
    system = FSMDSystem(
        fsmds=[fsmd],
        global_registers=[g.symbol for g in program.globals
                          if not isinstance(g.var_type, ArrayType)],
        global_arrays=[g.symbol for g in program.globals
                       if isinstance(g.var_type, ArrayType)],
        global_inits=dict(info.global_inits),
    )
    run = simulate(system, args=workload.args)
    cost = estimate_cost(schedule)
    return cdfg.op_count(), run, cost


def ablate():
    rows = []
    total_cycle_gain = []
    for workload in CANDIDATES:
        raw_ops, raw_run, raw_cost = synthesize(workload, optimized=False)
        opt_ops, opt_run, opt_cost = synthesize(workload, optimized=True)
        assert raw_run.value == opt_run.value
        gain = raw_run.cycles / max(opt_run.cycles, 1)
        total_cycle_gain.append(gain)
        rows.append([
            workload.name, raw_ops, opt_ops, raw_run.cycles, opt_run.cycles,
            f"{gain:.2f}x",
            f"{raw_cost.total_area_ge:.0f}", f"{opt_cost.total_area_ge:.0f}",
        ])
    return rows, total_cycle_gain


def test_optimizer_ablation(benchmark, save_report):
    rows, gains = benchmark.pedantic(ablate, rounds=1, iterations=1)
    text = format_table(
        ["workload", "ops (raw)", "ops (opt)", "cycles (raw)",
         "cycles (opt)", "cycle gain", "area raw", "area opt"],
        rows,
        title="E11: optimizer ablation (fold+CSE+DCE+CFG-simplify)",
    )
    save_report("e11_optimizer", text)
    # Optimization never hurts cycles, and wins somewhere meaningful.
    assert all(g >= 0.999 for g in gains)
    assert max(gains) > 1.3
    # Op counts shrink essentially everywhere.
    shrunk = sum(1 for r in rows if r[2] <= r[1])
    assert shrunk == len(rows)
