"""E11 (ablation) and E19 (opt levels) — what the mid-end buys an HLS compiler.

The paper notes that C's efficiency promises "demand compilers with
aggressive optimization".  DESIGN.md decision: every scheduled flow runs
the fold/CSE/DCE/CFG-simplify pipeline before scheduling.  E11 measures
what that classic pipeline is worth, per workload: operation count,
cycle count, and estimated area with the optimizer on vs off.

E19 measures the next tier: the liveness-driven fixpoint pipeline
(opt_level=2 — copy propagation, chain load/store elimination,
dead-variable elimination) against the classic default (opt_level=1),
swept over the full workload × flow matrix through the same engine as
``repro sweep``.  Both exhibits land in ``benchmarks/results/``.
"""

import pytest

from repro.analysis.pointer import plan_pointers
from repro.runner import OK, suite_tasks
from repro.binding import estimate_cost
from repro.ir import build_function
from repro.ir.passes import inline_program, optimize
from repro.lang import parse
from repro.report import format_table
from repro.rtl.fsmd import FSMDSystem, fsmd_from_schedule
from repro.scheduling import ResourceSet, list_schedule_function
from repro.sim import simulate
from repro.lang.types import ArrayType
from repro.workloads import WORKLOADS

CANDIDATES = [w for w in WORKLOADS if w.category in ("regular", "memory", "control")]


def synthesize(workload, optimized):
    program, info = parse(workload.source)
    inlined, _ = inline_program(program, info)
    fn = inlined.function("main")
    cdfg = build_function(fn, info, plan_pointers(fn))
    if optimized:
        optimize(cdfg)
    schedule = list_schedule_function(cdfg, ResourceSet.typical(), clock_ns=5.0)
    fsmd = fsmd_from_schedule(schedule)
    system = FSMDSystem(
        fsmds=[fsmd],
        global_registers=[g.symbol for g in program.globals
                          if not isinstance(g.var_type, ArrayType)],
        global_arrays=[g.symbol for g in program.globals
                       if isinstance(g.var_type, ArrayType)],
        global_inits=dict(info.global_inits),
    )
    run = simulate(system, args=workload.args)
    cost = estimate_cost(schedule)
    return cdfg.op_count(), run, cost


def ablate():
    rows = []
    total_cycle_gain = []
    for workload in CANDIDATES:
        raw_ops, raw_run, raw_cost = synthesize(workload, optimized=False)
        opt_ops, opt_run, opt_cost = synthesize(workload, optimized=True)
        assert raw_run.value == opt_run.value
        gain = raw_run.cycles / max(opt_run.cycles, 1)
        total_cycle_gain.append(gain)
        rows.append([
            workload.name, raw_ops, opt_ops, raw_run.cycles, opt_run.cycles,
            f"{gain:.2f}x",
            f"{raw_cost.total_area_ge:.0f}", f"{opt_cost.total_area_ge:.0f}",
        ])
    return rows, total_cycle_gain


def test_optimizer_ablation(benchmark, save_report, save_bench):
    rows, gains = benchmark.pedantic(ablate, rounds=1, iterations=1)
    text = format_table(
        ["workload", "ops (raw)", "ops (opt)", "cycles (raw)",
         "cycles (opt)", "cycle gain", "area raw", "area opt"],
        rows,
        title="E11: optimizer ablation (fold+CSE+DCE+CFG-simplify)",
    )
    save_report("e11_optimizer", text)
    save_bench(
        "optimizer",
        metrics={
            "workloads": len(rows),
            "max_cycle_gain": round(max(gains), 3),
            "mean_cycle_gain": round(sum(gains) / len(gains), 3),
            "ops_shrunk": sum(1 for r in rows if r[2] <= r[1]),
        },
        config={"passes": "fold+cse+dce+cfg-simplify", "exhibit": "E11"},
    )
    # Optimization never hurts cycles, and wins somewhere meaningful.
    assert all(g >= 0.999 for g in gains)
    assert max(gains) > 1.3
    # Op counts shrink essentially everywhere.
    shrunk = sum(1 for r in rows if r[2] <= r[1])
    assert shrunk == len(rows)


# ---------------------------------------------------------------- E19


def _level_sweep(engine):
    base = engine.run_cells(suite_tasks(opt_level=1))
    opt = engine.run_cells(suite_tasks(opt_level=2))
    return base, opt


def test_opt_level_matrix_deltas(benchmark, save_report, save_bench,
                                 sweep_runner):
    """E19: the fixpoint mid-end vs the classic loop, over the matrix.

    Acceptance: zero verdict regressions anywhere, cycles never worse on
    any OK cell, and a measurable cycle or area win on at least three
    (flow × workload) cells."""
    engine = sweep_runner(jobs=4)
    base, opt = benchmark.pedantic(
        _level_sweep, args=(engine,), rounds=1, iterations=1
    )
    base_by = {(r.workload, r.flow): r for r in base}

    rows = []
    improved = 0
    regressions = []
    cycle_regressions = []
    for cell in opt:
        ref = base_by[(cell.workload, cell.flow)]
        if cell.verdict != ref.verdict:
            regressions.append(
                (cell.workload, cell.flow, ref.verdict, cell.verdict)
            )
            continue
        if cell.verdict != OK:
            continue
        cycle_delta = ref.cycles - cell.cycles
        area_delta = ref.area_ge - cell.area_ge
        if cycle_delta < 0:
            cycle_regressions.append((cell.workload, cell.flow, -cycle_delta))
        if cycle_delta > 0 or area_delta > 0.5:
            improved += 1
            rows.append([
                cell.workload, cell.flow,
                ref.cycles, cell.cycles,
                f"{ref.area_ge:.0f}", f"{cell.area_ge:.0f}",
                f"-{cycle_delta}" if cycle_delta else "=",
                f"-{area_delta:.0f}" if area_delta > 0.5 else "=",
            ])

    ok_cells = sum(1 for c in opt if c.verdict == OK)
    rows.sort(key=lambda r: (r[1], r[0]))
    text = format_table(
        ["workload", "flow", "cyc L1", "cyc L2", "area L1", "area L2",
         "cyc delta", "area delta"],
        rows,
        title=(
            f"E19: liveness fixpoint (opt_level=2) vs classic loop "
            f"(opt_level=1) — {improved}/{ok_cells} OK cells improved, "
            f"{len(regressions)} verdict regressions"
        ),
    )
    save_report("e19_optimizer_levels", text)
    save_bench(
        "optimizer_levels",
        metrics={
            "ok_cells": ok_cells,
            "improved_cells": improved,
            "verdict_regressions": len(regressions),
            "cycle_regressions": len(cycle_regressions),
        },
        config={"base_opt_level": 1, "opt_level": 2, "exhibit": "E19"},
    )

    assert not regressions, regressions
    assert not cycle_regressions, cycle_regressions
    assert improved >= 3, (
        f"expected >= 3 improved cells, got {improved}"
    )
