"""E5 — explicit parallel constructs vs compiler-inferred concurrency.

Paper claim: "About half the languages require the programmer to express
concurrency with parallel constructs ... Other languages present a
sequential model to the programmer and rely on the compiler to identify
parallelism", and "relying on the compiler to expose parallelism is
awkward because using it effectively requires understanding details of the
compiler's operation."

Regenerated table: a task-parallel kernel in three codings —

* sequential C through the inference flows (C2Verilog, CASH) at several
  datapath widths: the compiler finds the ILP, *if* the resources exist;
* the same program with explicit ``par`` under Handel-C: the designer
  states the concurrency and gets it at one assignment each;
* process-level pipelines under the CSP flows, which no intra-procedural
  inference can discover.
"""

import pytest

from repro.flows import run_flow
from repro.report import format_table
from repro.scheduling import ResourceSet
from repro.workloads import get

SEQUENTIAL = """
int main(int a) {
    int t0 = (a + 1) * 3;
    int t1 = (a + 2) * 5;
    int t2 = (a + 3) * 7;
    int t3 = (a + 4) * 11;
    return t0 + t1 + t2 + t3;
}
"""

EXPLICIT_PAR = """
int main(int a) {
    int t0;
    int t1;
    int t2;
    int t3;
    par {
        t0 = (a + 1) * 3;
        t1 = (a + 2) * 5;
        t2 = (a + 3) * 7;
        t3 = (a + 4) * 11;
    }
    return t0 + t1 + t2 + t3;
}
"""


def run_matrix():
    rows = []
    golden = run_flow(SEQUENTIAL, args=(5,), flow="c2verilog").value
    for name, resources in (
        ("1 ALU/1 MUL", ResourceSet(alu=1, multiplier=1)),
        ("2 ALU/2 MUL", ResourceSet(alu=2, multiplier=2)),
        ("4 ALU/4 MUL", ResourceSet(alu=4, multiplier=4)),
    ):
        result = run_flow(SEQUENTIAL, args=(5,), flow="c2verilog",
                          resources=resources)
        assert result.value == golden
        rows.append(["c2verilog (inferred)", name, result.cycles])
    cash = run_flow(SEQUENTIAL, args=(5,), flow="cash")
    assert cash.value == golden
    rows.append(["cash (inferred, spatial)", "unbounded",
                 f"{cash.time_ns:.0f} ns"])
    seq_hc = run_flow(SEQUENTIAL, args=(5,), flow="handelc")
    par_hc = run_flow(EXPLICIT_PAR, args=(5,), flow="handelc")
    assert seq_hc.value == par_hc.value == golden
    rows.append(["handelc (sequential)", "-", seq_hc.cycles])
    rows.append(["handelc (explicit par)", "-", par_hc.cycles])
    return rows, seq_hc.cycles, par_hc.cycles


def test_explicit_vs_inferred(benchmark, save_report):
    rows, seq_cycles, par_cycles = benchmark.pedantic(
        run_matrix, rounds=1, iterations=1
    )
    text = format_table(
        ["coding / flow", "datapath", "cycles (or latency)"],
        rows,
        title="E5a: explicit par vs compiler-inferred ILP (4-way task kernel)",
    )
    save_report("e5a_concurrency", text)
    assert par_cycles < seq_cycles  # the annotation bought real cycles
    inferred = [r[2] for r in rows if r[0].startswith("c2verilog")]
    assert inferred[-1] < inferred[0]  # inference needs the resources


def test_process_pipeline_no_inference_can_find(benchmark, save_report):
    w = get("pipeline3")

    def run_pipeline():
        results = {}
        for flow in ("handelc", "bachc", "hardwarec", "systemc"):
            results[flow] = run_flow(w.source, args=w.args, flow=flow)
        return results

    results = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)
    rows = [
        [flow, r.value, r.cycles, r.stats.get("stall_cycles", "-")]
        for flow, r in results.items()
    ]
    text = format_table(
        ["flow", "value", "cycles", "stall cycles"],
        rows,
        title="E5b: three-process CSP pipeline (explicit-concurrency flows only)",
    )
    save_report("e5b_process_pipeline", text)
    values = {r.value for r in results.values()}
    assert values == {205}
    # Inference-only flows cannot even express this program.
    from repro.flows import FlowError, UnsupportedFeature, compile_flow

    for flow in ("c2verilog", "cash", "cones", "transmogrifier"):
        with pytest.raises((UnsupportedFeature, FlowError)):
            compile_flow(w.source, flow=flow)
