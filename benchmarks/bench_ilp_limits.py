"""E2 — the instruction-level parallelism limit study (Wall-style).

Paper claim: "it seems that ILP beyond about five simultaneous
instructions is unlikely due to fundamental limits [25, 26]" — with the
implicit caveat that regular scientific kernels are the exception.

Regenerated series: for each workload, ILP as a function of instruction
window size under perfect control (oracle), plus the no-speculation limit.
Expected shape: control-dominated workloads plateau in the single digits
(around Wall's ~5); regular dataflow kernels exceed it.
"""

import pytest

from repro.analysis import ilp_profile
from repro.ir import build_function
from repro.ir.passes import inline_program, optimize
from repro.lang import parse
from repro.report import format_table
from repro.workloads import WORKLOADS

WINDOWS = (2, 4, 8, 16, 32, 64, 128)
# Channel/pointer workloads need flows, not traces; trace the pure-C ones.
TRACEABLE = [w for w in WORKLOADS if w.category in ("regular", "control", "memory")]


def profile_all():
    profiles = []
    for workload in TRACEABLE:
        program, info = parse(workload.source)
        inlined, _ = inline_program(program, info)
        cdfg = build_function(inlined.function("main"), info)
        optimize(cdfg)
        profiles.append(
            ilp_profile(workload.name, cdfg, args=workload.args, windows=WINDOWS)
        )
    return profiles


def test_ilp_limits(benchmark, save_report):
    profiles = benchmark.pedantic(profile_all, rounds=1, iterations=1)
    rows = []
    for p in profiles:
        category = next(w.category for w in TRACEABLE if w.name == p.workload)
        rows.append(
            [p.workload, category, p.trace_length]
            + [f"{p.by_window[w]:.2f}" for w in WINDOWS]
            + [f"{p.dataflow_limit:.2f}", f"{p.no_speculation_limit:.2f}"]
        )
    text = format_table(
        ["workload", "category", "ops"]
        + [f"W={w}" for w in WINDOWS]
        + ["oracle", "no-spec"],
        rows,
        title="E2: ILP vs instruction window (perfect control), plus limits",
    )
    save_report("e2_ilp_limits", text)

    # Shape assertions: the paper's plateau.
    control = [p for p in profiles
               if next(w.category for w in TRACEABLE if w.name == p.workload)
               == "control"]
    regular = [p for p in profiles
               if next(w.category for w in TRACEABLE if w.name == p.workload)
               == "regular"]
    assert control and regular
    # No-speculation ILP of control code sits at or below Wall's ~5.
    assert all(p.no_speculation_limit <= 6.0 for p in control)
    # Regular kernels' oracle ILP exceeds the plateau.
    assert max(p.dataflow_limit for p in regular) > 6.0
    # Window curves are monotone and saturating.
    for p in profiles:
        series = [p.by_window[w] for w in WINDOWS]
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:]))
        assert series[-1] <= p.dataflow_limit + 1e-9
