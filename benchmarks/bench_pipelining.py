"""E3 — loop pipelining effectiveness: regular vs irregular loops.

Paper claim: "Pipelining works well on regular loops, e.g., in scientific
computation, but is less effective in general.  Again, dependencies and
control-flow transfers limit parallelism."

Regenerated table: for every workload loop, ResMII / RecMII / achieved II
and the steady-state speedup, under a mid-sized datapath.  Expected shape:
dataflow loops (dot product, FIR inner loops) reach small IIs and real
speedups; recurrence-bound loops (GCD's divider, histogram's
read-modify-write) gain little or nothing.
"""

import pytest

from repro.ir import build_function
from repro.ir.passes import inline_program, optimize
from repro.lang import parse
from repro.report import format_table
from repro.scheduling import ResourceSet, find_pipelineable_loops, modulo_schedule
from repro.workloads import WORKLOADS

RESOURCES = ResourceSet(alu=4, multiplier=2, shifter=2, divider=1)
CANDIDATES = [w for w in WORKLOADS if w.category in ("regular", "control", "memory")]


def pipeline_all():
    rows = []
    for workload in CANDIDATES:
        program, info = parse(workload.source)
        inlined, _ = inline_program(program, info)
        cdfg = build_function(inlined.function("main"), info)
        optimize(cdfg)
        loops = find_pipelineable_loops(cdfg)
        if not loops:
            continue
        # Report the workload's hottest (largest) loop.
        loop = max(loops, key=lambda l: len(l.ops))
        result = modulo_schedule(loop, RESOURCES)
        rows.append((workload, result))
    return rows


def test_pipelining(benchmark, save_report):
    results = benchmark.pedantic(pipeline_all, rounds=1, iterations=1)
    assert results
    table_rows = []
    by_category = {}
    for workload, result in results:
        speedup = result.speedup()
        by_category.setdefault(workload.category, []).append(speedup)
        table_rows.append([
            workload.name, workload.category, result.op_count,
            result.res_mii, result.rec_mii,
            result.achieved_ii if result.achieved_ii is not None else "-",
            result.sequential_steps, f"{speedup:.2f}x",
        ])
    text = format_table(
        ["workload", "category", "loop ops", "ResMII", "RecMII", "II",
         "seq steps", "speedup"],
        table_rows,
        title="E3: modulo scheduling (4 ALU / 2 MUL / 1 DIV datapath)",
    )
    save_report("e3_pipelining", text)

    regular_best = max(by_category.get("regular", [1.0]))
    control_best = max(by_category.get("control", [1.0]))
    assert regular_best >= 2.0, "regular loops must pipeline"
    assert control_best <= 1.5, "control loops must not"
    assert regular_best > control_best
