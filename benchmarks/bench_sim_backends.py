"""E15 — compiled-backend speedup over the reference FSMD interpreter.

The closure-compiled backend (:mod:`repro.sim.compiled`) exists for one
reason: long differential campaigns spend almost all their wall clock
inside the cycle loop.  This experiment times the same long-running
kernels through both engines, per flow, and pins two properties:

* **bit identity** — every timed run compares full observables (value,
  cycles, globals, channel logs) between backends before its timing is
  allowed into the table; a speedup obtained by diverging is a bug, not
  a result;
* **the floor** — at least 5x on long single-machine kernels (the fast
  path), and at least 2x in the quick CI configuration, where the
  kernels are short enough that fixed costs eat into the ratio.

The rendezvous row exercises the general multi-machine scheduler, whose
per-cycle work is dominated by cross-machine bookkeeping; it is reported
but held only to >1x.  A fuzz-campaign throughput line shows the other
end of the envelope: fuzz programs are tiny and run for a handful of
cycles, so one-time specialization roughly cancels the per-cycle win —
the backend pays off on long simulations, not short ones (see
docs/simulation.md for the guidance).
"""

import time

from repro.flows import compile_flow
from repro.fuzz import CampaignConfig, run_campaign
from repro.report import format_table
from repro.sim import SimProfile

LONG_N = 40_000     # ~160k+ cycles per flow: the steady-state regime
QUICK_N = 6_000     # CI-sized; fixed costs are a visible fraction
LONG_FLOOR = 5.0
QUICK_FLOOR = 2.0

# A register-only kernel every FSMD flow schedules: the fast path.
KERNEL = """
int main(int n) {
    int i;
    int acc = 1;
    for (i = 0; i < n; i = i + 1) {
        acc = (acc + i * i + (acc >> 3)) % 9973;
    }
    return acc;
}
"""

# Memory traffic through a real array: loads and stores every cycle.
MEM_KERNEL = """
int buf[64];
int main(int n) {
    int i;
    int s = 0;
    for (i = 0; i < n; i = i + 1) {
        buf[i & 63] = buf[(i + 7) & 63] + i;
        s = (s + buf[i & 63]) % 65521;
    }
    return s;
}
"""

# Three machines handshaking every few cycles: the general scheduler.
# main blocks on the completion channel, so the simulation runs until the
# whole pipeline drains rather than ending when main's FSMD finishes.
RENDEZVOUS = """
chan<int> c;
chan<int> done;

process void producer() {
    int i;
    for (i = 0; i < %d; i = i + 1) {
        send(c, i);
    }
}

process void consumer() {
    int i;
    int total = 0;
    for (i = 0; i < %d; i = i + 1) {
        total = (total + recv(c)) %% 9973;
    }
    send(done, total);
}

int main() {
    return recv(done);
}
"""

FAST_FLOWS = ("c2verilog", "cyber", "bachc", "handelc")


def _timed(design, backend, args):
    """Best-of-two timed run; returns (result, seconds).  The first
    compiled run also pays one-time specialization, which the plan cache
    then amortizes — exactly the campaign-loop steady state."""
    best = None
    result = None
    for _ in range(2):
        start = time.perf_counter()
        result = design.run(args=args, sim_backend=backend)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return result, best


def _identical(interp, compiled, label):
    assert interp.observable() == compiled.observable(), (
        f"{label}: backends disagree on observables"
    )
    assert interp.cycles == compiled.cycles, (
        f"{label}: backends disagree on cycle count"
    )


def _speedup_table(n, items):
    """rows + per-label speedups for (label, source, flow, args) items."""
    rows = []
    speedups = {}
    for label, source, flow, args in items:
        design = compile_flow(source, flow=flow)
        interp, interp_s = _timed(design, "interp", args)
        compiled, compiled_s = _timed(design, "compiled", args)
        _identical(interp, compiled, f"{label}/{flow}")
        speedup = interp_s / compiled_s if compiled_s > 0 else float("inf")
        speedups[label] = speedup
        rows.append([
            label, flow, interp.cycles,
            f"{interp_s * 1e3:.1f}", f"{compiled_s * 1e3:.1f}",
            f"{interp.cycles / interp_s / 1e3:.0f}",
            f"{interp.cycles / compiled_s / 1e3:.0f}",
            f"{speedup:.1f}x",
        ])
    return rows, speedups


def _items(n):
    rendezvous = RENDEZVOUS % (n // 8, n // 8)
    return (
        [(f"loop/{flow}", KERNEL, flow, (n,)) for flow in FAST_FLOWS]
        + [("memory/c2verilog", MEM_KERNEL, "c2verilog", (n,))]
        + [("rendezvous/specc", rendezvous, "specc", ())]
    )


def _render(rows, title):
    return format_table(
        ["kernel", "flow", "cycles", "interp ms", "compiled ms",
         "interp kc/s", "compiled kc/s", "speedup"],
        rows,
        title=title,
    )


def _assert_floors(speedups, floor):
    for label, speedup in speedups.items():
        wanted = 1.0 if label.startswith("rendezvous") else floor
        assert speedup >= wanted, (
            f"{label}: {speedup:.2f}x is below the {wanted:.0f}x floor"
        )


def _fuzz_throughput(tmp_path, backend):
    config = CampaignConfig(
        flows=["c2verilog"], seeds=24, jobs=1, reduce=False, mutations=1,
        corpus_dir=tmp_path / f"corpus-{backend}", sim_backend=backend,
    )
    report = run_campaign(config)
    assert not report.divergences, (
        f"fuzz campaign under {backend} found divergences — backend bug"
    )
    return report.cells_run / report.elapsed_s


def test_sim_backend_speedup(benchmark, save_report, tmp_path):
    rows, speedups = benchmark.pedantic(
        _speedup_table, args=(LONG_N, _items(LONG_N)), rounds=1, iterations=1
    )
    interp_cps = _fuzz_throughput(tmp_path, "interp")
    compiled_cps = _fuzz_throughput(tmp_path, "compiled")
    text = _render(
        rows,
        f"E15: compiled FSMD backend speedup (n={LONG_N}, floor "
        f"{LONG_FLOOR:.0f}x; fuzz cells/s {interp_cps:.0f} interp -> "
        f"{compiled_cps:.0f} compiled)",
    )
    save_report("e15_sim_backends", text)
    _assert_floors(speedups, LONG_FLOOR)


def test_sim_backend_speedup_quick(benchmark, save_report):
    """CI-sized variant: short kernels, a 2x floor.  Uploaded as the PR
    speedup-table artifact by the bench-sim-backends workflow job."""
    rows, speedups = benchmark.pedantic(
        _speedup_table, args=(QUICK_N, _items(QUICK_N)), rounds=1,
        iterations=1,
    )
    text = _render(
        rows,
        f"E15 (quick): compiled FSMD backend speedup (n={QUICK_N}, "
        f"floor {QUICK_FLOOR:.0f}x)",
    )
    save_report("e15_sim_backends_quick", text)
    _assert_floors(speedups, QUICK_FLOOR)


def test_profiler_overhead_is_bounded():
    """Profiling both backends keeps results identical and costs at most
    a few x; the histograms it returns match cycle counts exactly."""
    design = compile_flow(KERNEL, flow="c2verilog")
    plain = design.run(args=(QUICK_N,), sim_backend="compiled")
    profile = SimProfile()
    profiled = design.run(args=(QUICK_N,), sim_backend="compiled",
                          sim_profile=profile)
    assert plain.observable() == profiled.observable()
    assert profile.cycles == plain.cycles
    total_visits = sum(
        count
        for states in profile.state_visits.values()
        for count in states.values()
    )
    assert total_visits == profile.cycles
